"""Extension: two-phase I/O vs disk-directed I/O vs traditional caching.

The paper argues (Section 7.1) that disk-directed I/O dominates two-phase I/O
because the permutation is overlapped with the disk transfer and the data
crosses the network only once.  The paper did not simulate two-phase I/O; this
benchmark does.
"""

import pytest

from benchmarks.conftest import KILOBYTE, MEGABYTE, bench_config, run_benchmark_case

METHODS = ("traditional", "two-phase", "disk-directed")


@pytest.mark.parametrize("method", METHODS)
def test_block_records(benchmark, method):
    config = bench_config(method, "rcb", "contiguous", record_size=8192)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


@pytest.mark.parametrize("method", METHODS)
def test_small_records(benchmark, method):
    config = bench_config(method, "rc", "contiguous", record_size=8,
                          file_size=128 * KILOBYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_ordering_tc_twophase_ddio(benchmark):
    """For small cyclic records the paper's expected ordering is TC < 2P <= DDIO."""
    from repro.experiments import run_experiment

    def compare():
        return {method: run_experiment(
            bench_config(method, "rc", "contiguous", record_size=8,
                         file_size=256 * KILOBYTE), seed=1).throughput_mb
            for method in METHODS}

    values = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    assert values["two-phase"] > values["traditional"]
    assert values["disk-directed"] >= values["two-phase"]
