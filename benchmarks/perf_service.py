#!/usr/bin/env python
"""Benchmark of the service-style workload driver, tracked over time.

Runs the canonical service points — the default service-figure workload (32
mixed collectives over 16 random-layout 1 MB files, K=4) at saturation load,
DDIO vs traditional caching, plus a closed-loop point — and records both the
*simulated* sustained throughput (the model's result) and the *wall-clock*
cost of simulating it (the kernel's cost).  Appends to ``BENCH_service.json``
so both trajectories are visible across PRs.

Run from the repository root::

    python benchmarks/perf_service.py              # full run, appends a record
    python benchmarks/perf_service.py --smoke      # scaled-down CI smoke run

The headline check mirrors the service experiment's acceptance criterion:
disk-directed I/O must sustain higher throughput than traditional caching
under concurrent load (ddio_advantage > 1).
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.service import (  # noqa: E402
    ServiceExperimentConfig,
    run_service_experiment,
)
from repro.workload import run_service  # noqa: E402

#: The canonical service points.  "smoke" variants are CI-sized.
CASES = {
    "poisson_saturation": dict(arrival="poisson", arrival_rate=8.0),
    "poisson_overload": dict(arrival="poisson", arrival_rate=16.0),
    "closed_loop_k4": dict(arrival="closed"),
}

SMOKE_OVERRIDES = dict(n_cps=4, n_iops=2, n_disks=2, n_requests=12,
                       n_files=8, file_size=128 * 1024, read_fraction=1.0,
                       arrival="closed", concurrency=4)

#: The 8-byte-record point: traditional caching's worst case (~100x costlier
#: to simulate than 8 KB records before the per-(CP, block) request batching
#: landed).  Tracked so BENCH_service.json shows the batching speedup:
#: the same point is also run with ``batch_requests=False`` (the one-event-
#: round-trip-per-record baseline) and the wall-clock ratio recorded.
EIGHT_BYTE_OVERRIDES = dict(n_cps=4, n_iops=2, n_disks=2, n_requests=4,
                            n_files=4, file_size=256 * 1024,
                            read_fraction=1.0, pattern_specs=("c",),
                            record_size=8, arrival="closed", concurrency=2,
                            layout="random")

EIGHT_BYTE_SMOKE_OVERRIDES = dict(EIGHT_BYTE_OVERRIDES, n_requests=2,
                                  file_size=64 * 1024)


def run_case(overrides, seed=3, trials=2):
    """Mean simulated throughput and total wall seconds per method."""
    out = {}
    for method in ("disk-directed", "traditional"):
        throughputs = []
        start = time.perf_counter()
        for trial in range(trials):
            config = ServiceExperimentConfig(method=method, seed=seed,
                                             **overrides)
            result = run_service_experiment(config, seed=seed + trial)
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated for {method} {overrides}")
            throughputs.append(result.throughput_mb)
        wall = time.perf_counter() - start
        key = "ddio" if method == "disk-directed" else "tc"
        out[f"{key}_throughput_mb"] = round(
            sum(throughputs) / len(throughputs), 3)
        out[f"{key}_wall_s"] = round(wall, 3)
    out["ddio_advantage"] = round(
        out["ddio_throughput_mb"] / out["tc_throughput_mb"], 3)
    return out


def run_eight_byte_case(overrides, seed=3, trials=1):
    """The 8-byte-record point, batched vs the unbatched simulator baseline.

    Returns the usual per-method throughput/wall fields plus
    ``tc_unbatched_wall_s`` and ``batching_speedup`` (unbatched wall over
    batched wall for the traditional-caching runs — the acceptance criterion
    is >= 5x).
    """
    out = run_case(overrides, seed=seed, trials=trials)
    config = ServiceExperimentConfig(method="traditional", seed=seed,
                                     **overrides)
    start = time.perf_counter()
    for trial in range(trials):
        result = run_service(
            "traditional", config.workload(),
            machine_config=config.machine_config(), seed=seed + trial,
            disk_scheduler=config.disk_scheduler, batch_requests=False)
        if not result.conserves_bytes():
            raise AssertionError("byte conservation violated (unbatched)")
    out["tc_unbatched_wall_s"] = round(time.perf_counter() - start, 3)
    out["batching_speedup"] = round(
        out["tc_unbatched_wall_s"] / max(out["tc_wall_s"], 1e-9), 2)
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: one scaled-down closed-loop point")
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per data point (seeds seed..seed+t-1)")
    parser.add_argument("--seed", type=int, default=3, help="base trial seed")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_service.json",
                        help="trajectory file to append to")
    parser.add_argument("--label", type=str, default="",
                        help="free-form label recorded with this run")
    args = parser.parse_args(argv)

    cases = {"smoke_closed_loop": SMOKE_OVERRIDES} if args.smoke else CASES
    measurements = {}
    for name, overrides in cases.items():
        measurements[name] = run_case(overrides, seed=args.seed,
                                      trials=args.trials)
        point = measurements[name]
        print(f"  {name:22s} ddio {point['ddio_throughput_mb']:6.2f} MB/s "
              f"({point['ddio_wall_s']:.2f}s wall)  "
              f"tc {point['tc_throughput_mb']:6.2f} MB/s "
              f"({point['tc_wall_s']:.2f}s wall)  "
              f"advantage {point['ddio_advantage']:.2f}x")

    eight_byte = EIGHT_BYTE_SMOKE_OVERRIDES if args.smoke \
        else EIGHT_BYTE_OVERRIDES
    name = "eight_byte_records"
    measurements[name] = run_eight_byte_case(eight_byte, seed=args.seed,
                                             trials=1)
    point = measurements[name]
    print(f"  {name:22s} ddio {point['ddio_throughput_mb']:6.2f} MB/s "
          f"({point['ddio_wall_s']:.2f}s wall)  "
          f"tc {point['tc_throughput_mb']:6.2f} MB/s "
          f"({point['tc_wall_s']:.2f}s wall, unbatched "
          f"{point['tc_unbatched_wall_s']:.2f}s -> "
          f"{point['batching_speedup']:.1f}x)")

    record = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "trials": args.trials,
        "smoke": args.smoke,
        "cases": measurements,
    }

    trajectory = {"schema": 1, "runs": []}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text())
            if isinstance(existing.get("runs"), list):
                trajectory["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass
    trajectory["runs"].append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {args.output} ({len(trajectory['runs'])} run(s))")

    advantages = [point["ddio_advantage"] for point in measurements.values()]
    worst = min(advantages)
    status = "PASS" if worst > 1.0 else "BELOW TARGET"
    print(f"headline: DDIO advantage under concurrent load "
          f"{worst:.2f}x (worst case) [{status}]")
    return 0 if worst > 1.0 else 1


if __name__ == "__main__":
    sys.exit(main())
