#!/usr/bin/env python
"""Benchmark of the service-style workload driver, tracked over time.

Runs the canonical service points — the default service-figure workload (32
mixed collectives over 16 random-layout 1 MB files, K=4) at saturation load,
DDIO vs traditional caching, plus a closed-loop point — and records both the
*simulated* sustained throughput (the model's result) and the *wall-clock*
cost of simulating it (the kernel's cost).  Appends to ``BENCH_service.json``
so both trajectories are visible across PRs.

Run from the repository root::

    python benchmarks/perf_service.py              # full run, appends a record
    python benchmarks/perf_service.py --smoke      # scaled-down CI smoke run

The headline check mirrors the service experiment's acceptance criterion:
disk-directed I/O must sustain higher throughput than traditional caching
under concurrent load (ddio_advantage > 1).
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.service import (  # noqa: E402
    ServiceExperimentConfig,
    run_service_experiment,
)

#: The canonical service points.  "smoke" variants are CI-sized.
CASES = {
    "poisson_saturation": dict(arrival="poisson", arrival_rate=8.0),
    "poisson_overload": dict(arrival="poisson", arrival_rate=16.0),
    "closed_loop_k4": dict(arrival="closed"),
}

SMOKE_OVERRIDES = dict(n_cps=4, n_iops=2, n_disks=2, n_requests=12,
                       n_files=8, file_size=128 * 1024, read_fraction=1.0,
                       arrival="closed", concurrency=4)


def run_case(overrides, seed=3, trials=2):
    """Mean simulated throughput and total wall seconds per method."""
    out = {}
    for method in ("disk-directed", "traditional"):
        throughputs = []
        start = time.perf_counter()
        for trial in range(trials):
            config = ServiceExperimentConfig(method=method, seed=seed,
                                             **overrides)
            result = run_service_experiment(config, seed=seed + trial)
            if not result.conserves_bytes():
                raise AssertionError(
                    f"byte conservation violated for {method} {overrides}")
            throughputs.append(result.throughput_mb)
        wall = time.perf_counter() - start
        key = "ddio" if method == "disk-directed" else "tc"
        out[f"{key}_throughput_mb"] = round(
            sum(throughputs) / len(throughputs), 3)
        out[f"{key}_wall_s"] = round(wall, 3)
    out["ddio_advantage"] = round(
        out["ddio_throughput_mb"] / out["tc_throughput_mb"], 3)
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: one scaled-down closed-loop point")
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per data point (seeds seed..seed+t-1)")
    parser.add_argument("--seed", type=int, default=3, help="base trial seed")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_service.json",
                        help="trajectory file to append to")
    parser.add_argument("--label", type=str, default="",
                        help="free-form label recorded with this run")
    args = parser.parse_args(argv)

    cases = {"smoke_closed_loop": SMOKE_OVERRIDES} if args.smoke else CASES
    measurements = {}
    for name, overrides in cases.items():
        measurements[name] = run_case(overrides, seed=args.seed,
                                      trials=args.trials)
        point = measurements[name]
        print(f"  {name:22s} ddio {point['ddio_throughput_mb']:6.2f} MB/s "
              f"({point['ddio_wall_s']:.2f}s wall)  "
              f"tc {point['tc_throughput_mb']:6.2f} MB/s "
              f"({point['tc_wall_s']:.2f}s wall)  "
              f"advantage {point['ddio_advantage']:.2f}x")

    record = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "trials": args.trials,
        "smoke": args.smoke,
        "cases": measurements,
    }

    trajectory = {"schema": 1, "runs": []}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text())
            if isinstance(existing.get("runs"), list):
                trajectory["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass
    trajectory["runs"].append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {args.output} ({len(trajectory['runs'])} run(s))")

    advantages = [point["ddio_advantage"] for point in measurements.values()]
    worst = min(advantages)
    status = "PASS" if worst > 1.0 else "BELOW TARGET"
    print(f"headline: DDIO advantage under concurrent load "
          f"{worst:.2f}x (worst case) [{status}]")
    return 0 if worst > 1.0 else 1


if __name__ == "__main__":
    sys.exit(main())
