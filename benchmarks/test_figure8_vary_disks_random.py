"""Figure 8: one IOP, varying the number of disks, random-blocks layout.

Paper result: the random layout is disk-limited (not bus-limited), so
throughput keeps scaling with the number of disks across the whole range and
traditional caching falls behind disk-directed I/O.
"""

import pytest

from benchmarks.conftest import MEGABYTE, bench_config, run_benchmark_case

DISK_COUNTS = (1, 4, 16)


@pytest.mark.parametrize("disks", DISK_COUNTS)
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure8_point(benchmark, method, disks):
    config = bench_config(method, "rb", "random", n_iops=1, n_disks=disks,
                          n_cps=16, file_size=MEGABYTE // 2)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure8_stays_disk_limited(benchmark):
    from repro.experiments import run_experiment

    def series():
        return [run_experiment(
            bench_config("disk-directed", "rb", "random", n_iops=1,
                         n_disks=disks, n_cps=16, file_size=MEGABYTE // 2),
            seed=1).throughput_mb for disks in (4, 16)]

    four, sixteen = benchmark.pedantic(series, rounds=1, iterations=1)
    benchmark.extra_info["series"] = [four, sixteen]
    # Still scaling (not bus-saturated) because random access is slow per disk.
    assert sixteen > 1.8 * four
