"""Ablation: disk-request presorting (the DDIO-vs-DDIO(sort) bars of Figure 3).

Paper: presorting the block list by physical location gives a 41-50% boost on
the random-blocks layout and is irrelevant on the contiguous layout.
"""

import pytest

from repro.experiments import run_experiment

from benchmarks.conftest import MEGABYTE, bench_config, run_benchmark_case


@pytest.mark.parametrize("layout", ("contiguous", "random"))
@pytest.mark.parametrize("method", ("disk-directed", "disk-directed-nosort"))
def test_presort_point(benchmark, method, layout):
    config = bench_config(method, "rb", layout, file_size=MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_presort_gain_on_random_layout(benchmark):
    def compare():
        with_sort = run_experiment(
            bench_config("disk-directed", "rb", "random", file_size=2 * MEGABYTE),
            seed=1)
        without = run_experiment(
            bench_config("disk-directed-nosort", "rb", "random",
                         file_size=2 * MEGABYTE), seed=1)
        return with_sort, without

    with_sort, without = benchmark.pedantic(compare, rounds=1, iterations=1)
    gain = with_sort.throughput / without.throughput - 1.0
    benchmark.extra_info["presort_gain"] = f"{gain:.0%}"
    assert gain > 0.15
