"""Ablation: traditional caching's cache size and prefetch policy.

The paper sizes the IOP cache at two buffers per disk per CP and prefetches
one block ahead; this ablation shrinks the cache and disables prefetch to show
how much each contributes.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, TraditionalCachingFS, make_pattern

from benchmarks.conftest import MEGABYTE


def _run_tc(pattern_name="rcb", record_size=8192, layout="contiguous",
            file_size=MEGABYTE, cache_blocks_per_cp_per_disk=2, prefetch_blocks=1,
            seed=1):
    config = MachineConfig()
    machine = Machine(config, seed=seed)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    fs = TraditionalCachingFS(
        machine, striped,
        cache_blocks_per_cp_per_disk=cache_blocks_per_cp_per_disk,
        prefetch_blocks=prefetch_blocks)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    return fs.transfer(pattern)


@pytest.mark.parametrize("cache_blocks", (1, 2, 4))
def test_cache_size(benchmark, cache_blocks):
    result = benchmark.pedantic(
        lambda: _run_tc(cache_blocks_per_cp_per_disk=cache_blocks),
        rounds=1, iterations=1)
    benchmark.extra_info["cache_blocks_per_cp_per_disk"] = cache_blocks
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 2)
    assert result.throughput_mb > 0


@pytest.mark.parametrize("prefetch", (0, 1, 2))
def test_prefetch_depth(benchmark, prefetch):
    result = benchmark.pedantic(
        lambda: _run_tc(pattern_name="rn", prefetch_blocks=prefetch),
        rounds=1, iterations=1)
    benchmark.extra_info["prefetch_blocks"] = prefetch
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 2)
    assert result.throughput_mb > 0


def test_prefetch_helps_sequential_reader(benchmark):
    def compare():
        return _run_tc(pattern_name="rn", prefetch_blocks=0), \
            _run_tc(pattern_name="rn", prefetch_blocks=1)

    without, with_prefetch = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["no_prefetch"] = round(without.throughput_mb, 2)
    benchmark.extra_info["prefetch_1"] = round(with_prefetch.throughput_mb, 2)
    # The drive's own read-ahead already hides most of the latency for a
    # single sequential reader, so the IOP-level prefetch must simply not
    # hurt (the paper's gain shows up when the drive cache is defeated).
    assert with_prefetch.throughput >= 0.98 * without.throughput
