"""Shared helpers for the benchmark harness.

Every benchmark runs one (scaled-down) experiment exactly once per round via
``benchmark.pedantic`` — the interesting output is the *simulated* throughput
(recorded in ``extra_info``), the wall-clock time merely tells you what the
simulator costs to run.  Pass ``--benchmark-columns=min,rounds`` to keep the
table compact, and see EXPERIMENTS.md for paper-scale runs.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

MEGABYTE = 2 ** 20
KILOBYTE = 1024

#: File sizes used by the benchmark harness.  Small records are simulated at a
#: smaller scale because traditional caching issues one request per record.
BENCH_FILE_SIZE = {8192: MEGABYTE, 1024: MEGABYTE // 2, 8: MEGABYTE // 8}


def bench_config(method, pattern, layout, record_size=8192, **overrides):
    """An ExperimentConfig scaled for benchmark wall-clock budgets."""
    file_size = overrides.pop("file_size", BENCH_FILE_SIZE[record_size])
    return ExperimentConfig(
        method=method,
        pattern=pattern,
        layout=layout,
        record_size=record_size,
        file_size=file_size,
        **overrides,
    )


def run_benchmark_case(benchmark, config, seed=1):
    """Run *config* once under pytest-benchmark and record its throughput."""
    result_holder = {}

    def _run():
        result_holder["result"] = run_experiment(config, seed=seed)
        return result_holder["result"]

    benchmark.pedantic(_run, rounds=1, iterations=1)
    result = result_holder["result"]
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 3)
    benchmark.extra_info["simulated_seconds"] = round(result.elapsed, 4)
    benchmark.extra_info["pattern"] = config.pattern
    benchmark.extra_info["method"] = config.method
    benchmark.extra_info["layout"] = config.layout
    return result


@pytest.fixture
def measure():
    """Fixture exposing :func:`run_benchmark_case`."""
    return run_benchmark_case
