"""Figure 3: all methods on the random-blocks layout.

Paper result: disk-directed I/O with presorting reaches 6.2 MB/s (reads) and
7.4-7.5 MB/s (writes) regardless of pattern; traditional caching is never
faster than 5 MB/s and collapses for small-chunk patterns; presorting buys
41-50%.  The benchmark uses a scaled-down file (see conftest), so absolute
numbers are lower for TC's request-bound cases but the ordering holds.
"""

import pytest

from benchmarks.conftest import bench_config, run_benchmark_case

PATTERNS_8K = ("ra", "rn", "rb", "rc", "rbb", "rcb", "wb", "wcb")
METHODS = ("disk-directed", "disk-directed-nosort", "traditional")


@pytest.mark.parametrize("pattern", PATTERNS_8K)
@pytest.mark.parametrize("method", METHODS)
def test_figure3_8k_records(benchmark, method, pattern):
    config = bench_config(method, pattern, "random", record_size=8192)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


@pytest.mark.parametrize("pattern", ("rc", "rcb", "wcc"))
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure3_8byte_records(benchmark, method, pattern):
    config = bench_config(method, pattern, "random", record_size=8)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure3_ddio_beats_tc_on_random_layout(benchmark):
    """The headline comparison of the figure, in one benchmark."""
    def compare():
        ddio = bench_config("disk-directed", "rcb", "random")
        tc = bench_config("traditional", "rcb", "random")
        from repro.experiments import run_experiment
        return run_experiment(ddio, seed=1), run_experiment(tc, seed=1)

    ddio_result, tc_result = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["ddio_MBps"] = round(ddio_result.throughput_mb, 2)
    benchmark.extra_info["tc_MBps"] = round(tc_result.throughput_mb, 2)
    assert ddio_result.throughput >= 0.95 * tc_result.throughput
