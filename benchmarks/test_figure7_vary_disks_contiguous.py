"""Figure 7: one IOP, varying the number of disks, contiguous layout.

Paper result: throughput scales with the number of disks until the single
10 MB/s SCSI bus saturates (around 4-8 disks).
"""

import pytest

from benchmarks.conftest import MEGABYTE, bench_config, run_benchmark_case

DISK_COUNTS = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("disks", DISK_COUNTS)
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure7_point(benchmark, method, disks):
    config = bench_config(method, "rb", "contiguous", n_iops=1, n_disks=disks,
                          n_cps=16, file_size=MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure7_scaling_then_bus_saturation(benchmark):
    from repro.experiments import run_experiment

    def series():
        return [run_experiment(
            bench_config("disk-directed", "rb", "contiguous", n_iops=1,
                         n_disks=disks, n_cps=16, file_size=MEGABYTE),
            seed=1).throughput_mb for disks in (1, 4, 16)]

    one, four, sixteen = benchmark.pedantic(series, rounds=1, iterations=1)
    benchmark.extra_info["series"] = [one, four, sixteen]
    assert four > 2.5 * one          # scaling region
    assert sixteen < 11.0            # bus-limited region
