"""Figure 5: throughput as the number of CPs varies (contiguous, 8 KB records).

Paper result: disk-directed I/O is flat (unaffected by the CP count);
traditional caching suffers on ``rb`` (multiple localities) and on ``rc`` when
there are fewer CPs than IOPs (one outstanding block per CP cannot keep all
disks busy).
"""

import pytest

from benchmarks.conftest import bench_config, run_benchmark_case

CP_COUNTS = (2, 4, 16)
PATTERNS = ("ra", "rn", "rb", "rc")


@pytest.mark.parametrize("cps", CP_COUNTS)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure5_point(benchmark, method, pattern, cps):
    config = bench_config(method, pattern, "contiguous", n_cps=cps)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure5_ddio_flat_tc_rc_dips(benchmark):
    from repro.experiments import run_experiment

    def series():
        out = {}
        for method in ("disk-directed", "traditional"):
            out[method] = [
                run_experiment(bench_config(method, "rc", "contiguous", n_cps=cps),
                               seed=1).throughput_mb
                for cps in (2, 16)
            ]
        return out

    values = benchmark.pedantic(series, rounds=1, iterations=1)
    ddio_two, ddio_sixteen = values["disk-directed"]
    tc_two, tc_sixteen = values["traditional"]
    benchmark.extra_info["series"] = values
    assert abs(ddio_two - ddio_sixteen) / ddio_sixteen < 0.2
    assert tc_sixteen > 1.5 * tc_two
