"""Section 6 headline claims, measured end to end in one benchmark sweep."""

from repro.experiments import ExperimentConfig, sweep
from repro.experiments.claims import check_headline_claims

from benchmarks.conftest import MEGABYTE


def test_headline_claims_hold_in_shape(benchmark):
    """Run a compact Figure-3/4 sweep and evaluate every headline claim."""

    def run_sweep():
        configs = []
        for layout in ("contiguous", "random"):
            for pattern in ("rb", "rcb"):
                for method in ("disk-directed", "disk-directed-nosort",
                               "traditional"):
                    if layout == "contiguous" and method == "disk-directed-nosort":
                        continue
                    configs.append(ExperimentConfig(
                        method=method, pattern=pattern, record_size=8192,
                        layout=layout, file_size=2 * MEGABYTE))
        for method in ("disk-directed", "traditional"):
            configs.append(ExperimentConfig(
                method=method, pattern="rc", record_size=8,
                layout="contiguous", file_size=MEGABYTE // 4))
        return sweep(configs, trials=1)

    summaries = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    checks = check_headline_claims(summaries)
    for check in checks:
        benchmark.extra_info[check.claim[:40]] = check.measured_value
    failing = [check.claim for check in checks if not check.holds]
    assert checks
    assert not failing, f"claims violated: {failing}"
