"""Figure 4: disk-directed I/O vs traditional caching on the contiguous layout.

Paper result: disk-directed reads reach ~32.8 MB/s and writes ~34.8 MB/s
(93% of the 37.5 MB/s peak); traditional caching only matches that for the
friendliest patterns and is up to 16x slower in the worst case.
"""

import pytest

from benchmarks.conftest import MEGABYTE, bench_config, run_benchmark_case

PATTERNS_8K = ("ra", "rn", "rb", "rc", "rbb", "rcb", "rcn", "wb", "wcb", "wn")


@pytest.mark.parametrize("pattern", PATTERNS_8K)
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure4_8k_records(benchmark, method, pattern):
    config = bench_config(method, pattern, "contiguous", record_size=8192)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


@pytest.mark.parametrize("pattern", ("rc", "rbc"))
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure4_8byte_records(benchmark, method, pattern):
    config = bench_config(method, pattern, "contiguous", record_size=8)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure4_ddio_near_peak(benchmark):
    """DDIO on a large contiguous read should approach the disks' peak rate."""
    config = bench_config("disk-directed", "rb", "contiguous",
                          file_size=4 * MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    benchmark.extra_info["fraction_of_peak"] = round(result.throughput_mb / 37.5, 3)
    assert result.throughput_mb > 0.75 * 37.5
