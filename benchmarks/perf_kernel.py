#!/usr/bin/env python
"""Wall-clock benchmark of the simulation kernel, tracked over time.

Times the canonical trials (disk-directed and traditional caching, random and
contiguous layouts, at the benchmark-harness 1 MB scale plus the paper-scale
10 MB disk-directed random-blocks trial), compares them against the recorded
seed-kernel baseline, checks that a parallel sweep reproduces the serial
results bit-for-bit, and appends the measurements to ``BENCH_kernel.json`` —
a trajectory file: one entry per run, so the kernel's performance history is
visible across PRs.

Run from the repository root::

    python benchmarks/perf_kernel.py            # full run, appends a record
    python benchmarks/perf_kernel.py --quick    # skip the 10 MB trial

This is a plain script (not collected by pytest); the pytest-benchmark suite
in the sibling ``test_*.py`` modules covers per-figure simulated throughput.
"""

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ExperimentConfig, sweep, sweep_parallel  # noqa: E402
from repro.experiments.config import MEGABYTE  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402

#: Seed-kernel wall-clock baseline (min of 7 reps), measured at commit 48df3aa
#: on the reference container (Python 3.11, 1 CPU).  The ≥2x acceptance target
#: for the disk-directed random-blocks trial is judged against these numbers
#: when re-measuring on the same class of machine.
SEED_BASELINE_S = {
    "ddio_random_rb_10mb": 0.18423,
    "ddio_random_rb_1mb": 0.07110,
    "tc_random_rb_1mb": 0.06117,
    "ddio_contig_rb_1mb": 0.01358,
}

#: The canonical trials.  Keys must match SEED_BASELINE_S.
CASES = {
    "ddio_random_rb_10mb": ExperimentConfig(
        method="disk-directed", pattern="rb", layout="random",
        record_size=8192, file_size=10 * MEGABYTE),
    "ddio_random_rb_1mb": ExperimentConfig(
        method="disk-directed", pattern="rb", layout="random",
        record_size=8192, file_size=MEGABYTE),
    "tc_random_rb_1mb": ExperimentConfig(
        method="traditional", pattern="rb", layout="random",
        record_size=8192, file_size=MEGABYTE),
    "ddio_contig_rb_1mb": ExperimentConfig(
        method="disk-directed", pattern="rb", layout="contiguous",
        record_size=8192, file_size=MEGABYTE),
}

#: The trial the acceptance criterion is about.
HEADLINE_CASE = "ddio_random_rb_10mb"


def time_case(config, reps, seed=1):
    """Minimum wall-clock seconds over *reps* runs of one trial."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run_experiment(config, seed=seed)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def figure3_sized_configs():
    """A Figure-3-shaped config list (all patterns x methods, 1 MB scale)."""
    configs = []
    for pattern in ("ra", "rn", "rb", "rc"):
        for method in ("disk-directed", "disk-directed-nosort", "traditional"):
            configs.append(ExperimentConfig(
                method=method, pattern=pattern, record_size=8192,
                layout="random", file_size=MEGABYTE, label=method))
    return configs


def check_sweep_parallel(workers):
    """Serial-vs-parallel timing and bit-for-bit result comparison."""
    configs = figure3_sized_configs()
    start = time.perf_counter()
    serial = sweep(configs, trials=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep_parallel(configs, trials=1, workers=workers)
    parallel_s = time.perf_counter() - start
    identical = all(
        [dataclasses.asdict(r) for r in s.results]
        == [dataclasses.asdict(r) for r in p.results]
        for s, p in zip(serial, parallel))
    return {
        "configs": len(configs),
        "workers": workers,
        "serial_s": round(serial_s, 5),
        "parallel_s": round(parallel_s, 5),
        "scaling": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical_results": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--reps", type=int, default=7,
                        help="repetitions per case (minimum is reported)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the 10 MB paper-scale trial")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the sweep-scaling check")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the serial-vs-parallel sweep check")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json",
                        help="trajectory file to append to")
    parser.add_argument("--label", type=str, default="",
                        help="free-form label recorded with this run")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when any measured case is more "
                             "than --check-factor slower than the last "
                             "recorded run (CI bench-smoke regression gate)")
    parser.add_argument("--check-factor", type=float, default=2.0,
                        help="regression threshold for --check (default 2.0: "
                             "generous, to absorb noisy shared runners)")
    args = parser.parse_args(argv)

    timings = {}
    for name, config in CASES.items():
        if args.quick and name == HEADLINE_CASE:
            continue
        timings[name] = round(time_case(config, args.reps), 5)
        print(f"  {name:24s} {timings[name]:.5f} s "
              f"(seed {SEED_BASELINE_S[name]:.5f} s, "
              f"{SEED_BASELINE_S[name] / timings[name]:.2f}x)")

    speedups = {name: round(SEED_BASELINE_S[name] / secs, 3)
                for name, secs in timings.items()}

    record = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "reps": args.reps,
        "timings_s": timings,
        "speedup_vs_seed": speedups,
    }
    if not args.skip_sweep:
        record["sweep"] = check_sweep_parallel(args.workers)
        print(f"  sweep: serial {record['sweep']['serial_s']:.2f}s, "
              f"parallel({args.workers}) {record['sweep']['parallel_s']:.2f}s "
              f"on {record['cpus']} CPU(s), identical="
              f"{record['sweep']['identical_results']}")

    trajectory = {"schema": 1,
                  "baseline": {"commit": "48df3aa (seed)",
                               "timings_s": SEED_BASELINE_S},
                  "runs": []}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text())
            if isinstance(existing.get("runs"), list):
                trajectory["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass

    regressions = check_regression(trajectory["runs"], timings,
                                   args.check_factor) if args.check else []

    trajectory["runs"].append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {args.output} ({len(trajectory['runs'])} run(s))")

    headline = speedups.get(HEADLINE_CASE)
    if headline is not None:
        status = "PASS" if headline >= 2.0 else "BELOW TARGET"
        print(f"headline ({HEADLINE_CASE}): {headline:.2f}x vs seed [{status}]")

    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}")
        return 1
    if args.check:
        print(f"regression check: ok (threshold {args.check_factor:g}x "
              f"vs last recorded run)")
    return 0


def check_regression(previous_runs, timings, factor):
    """Compare *timings* against the last recorded timed run.

    Returns a list of human-readable regression descriptions (empty when
    everything is within *factor* of the previous run).  Profile-only
    records (no ``timings_s``) are skipped when looking for the reference.
    """
    reference = None
    for run in reversed(previous_runs):
        if isinstance(run.get("timings_s"), dict) and run["timings_s"]:
            reference = run
            break
    if reference is None:
        return []
    regressions = []
    for name, seconds in timings.items():
        before = reference["timings_s"].get(name)
        if before and seconds > factor * before:
            regressions.append(
                f"{name}: {seconds:.5f}s vs {before:.5f}s in the last run "
                f"({seconds / before:.2f}x, threshold {factor:g}x)")
    return regressions


if __name__ == "__main__":
    sys.exit(main())
