"""Ablation: number of DDIO buffers per disk (the paper uses two).

The paper argues two one-block buffers per disk are enough to overlap disk and
network activity; this ablation measures one, two and four buffers.
"""

import pytest

from repro import DiskDirectedFS, FileSystem, Machine, MachineConfig, make_pattern

from benchmarks.conftest import MEGABYTE


def _run_with_buffers(buffers, pattern_name="ra", layout="contiguous",
                      file_size=MEGABYTE, seed=1):
    config = MachineConfig()
    machine = Machine(config, seed=seed)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    fs = DiskDirectedFS(machine, striped, buffers_per_disk=buffers)
    pattern = make_pattern(pattern_name, file_size, 8192, config.n_cps)
    return fs.transfer(pattern)


@pytest.mark.parametrize("buffers", (1, 2, 4))
def test_buffers_per_disk(benchmark, buffers):
    result = benchmark.pedantic(lambda: _run_with_buffers(buffers),
                                rounds=1, iterations=1)
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 2)
    benchmark.extra_info["buffers_per_disk"] = buffers
    assert result.throughput_mb > 0


def test_two_buffers_close_to_four(benchmark):
    """Two buffers already capture nearly all of the overlap (paper's choice)."""
    def compare():
        return _run_with_buffers(2), _run_with_buffers(4)

    two, four = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["two_buffers"] = round(two.throughput_mb, 2)
    benchmark.extra_info["four_buffers"] = round(four.throughput_mb, 2)
    assert two.throughput >= 0.95 * four.throughput
