"""Ablation: the CP's outstanding-requests-per-disk limit in traditional caching.

The paper limits each CP to one outstanding request per disk as "a compromise
between maximising concurrency and the need to limit the potential load on
each IOP"; this ablation raises the limit.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, TraditionalCachingFS, make_pattern

from benchmarks.conftest import MEGABYTE


def _run(outstanding, pattern_name="rb", layout="random", file_size=MEGABYTE,
         seed=1):
    config = MachineConfig()
    machine = Machine(config, seed=seed)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    fs = TraditionalCachingFS(machine, striped, outstanding_per_disk=outstanding)
    pattern = make_pattern(pattern_name, file_size, 8192, config.n_cps)
    return fs.transfer(pattern)


@pytest.mark.parametrize("outstanding", (1, 2, 4))
def test_outstanding_per_disk(benchmark, outstanding):
    result = benchmark.pedantic(lambda: _run(outstanding), rounds=1, iterations=1)
    benchmark.extra_info["outstanding_per_disk"] = outstanding
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 2)
    assert result.throughput_mb > 0


def test_deeper_queues_do_not_hurt(benchmark):
    def compare():
        return _run(1), _run(4)

    one, four = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["one"] = round(one.throughput_mb, 2)
    benchmark.extra_info["four"] = round(four.throughput_mb, 2)
    assert four.throughput >= 0.9 * one.throughput
