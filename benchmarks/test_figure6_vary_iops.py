"""Figure 6: throughput as the number of IOPs (and SCSI busses) varies.

Paper result: with 16 disks total, fewer IOPs means more disks per bus; below
4 IOPs the 10 MB/s busses, not the disks, bound throughput.
"""

import pytest

from benchmarks.conftest import MEGABYTE, bench_config, run_benchmark_case

IOP_COUNTS = (1, 2, 4, 16)


@pytest.mark.parametrize("iops", IOP_COUNTS)
@pytest.mark.parametrize("method", ("disk-directed", "traditional"))
def test_figure6_point(benchmark, method, iops):
    config = bench_config(method, "rb", "contiguous", n_iops=iops, n_disks=16,
                          file_size=MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0


def test_figure6_bus_limit_with_one_iop(benchmark):
    config = bench_config("disk-directed", "rb", "contiguous", n_iops=1,
                          n_disks=16, file_size=2 * MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    # One 10 MB/s bus serves all sixteen disks.
    assert result.throughput_mb < 11.0


def test_figure6_disks_limit_with_many_iops(benchmark):
    config = bench_config("disk-directed", "rb", "contiguous", n_iops=16,
                          n_disks=16, file_size=2 * MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 20.0
