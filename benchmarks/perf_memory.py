#!/usr/bin/env python
"""CI memory gate: the streaming driver must be O(1) in the session count.

Runs a 100,000-session open-loop stream through the constant-memory service
driver (``retain_requests=False``) under ``tracemalloc`` and fails when the
driver-side allocation peak exceeds a fixed ceiling.  The ceiling (default
8 MB) is ~20x the measured steady-state peak (~0.4 MB) and ~15x *below*
what per-request record retention costs at this scale — so the gate trips on
any change that silently reintroduces O(n) state (a record list, an unfolded
response-time array, a handler leak) long before it trips on noise.

A second, 10x-smaller run pins the *shape*: the full run's peak must stay
within a small factor of the small run's, which asserts O(1) directly
instead of trusting one absolute number.

Run from the repository root::

    python benchmarks/perf_memory.py                 # the CI gate
    python benchmarks/perf_memory.py --sessions 20000 --ceiling-mb 8

Appends a record to ``BENCH_memory.json`` so the memory trajectory is
visible across PRs, next to the wall-clock trajectories.
"""

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.machine import MachineConfig  # noqa: E402
from repro.workload import ServiceWorkload, run_service  # noqa: E402

#: The gate workload: the smallest useful session (one 8 KB record), deep
#: overload, a tiny machine — per-session simulation cost is minimal, so
#: 100k sessions fit a CI smoke budget, and every byte of driver-side
#: growth is visible against the small baseline.
WORKLOAD = dict(arrival="poisson", arrival_rate=5000.0, concurrency=8,
                n_files=8, file_size=8 * 1024, layout="contiguous",
                read_fraction=0.7, pattern_specs=("b",), record_size=8192,
                seed=0)

MACHINE = dict(n_cps=2, n_iops=1, n_disks=2)

#: Peak-allocation ceiling for the full run, bytes.
DEFAULT_CEILING_MB = 8.0

#: The full run's peak may exceed the 10x-smaller run's by at most this
#: factor (plus the fixed slack) before we call the driver O(n) again.
SHAPE_FACTOR = 3.0
SHAPE_SLACK_MB = 2.0


def measure(sessions):
    """Peak traced allocation (bytes) and wall seconds for one streaming run."""
    workload = ServiceWorkload(n_requests=sessions, **WORKLOAD)
    machine_config = MachineConfig(**MACHINE)
    tracemalloc.start()
    start = time.perf_counter()
    result = run_service("traditional", workload,
                         machine_config=machine_config,
                         retain_requests=False)
    wall = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if not result.conserves_bytes():
        raise AssertionError("byte conservation violated in the memory gate")
    if result.aggregates["completed"] != sessions:
        raise AssertionError(
            f"only {result.aggregates['completed']} of {sessions} sessions "
            f"completed")
    return peak, wall


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=100_000,
                        help="sessions in the full run (default: 100000)")
    parser.add_argument("--ceiling-mb", type=float,
                        default=DEFAULT_CEILING_MB,
                        help="peak-allocation ceiling for the full run")
    parser.add_argument("--label", default="",
                        help="free-form label recorded with the result")
    parser.add_argument("--no-append", action="store_true",
                        help="don't append to BENCH_memory.json")
    args = parser.parse_args(argv)

    small_sessions = max(args.sessions // 10, 1)
    small_peak, small_wall = measure(small_sessions)
    print(f"{small_sessions} sessions: peak {small_peak / 1e6:.2f} MB "
          f"({small_wall:.1f}s)")
    full_peak, full_wall = measure(args.sessions)
    rate = args.sessions / full_wall if full_wall else 0.0
    print(f"{args.sessions} sessions: peak {full_peak / 1e6:.2f} MB "
          f"({full_wall:.1f}s, {rate:.0f} sessions/s traced)")

    ceiling = args.ceiling_mb * 1e6
    shape_limit = small_peak * SHAPE_FACTOR + SHAPE_SLACK_MB * 1e6
    failures = []
    if full_peak > ceiling:
        failures.append(
            f"peak {full_peak / 1e6:.2f} MB exceeds the "
            f"{args.ceiling_mb:g} MB ceiling")
    if full_peak > shape_limit:
        failures.append(
            f"peak grew from {small_peak / 1e6:.2f} MB "
            f"({small_sessions} sessions) to {full_peak / 1e6:.2f} MB "
            f"({args.sessions} sessions): the driver is no longer O(1)")

    if not args.no_append:
        record = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "label": args.label,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "sessions": args.sessions,
            "peak_bytes": full_peak,
            "small_sessions": small_sessions,
            "small_peak_bytes": small_peak,
            "wall_s": round(full_wall, 2),
            "ceiling_mb": args.ceiling_mb,
            "ok": not failures,
        }
        path = REPO_ROOT / "BENCH_memory.json"
        history = json.loads(path.read_text()) if path.exists() else []
        history.append(record)
        path.write_text(json.dumps(history, indent=2) + "\n")

    if failures:
        for failure in failures:
            print(f"MEMORY GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"memory gate ok: {full_peak / 1e6:.2f} MB peak for "
          f"{args.sessions} streaming sessions "
          f"(ceiling {args.ceiling_mb:g} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
