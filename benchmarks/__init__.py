"""Benchmark harness (pytest-benchmark based) for the paper's figures.

This is a package so the shared helpers in :mod:`benchmarks.conftest` can be
imported absolutely from the individual benchmark modules, which works under
any pytest import mode (relative imports break under rootdir collection).
Run with ``pytest benchmarks`` — the default test run (``pytest`` with no
arguments) only collects ``tests/``.
"""
