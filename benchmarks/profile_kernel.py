#!/usr/bin/env python
"""Per-subsystem event/time budget of the simulation kernel, tracked over time.

Runs the headline trial (the 10 MB disk-directed random-blocks experiment)
under ``cProfile``, aggregates the profile by subsystem (``repro.sim``,
``repro.disk``, ``repro.network``, ...), counts the simulator events the trial
scheduled, and appends the budget to ``BENCH_kernel.json`` — so every future
PR can see *where* the next optimisation lever is without re-deriving the
profile by hand.

Run from the repository root::

    python benchmarks/profile_kernel.py            # full run, appends a record
    python benchmarks/profile_kernel.py --smoke    # 1 MB trial, CI-sized
    python benchmarks/profile_kernel.py --no-append --top 20   # just print

The recorded ``profile`` block looks like::

    {"case": "ddio_random_rb_10mb", "events": 14570, "wall_s": 0.41,
     "subsystems": {"repro.sim": {"calls": ..., "tottime_s": ..., "share": ...},
                    ...},
     "top_functions": [{"function": "...", "calls": ..., "tottime_s": ...}]}

``share`` is the subsystem's fraction of total in-profiler time; ``events``
is the number of calendar entries the environment allocated end to end.
"""

import argparse
import cProfile
import json
import os
import platform
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import make_filesystem  # noqa: E402
from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.config import MEGABYTE  # noqa: E402
from repro.experiments.runner import build_machine_config  # noqa: E402
from repro.fs import FileSystem  # noqa: E402
from repro.machine import Machine  # noqa: E402
from repro.patterns import make_pattern  # noqa: E402

#: The trial the budget is measured on (mirrors perf_kernel's headline case).
CASES = {
    "ddio_random_rb_10mb": ExperimentConfig(
        method="disk-directed", pattern="rb", layout="random",
        record_size=8192, file_size=10 * MEGABYTE),
    "ddio_random_rb_1mb": ExperimentConfig(
        method="disk-directed", pattern="rb", layout="random",
        record_size=8192, file_size=MEGABYTE),
}

SRC_PREFIX = str(REPO_ROOT / "src" / "repro") + os.sep


def _subsystem_of(filename):
    """Map a profiled filename to its repro subsystem (or a bucket)."""
    if filename.startswith(SRC_PREFIX):
        rest = filename[len(SRC_PREFIX):]
        head = rest.split(os.sep, 1)[0]
        if head.endswith(".py"):
            return "repro"          # top-level module
        return f"repro.{head}"
    if "<" in filename:             # builtins, generator internals
        return "interpreter"
    return "stdlib/other"


def profile_case(config, seed=1):
    """Run one trial under cProfile; return (profile_record, wall_seconds)."""
    machine_config = build_machine_config(config)
    # Build outside the profiler so the budget is the *run*, not machine
    # construction; keep a handle on the environment to count events.
    machine = Machine(machine_config, seed=seed,
                     disk_scheduler=config.disk_scheduler)
    filesystem = FileSystem(machine_config, layout_seed=seed)
    striped_file = filesystem.create_file(
        "experiment-file", config.file_size, layout=config.layout)
    pattern = make_pattern(
        config.pattern, config.file_size, config.record_size, config.n_cps)
    implementation = make_filesystem(config.method, machine, striped_file)

    events_before = machine.env._eid
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    implementation.transfer(pattern)
    profiler.disable()
    wall = time.perf_counter() - start
    events = machine.env._eid - events_before

    stats = pstats.Stats(profiler)
    subsystems = {}
    functions = []
    total_tt = 0.0
    for (filename, lineno, funcname), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():
        bucket = subsystems.setdefault(_subsystem_of(filename),
                                       {"calls": 0, "tottime_s": 0.0})
        bucket["calls"] += ncalls
        bucket["tottime_s"] += tottime
        total_tt += tottime
        functions.append({
            "function": f"{Path(filename).name}:{lineno}({funcname})",
            "calls": ncalls,
            "tottime_s": round(tottime, 5),
            "cumtime_s": round(cumtime, 5),
        })
    for bucket in subsystems.values():
        bucket["tottime_s"] = round(bucket["tottime_s"], 5)
        bucket["share"] = round(bucket["tottime_s"] / total_tt, 4) \
            if total_tt else 0.0
    functions.sort(key=lambda row: row["tottime_s"], reverse=True)
    record = {
        "events": events,
        "wall_s": round(wall, 5),
        "events_per_second": int(events / wall) if wall else None,
        "subsystems": dict(sorted(subsystems.items(),
                                  key=lambda item: -item[1]["tottime_s"])),
        "top_functions": functions[:12],
    }
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: profile the 1 MB trial instead")
    parser.add_argument("--seed", type=int, default=1, help="trial seed")
    parser.add_argument("--top", type=int, default=10,
                        help="how many functions to print")
    parser.add_argument("--no-append", action="store_true",
                        help="print the budget without touching the trajectory")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json",
                        help="trajectory file to append to")
    parser.add_argument("--label", type=str, default="",
                        help="free-form label recorded with this run")
    args = parser.parse_args(argv)

    case = "ddio_random_rb_1mb" if args.smoke else "ddio_random_rb_10mb"
    profile = profile_case(CASES[case], seed=args.seed)
    profile["case"] = case

    print(f"{case}: {profile['events']} events in {profile['wall_s']:.3f}s "
          f"under cProfile ({profile['events_per_second']} events/s)")
    print("\nper-subsystem budget (tottime under cProfile):")
    for name, bucket in profile["subsystems"].items():
        print(f"  {name:16s} {bucket['tottime_s']:8.4f}s "
              f"{bucket['share']:7.1%}  {bucket['calls']:8d} calls")
    print(f"\ntop {args.top} functions:")
    for row in profile["top_functions"][:args.top]:
        print(f"  {row['tottime_s']:8.4f}s  {row['calls']:8d}x  {row['function']}")

    if args.no_append:
        return 0

    record = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "profile": profile,
    }
    trajectory = {"schema": 1, "runs": []}
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text())
            if isinstance(existing, dict):
                trajectory.update(existing)
                if not isinstance(trajectory.get("runs"), list):
                    trajectory["runs"] = []
        except (json.JSONDecodeError, OSError):
            pass
    trajectory["runs"].append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(trajectory['runs'])} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
