"""Ablation: the drive-level scheduling policy under traditional caching.

Disk-directed I/O owns its request order (presorted list), so the device
scheduler matters mainly for traditional caching, whose IOPs submit requests
in arrival order.  CSCAN at the drive recovers part of DDIO's presort benefit.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, TraditionalCachingFS, make_pattern

from benchmarks.conftest import MEGABYTE


def _run_tc_with_scheduler(scheduler, pattern_name="rb", layout="random",
                           file_size=MEGABYTE, seed=1):
    config = MachineConfig()
    machine = Machine(config, seed=seed, disk_scheduler=scheduler)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    fs = TraditionalCachingFS(machine, striped)
    pattern = make_pattern(pattern_name, file_size, 8192, config.n_cps)
    return fs.transfer(pattern)


@pytest.mark.parametrize("scheduler", ("fcfs", "sstf", "cscan"))
def test_tc_with_scheduler(benchmark, scheduler):
    result = benchmark.pedantic(lambda: _run_tc_with_scheduler(scheduler),
                                rounds=1, iterations=1)
    benchmark.extra_info["scheduler"] = scheduler
    benchmark.extra_info["throughput_MBps"] = round(result.throughput_mb, 2)
    assert result.throughput_mb > 0


def test_cscan_not_slower_than_fcfs_on_random_layout(benchmark):
    def compare():
        return _run_tc_with_scheduler("fcfs"), _run_tc_with_scheduler("cscan")

    fcfs, cscan = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["fcfs"] = round(fcfs.throughput_mb, 2)
    benchmark.extra_info["cscan"] = round(cscan.throughput_mb, 2)
    assert cscan.throughput >= 0.9 * fcfs.throughput
