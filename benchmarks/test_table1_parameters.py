"""Table 1: the simulator parameters, plus single-disk micro-benchmarks.

The table itself needs no simulation; the micro-benchmarks measure the raw
disk model so that the figure-level results can be interpreted against the
hardware limits the paper quotes (2.34 MB/s per disk, 37.5 MB/s aggregate,
10 MB/s per SCSI bus).
"""

import pytest

from repro.experiments.figures import table1

from benchmarks.conftest import KILOBYTE, bench_config, run_benchmark_case

MEGABYTE = 2 ** 20


def test_table1_parameters_match_paper(benchmark):
    def build():
        rows, text = table1()
        return {row["parameter"]: row["value"] for row in rows}

    parameters = benchmark.pedantic(build, rounds=1, iterations=1)
    assert parameters["Compute processors (CPs)"] == "16"
    assert parameters["I/O processors (IOPs)"] == "16"
    assert parameters["Disks"] == "16"
    assert "2.34" in parameters["Disk peak transfer rate"]
    assert "10" in parameters["I/O bus peak bandwidth"]


@pytest.mark.parametrize("layout", ["contiguous", "random"])
def test_single_disk_streaming_rate(benchmark, layout):
    """One CP, one IOP, one disk: the per-spindle limit of every figure."""
    config = bench_config("disk-directed", "rn", layout,
                          file_size=MEGABYTE // 2, n_cps=1, n_iops=1, n_disks=1)
    result = run_benchmark_case(benchmark, config)
    if layout == "contiguous":
        assert result.throughput_mb > 1.8   # close to the 2.34 MB/s peak
    else:
        assert result.throughput_mb < 1.0   # seek/rotation bound


def test_aggregate_peak_with_all_disks(benchmark):
    """All 16 disks streaming: the 37.5 MB/s ceiling of Figures 4-7."""
    config = bench_config("disk-directed", "rb", "contiguous",
                          file_size=2 * MEGABYTE)
    result = run_benchmark_case(benchmark, config)
    assert result.throughput_mb > 0.6 * 37.5
