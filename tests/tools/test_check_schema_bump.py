"""Unit tests for the CI schema-bump guard (pure-logic parts)."""

from tools.check_schema_bump import (
    extract_version,
    model_files_changed,
    needs_bump,
)


class TestExtractVersion:
    def test_reads_the_declaration(self):
        assert extract_version("x = 1\nCACHE_SCHEMA_VERSION = 7\n") == 7

    def test_ignores_indented_or_commented_lines(self):
        source = "# CACHE_SCHEMA_VERSION = 3\n    CACHE_SCHEMA_VERSION = 4\n"
        assert extract_version(source) is None

    def test_missing_is_none(self):
        assert extract_version("") is None
        assert extract_version(None) is None


class TestModelFilter:
    def test_model_trees_match(self):
        changed = [
            "src/repro/core/ddio.py",
            "src/repro/workload/driver.py",
            "docs/workloads.md",
            "tests/core/test_ddio.py",
            "src/repro/experiments/figures.py",
        ]
        assert model_files_changed(changed) == [
            "src/repro/core/ddio.py",
            "src/repro/workload/driver.py",
        ]

    def test_runner_module_is_model_relevant(self):
        # The runner defines the cache envelope, content hash and key
        # derivation for the multi-host shared store: a change there can
        # make old entries readable-but-wrong on another host, so it must
        # carry a bump like any model file.
        assert model_files_changed(["src/repro/experiments/runner.py"]) == \
            ["src/repro/experiments/runner.py"]

    def test_other_experiment_harness_files_excluded(self):
        # Only the runner is envelope-defining; figure plumbing and report
        # formatting stay exempt.
        changed = ["src/repro/experiments/figures.py",
                   "src/repro/experiments/report.py",
                   "src/repro/experiments/service.py"]
        assert model_files_changed(changed) == []

    def test_runner_change_without_bump_fails(self):
        assert needs_bump(["src/repro/experiments/runner.py"], 7, 7)
        assert not needs_bump(["src/repro/experiments/runner.py"], 6, 7)

    def test_redundancy_layer_is_model_relevant(self):
        # The parity layer changes what simulated requests cost and where
        # they land; the disk tree prefix must keep catching new modules
        # added under it.
        changed = ["src/repro/disk/redundancy.py", "docs/redundancy.md"]
        assert model_files_changed(changed) == \
            ["src/repro/disk/redundancy.py"]
        assert needs_bump(changed, 9, 9)
        assert not needs_bump(changed, 9, 10)


class TestNeedsBump:
    def test_no_model_change_never_needs_bump(self):
        assert not needs_bump(["docs/workloads.md"], 2, 2)

    def test_model_change_with_same_version_fails(self):
        assert needs_bump(["src/repro/disk/drive.py"], 2, 2)

    def test_model_change_with_bump_passes(self):
        assert not needs_bump(["src/repro/disk/drive.py"], 2, 3)

    def test_decrement_fails(self):
        assert needs_bump(["src/repro/disk/drive.py"], 3, 2)

    def test_missing_or_unparseable_head_version_fails_safe(self):
        # A refactor that removes (or rewrites beyond the regex) the
        # declaration must fail, not silently pass as "bumped".
        assert needs_bump(["src/repro/sim/engine.py"], 2, None)
        assert needs_bump(["src/repro/sim/engine.py"], None, None)

    def test_first_introduction_counts_as_bump(self):
        assert not needs_bump(["src/repro/sim/engine.py"], None, 1)
