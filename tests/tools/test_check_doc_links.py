"""Tests for the docs dead-link / staleness checker CI guard."""

import json

from tools.check_doc_links import (
    dead_links,
    default_files,
    figure_names,
    is_checkable,
    iter_code_references,
    known_flags,
    main,
    module_resolves,
    stale_references,
    stale_tables,
    tree_path_exists,
)


def write(path, text):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestCheckable:
    def test_external_and_anchor_links_skipped(self):
        assert not is_checkable("https://example.org/paper.pdf")
        assert not is_checkable("http://example.org")
        assert not is_checkable("mailto:kotz@example.edu")
        assert not is_checkable("#determinism")
        assert not is_checkable("/absolute/site/path")

    def test_relative_paths_checked(self):
        assert is_checkable("scheduling.md")
        assert is_checkable("../README.md")
        assert is_checkable("architecture.md#the-layers")


class TestDeadLinks:
    def test_resolving_links_pass(self, tmp_path):
        write(tmp_path / "docs" / "other.md", "# other")
        doc = write(tmp_path / "docs" / "index.md",
                    "See [other](other.md) and [up](../README.md) "
                    "and [anchored](other.md#top) and [web](https://x.org).")
        write(tmp_path / "README.md", "# readme")
        assert dead_links(doc) == []

    def test_dead_link_reported_with_line_number(self, tmp_path):
        doc = write(tmp_path / "docs" / "index.md",
                    "fine line\nsee [gone](missing.md) here\n")
        assert dead_links(doc) == [(2, "missing.md")]

    def test_dead_anchored_link_reported(self, tmp_path):
        doc = write(tmp_path / "a.md", "[x](gone.md#section)")
        assert dead_links(doc) == [(1, "gone.md#section")]

    def test_image_links_checked_too(self, tmp_path):
        doc = write(tmp_path / "a.md", "![fig](figures/missing.png)")
        assert dead_links(doc) == [(1, "figures/missing.png")]


def make_repo(tmp_path):
    """A miniature repository tree for staleness checks."""
    write(tmp_path / "src" / "repro" / "__init__.py", "")
    write(tmp_path / "src" / "repro" / "sim" / "__init__.py", "")
    write(tmp_path / "src" / "repro" / "sim" / "engine.py", "X = 1\n")
    write(tmp_path / "src" / "repro" / "experiments" / "figures.py",
          'FIGURES = {\n    "figure3": f3,\n    "service": svc,\n}\n')
    write(tmp_path / "tools" / "demo.py",
          'parser.add_argument("--workers")\n')
    return tmp_path


class TestCodeReferenceScan:
    def test_inline_spans_and_fenced_lines_found(self, tmp_path):
        doc = write(tmp_path / "d.md",
                    "See `src/a.py` here.\n```\npython run.py --fast\n```\n")
        refs = list(iter_code_references(doc.read_text()))
        assert (1, "src/a.py") in refs
        assert (3, "python run.py --fast") in refs

    def test_fence_markers_not_yielded(self, tmp_path):
        doc = write(tmp_path / "d.md", "```bash\nls\n```\n")
        assert list(iter_code_references(doc.read_text())) == [(2, "ls")]


class TestStaleReferences:
    def test_existing_references_pass(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md",
                    "`src/repro/sim/engine.py` and `repro.sim.engine` and "
                    "`repro.sim.engine.X` and `--workers` and\n"
                    "```\nddio-figures service --workers 4\n```\n")
        assert stale_references(doc, root=root) == []

    def test_missing_tree_path_reported(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`src/repro/gone.py`")
        assert stale_references(doc, root=root) == \
            [(1, "path", "src/repro/gone.py")]

    def test_pytest_node_id_checks_file_part_only(self, tmp_path):
        root = make_repo(tmp_path)
        write(root / "tests" / "test_x.py", "")
        doc = write(root / "docs" / "a.md", "`tests/test_x.py::TestX`")
        assert stale_references(doc, root=root) == []

    def test_missing_module_reported(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`repro.sim.retired_module.attr`")
        assert stale_references(doc, root=root) == \
            [(1, "module", "repro.sim.retired_module.attr")]

    def test_unknown_flag_reported(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "run with `--no-such-flag`")
        assert stale_references(doc, root=root) == \
            [(1, "flag", "--no-such-flag")]

    def test_unknown_figure_name_reported(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "```\nddio-figures figure99\n```\n")
        assert stale_references(doc, root=root) == \
            [(2, "figure", "figure99")]

    def test_external_tool_flags_allowed(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`pytest --cov=repro`")
        assert stale_references(doc, root=root) == []


class TestStalenessHelpers:
    def test_tree_path_exists(self, tmp_path):
        root = make_repo(tmp_path)
        assert tree_path_exists("src/repro/sim/engine.py", root)
        assert not tree_path_exists("src/repro/sim/gone.py", root)

    def test_module_resolves_packages_modules_and_attributes(self, tmp_path):
        root = make_repo(tmp_path)
        assert module_resolves("repro.sim", root)
        assert module_resolves("repro.sim.engine", root)
        assert module_resolves("repro.sim.engine.X", root)
        assert not module_resolves("repro.gone.engine.X", root)

    def test_two_segment_typo_is_not_excused_as_attribute(self, tmp_path):
        # `repro.<typo>` must not pass just because the top-level package
        # exists: the attribute fallback needs a two-segment module prefix.
        root = make_repo(tmp_path)
        assert not module_resolves("repro.simulation", root)

    def test_precomputed_flags_and_figures_are_honoured(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`--workers`")
        assert stale_references(doc, root=root, flags={"--workers"},
                                figures=set()) == []
        assert stale_references(doc, root=root, flags=set(),
                                figures=set()) == [(1, "flag", "--workers")]

    def test_known_flags_harvested_from_sources(self, tmp_path):
        root = make_repo(tmp_path)
        assert "--workers" in known_flags(root)
        assert "--cov" in known_flags(root)  # external allowlist

    def test_figure_names_parsed_without_import(self, tmp_path):
        root = make_repo(tmp_path)
        assert figure_names(root) == {"figure3", "service"}

    def test_figure_names_empty_when_source_missing(self, tmp_path):
        assert figure_names(tmp_path) == set()


def write_artifact(tmp_path, payload):
    return write(tmp_path / "docs" / "data" / "grid.json",
                 json.dumps(payload))


#: A two-record artifact under a ``rows`` key (the default select).
GRID = {"rows": [
    {"K": 1, "scheduler": "fcfs", "throughput_mb": 5.048},
    {"K": 1, "scheduler": "shared-cscan", "throughput_mb": 5.071},
]}

MARKER = ("<!-- doctable source=data/grid.json "
          "row={K}|{scheduler}|{throughput_mb:.2f} -->\n")

TABLE = ("| K | scheduler | MB/s |\n"
         "|---|---|---|\n"
         "| 1 | fcfs | 5.05 |\n"
         "| 1 | shared-cscan | 5.07 |\n")


class TestDoctables:
    def test_matching_table_passes(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md", MARKER + "\n" + TABLE)
        assert stale_tables(doc) == []

    def test_doc_may_quote_a_subset_of_records(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    MARKER + "\n| K | scheduler | MB/s |\n|---|---|---|\n"
                             "| 1 | fcfs | 5.05 |\n")
        assert stale_tables(doc) == []

    def test_bold_and_whitespace_ignored(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    MARKER + "\n| K | scheduler | MB/s |\n|---|---|---|\n"
                             "| 1 | fcfs     | **5.05** |\n")
        assert stale_tables(doc) == []

    def test_stale_row_reported_with_line_number(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    MARKER + "\n| K | scheduler | MB/s |\n|---|---|---|\n"
                             "| 1 | fcfs | 9.99 |\n")
        assert stale_tables(doc) == \
            [(5, "table-row", "| 1 | fcfs | 9.99 |")]

    def test_missing_artifact_reported(self, tmp_path):
        doc = write(tmp_path / "docs" / "a.md", MARKER + "\n" + TABLE)
        assert stale_tables(doc) == \
            [(1, "doctable", "missing data/grid.json")]

    def test_bad_select_path_reported(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    MARKER.replace("doctable ", "doctable select=gone ")
                    + "\n" + TABLE)
        failures = stale_tables(doc)
        assert len(failures) == 1
        assert failures[0][1] == "doctable"

    def test_template_field_absent_from_record_reported(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    "<!-- doctable source=data/grid.json row={nope} -->\n\n"
                    + TABLE)
        failures = stale_tables(doc)
        assert len(failures) == 1
        assert failures[0][1] == "doctable"

    def test_marker_without_row_reported(self, tmp_path):
        doc = write(tmp_path / "docs" / "a.md",
                    "<!-- doctable source=data/grid.json -->\n\n" + TABLE)
        assert stale_tables(doc) == \
            [(1, "doctable", "marker needs source= and row=")]

    def test_dangling_marker_reported(self, tmp_path):
        write_artifact(tmp_path, GRID)
        doc = write(tmp_path / "docs" / "a.md",
                    MARKER + "\nprose\nmore prose\nstill prose\nyet more\n"
                             "and more\nno table anywhere\n")
        assert stale_tables(doc) == \
            [(1, "doctable", "no table follows the marker")]

    def test_multiline_marker_with_pivot_mode(self, tmp_path):
        payload = {"rows": [
            {"load": 4, "method": "disk-directed", "mb": 4.54},
            {"load": 4, "method": "traditional", "mb": 3.83},
            {"load": 8, "method": "disk-directed", "mb": 8.84},
            {"load": 8, "method": "traditional", "mb": 4.84},
        ]}
        write_artifact(tmp_path, payload)
        doc = write(tmp_path / "docs" / "a.md",
                    "<!-- doctable source=data/grid.json\n"
                    "     group=load pivot=method\n"
                    "     row={load:g}|{disk_directed__mb:.2f}"
                    "|{traditional__mb:.2f} -->\n\n"
                    "| load | DDIO | TC |\n|---|---|---|\n"
                    "| 4 | 4.54 | 3.83 |\n"
                    "| 8 | 8.84 | 4.84 |\n")
        assert stale_tables(doc) == []

    def test_file_without_markers_has_no_failures(self, tmp_path):
        doc = write(tmp_path / "docs" / "a.md", "# no tables here\n" + TABLE)
        assert stale_tables(doc) == []


class TestMain:
    def test_default_file_set(self, tmp_path):
        write(tmp_path / "README.md", "[d](docs/a.md)")
        write(tmp_path / "docs" / "a.md", "# a")
        files = default_files(tmp_path)
        assert [f.name for f in files] == ["README.md", "a.md"]

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        doc = write(tmp_path / "doc.md", "[ok](other.md)")
        write(tmp_path / "other.md", "x")
        assert main([str(doc)]) == 0
        assert "all links and code references resolve" in \
            capsys.readouterr().out

    def test_exit_one_on_dead_link(self, tmp_path, capsys):
        doc = write(tmp_path / "doc.md", "[bad](nope.md)")
        assert main([str(doc)]) == 1
        assert "nope.md" in capsys.readouterr().out

    def test_exit_one_on_stale_reference(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`src/repro/gone.py`")
        assert main([str(doc), "--root", str(root)]) == 1
        assert "stale path" in capsys.readouterr().out

    def test_links_only_skips_staleness(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", "`src/repro/gone.py`")
        assert main([str(doc), "--root", str(root), "--links-only"]) == 0

    def test_exit_one_on_stale_table_row(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        write_artifact(root, GRID)
        doc = write(root / "docs" / "a.md",
                    MARKER + "\n| K | scheduler | MB/s |\n|---|---|---|\n"
                             "| 1 | fcfs | 9.99 |\n")
        assert main([str(doc), "--root", str(root)]) == 1
        assert "stale table-row" in capsys.readouterr().out

    def test_links_only_skips_doctables_too(self, tmp_path):
        root = make_repo(tmp_path)
        doc = write(root / "docs" / "a.md", MARKER + "\n" + TABLE)
        assert main([str(doc), "--root", str(root), "--links-only"]) == 0

    def test_repo_docs_are_clean(self):
        # The real README + docs tree must stay link-clean (what CI enforces).
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        assert main(["--root", str(repo_root)]) == 0
