"""Tests for the docs dead-link checker CI guard."""

from tools.check_doc_links import dead_links, default_files, is_checkable, main


def write(path, text):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestCheckable:
    def test_external_and_anchor_links_skipped(self):
        assert not is_checkable("https://example.org/paper.pdf")
        assert not is_checkable("http://example.org")
        assert not is_checkable("mailto:kotz@example.edu")
        assert not is_checkable("#determinism")
        assert not is_checkable("/absolute/site/path")

    def test_relative_paths_checked(self):
        assert is_checkable("scheduling.md")
        assert is_checkable("../README.md")
        assert is_checkable("architecture.md#the-layers")


class TestDeadLinks:
    def test_resolving_links_pass(self, tmp_path):
        write(tmp_path / "docs" / "other.md", "# other")
        doc = write(tmp_path / "docs" / "index.md",
                    "See [other](other.md) and [up](../README.md) "
                    "and [anchored](other.md#top) and [web](https://x.org).")
        write(tmp_path / "README.md", "# readme")
        assert dead_links(doc) == []

    def test_dead_link_reported_with_line_number(self, tmp_path):
        doc = write(tmp_path / "docs" / "index.md",
                    "fine line\nsee [gone](missing.md) here\n")
        assert dead_links(doc) == [(2, "missing.md")]

    def test_dead_anchored_link_reported(self, tmp_path):
        doc = write(tmp_path / "a.md", "[x](gone.md#section)")
        assert dead_links(doc) == [(1, "gone.md#section")]

    def test_image_links_checked_too(self, tmp_path):
        doc = write(tmp_path / "a.md", "![fig](figures/missing.png)")
        assert dead_links(doc) == [(1, "figures/missing.png")]


class TestMain:
    def test_default_file_set(self, tmp_path):
        write(tmp_path / "README.md", "[d](docs/a.md)")
        write(tmp_path / "docs" / "a.md", "# a")
        files = default_files(tmp_path)
        assert [f.name for f in files] == ["README.md", "a.md"]

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        doc = write(tmp_path / "doc.md", "[ok](other.md)")
        write(tmp_path / "other.md", "x")
        assert main([str(doc)]) == 0
        assert "all relative links resolve" in capsys.readouterr().out

    def test_exit_one_on_dead_link(self, tmp_path, capsys):
        doc = write(tmp_path / "doc.md", "[bad](nope.md)")
        assert main([str(doc)]) == 1
        assert "nope.md" in capsys.readouterr().out

    def test_repo_docs_are_clean(self):
        # The real README + docs tree must stay link-clean (what CI enforces).
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        assert main(["--root", str(repo_root)]) == 0
