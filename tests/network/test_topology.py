"""Tests for the torus topology."""

import pytest

from repro.network import TorusTopology


class TestConstruction:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            TorusTopology(0)

    def test_paper_machine_fits_on_6x6(self):
        # 32 processors -> the paper's 6x6 torus.
        assert TorusTopology(32).dimensions == (6, 6)

    def test_explicit_dimensions_respected(self):
        assert TorusTopology(8, dimensions=(2, 4)).dimensions == (2, 4)

    def test_too_small_dimensions_rejected(self):
        with pytest.raises(ValueError):
            TorusTopology(10, dimensions=(3, 3))


class TestHops:
    def test_self_distance_is_zero(self):
        topo = TorusTopology(16)
        assert topo.hops(5, 5) == 0

    def test_neighbours_are_one_hop(self):
        topo = TorusTopology(16)  # 4x4
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 4) == 1

    def test_wraparound_shortens_paths(self):
        topo = TorusTopology(16)  # 4x4
        # Node 0 and node 3 are adjacent through the wrap-around link.
        assert topo.hops(0, 3) == 1

    def test_symmetric(self):
        topo = TorusTopology(32)
        for src, dst in [(0, 31), (3, 17), (8, 25)]:
            assert topo.hops(src, dst) == topo.hops(dst, src)

    def test_triangle_inequality(self):
        topo = TorusTopology(16)
        for a in range(16):
            for b in range(16):
                for c in (0, 5, 10, 15):
                    assert topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b)

    def test_out_of_range_rejected(self):
        topo = TorusTopology(4)
        with pytest.raises(ValueError):
            topo.hops(0, 4)

    def test_max_distance_on_torus(self):
        topo = TorusTopology(36)  # 6x6
        maximum = max(topo.hops(0, node) for node in range(36))
        assert maximum == 6  # 3 + 3

    def test_mean_hops_positive_and_bounded(self):
        topo = TorusTopology(16)
        assert 0 < topo.mean_hops() <= 4

    def test_coordinates_row_major(self):
        topo = TorusTopology(16)  # 4x4
        assert topo.coordinates_of(0) == (0, 0)
        assert topo.coordinates_of(5) == (1, 1)
        assert topo.coordinates_of(15) == (3, 3)
