"""Tests for messages and mailboxes."""

from repro.network import Mailbox, Message, MessageKind
from repro.network.message import HEADER_BYTES
from repro.sim import Environment


class TestMessage:
    def test_wire_bytes_adds_header(self):
        message = Message(kind=MessageKind.READ_REPLY, src=0, dst=1, data_bytes=100)
        assert message.wire_bytes == 100 + HEADER_BYTES

    def test_control_message_is_header_only(self):
        message = Message(kind=MessageKind.COLLECTIVE_REQUEST, src=0, dst=1)
        assert message.wire_bytes == HEADER_BYTES

    def test_message_ids_are_unique(self):
        first = Message(kind=MessageKind.MEMPUT, src=0, dst=1)
        second = Message(kind=MessageKind.MEMPUT, src=0, dst=1)
        assert first.message_id != second.message_id

    def test_all_protocol_kinds_exist(self):
        names = {kind.name for kind in MessageKind}
        assert {"READ_REQUEST", "READ_REPLY", "WRITE_REQUEST", "COLLECTIVE_REQUEST",
                "COLLECTIVE_DONE", "MEMPUT", "MEMGET_REQUEST"} <= names


class TestMailbox:
    def test_deliver_then_receive(self):
        env = Environment()
        mailbox = Mailbox(env, name="iop0")
        received = []

        def consumer(env):
            message = yield mailbox.receive("requests")
            received.append(message)

        message = Message(kind=MessageKind.READ_REQUEST, src=1, dst=0)
        mailbox.deliver(message, "requests")
        env.process(consumer(env))
        env.run()
        assert received == [message]

    def test_receive_blocks_until_delivery(self):
        env = Environment()
        mailbox = Mailbox(env)
        arrival = []

        def consumer(env):
            yield mailbox.receive()
            arrival.append(env.now)

        def producer(env):
            yield env.timeout(2.0)
            yield mailbox.deliver(Message(kind=MessageKind.DONE, src=0, dst=1))

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert arrival == [2.0]

    def test_tags_are_independent_queues(self):
        env = Environment()
        mailbox = Mailbox(env)
        got = []

        def consumer(env, tag):
            message = yield mailbox.receive(tag)
            got.append((tag, message.kind))

        mailbox.deliver(Message(kind=MessageKind.READ_REQUEST, src=0, dst=1), "a")
        mailbox.deliver(Message(kind=MessageKind.WRITE_REQUEST, src=0, dst=1), "b")
        env.process(consumer(env, "b"))
        env.process(consumer(env, "a"))
        env.run()
        assert sorted(got) == [("a", MessageKind.READ_REQUEST),
                               ("b", MessageKind.WRITE_REQUEST)]

    def test_pending_counts_per_tag(self):
        env = Environment()
        mailbox = Mailbox(env)
        mailbox.deliver(Message(kind=MessageKind.DONE, src=0, dst=1), "done")
        env.run()
        assert mailbox.pending("done") == 1
        assert mailbox.pending("other") == 0
