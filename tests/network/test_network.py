"""Tests for the message-level network model."""

import pytest

from repro.network import Mailbox, Message, MessageKind, Network
from repro.sim import Environment


def make_network(env, n_nodes=4, bandwidth=100e6, router_latency=1e-6):
    return Network(env, n_nodes=n_nodes, bandwidth=bandwidth,
                   router_latency=router_latency)


class TestTransfer:
    def test_transfer_time_scales_with_size(self):
        env = Environment()
        network = make_network(env)

        def mover(env, n_bytes):
            start = env.now
            yield from network.transfer(0, 1, n_bytes)
            return env.now - start

        small = env.run(env.process(mover(env, 1000)))
        env = Environment()
        network = make_network(env)
        large = env.run(env.process(mover(env, 100000)))
        assert large > small

    def test_zero_byte_transfer_costs_only_latency(self):
        env = Environment()
        network = make_network(env, router_latency=1e-6)

        def mover(env):
            yield from network.transfer(0, 1, 0)
            return env.now

        elapsed = env.run(env.process(mover(env)))
        assert elapsed == pytest.approx(network.wire_latency(0, 1), abs=1e-9)

    def test_negative_size_rejected(self):
        env = Environment()
        network = make_network(env)
        with pytest.raises(ValueError):
            list(network.transfer(0, 1, -5))

    def test_wire_latency_proportional_to_hops(self):
        env = Environment()
        network = make_network(env, n_nodes=16, router_latency=1e-6)
        assert network.wire_latency(0, 1) < network.wire_latency(0, 10)

    def test_byte_counters_updated(self):
        env = Environment()
        network = make_network(env)

        def mover(env):
            yield from network.transfer(0, 2, 5000)

        env.run(env.process(mover(env)))
        assert network.bytes_sent.value == 5000
        assert network.interfaces[0].bytes_sent.value == 5000
        assert network.interfaces[2].bytes_received.value == 5000

    def test_sender_interface_serialises_concurrent_transfers(self):
        env = Environment()
        network = make_network(env, bandwidth=1e6, router_latency=0.0)

        def mover(env, dst):
            yield from network.transfer(0, dst, 1_000_000)

        procs = [env.process(mover(env, dst)) for dst in (1, 2)]
        env.run(env.all_of(procs))
        # Two 1 MB transfers through a 1 MB/s sender NIC: at least ~2 s.
        assert env.now >= 2.0

    def test_distinct_senders_proceed_in_parallel(self):
        env = Environment()
        network = make_network(env, bandwidth=1e6, router_latency=0.0)

        def mover(env, src, dst):
            yield from network.transfer(src, dst, 1_000_000)

        procs = [env.process(mover(env, 0, 2)), env.process(mover(env, 1, 3))]
        env.run(env.all_of(procs))
        assert env.now == pytest.approx(2.0, rel=0.1)  # rx+tx serialisation only


class TestSend:
    def test_send_delivers_to_mailbox(self):
        env = Environment()
        network = make_network(env)
        mailbox = Mailbox(env)
        received = []

        def sender(env):
            message = Message(kind=MessageKind.READ_REQUEST, src=0, dst=3,
                              data_bytes=64)
            yield from network.send(message, mailbox, tag="fs")

        def receiver(env):
            message = yield mailbox.receive("fs")
            received.append((env.now, message.kind))

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert len(received) == 1
        assert received[0][1] == MessageKind.READ_REQUEST
        assert received[0][0] > 0.0
