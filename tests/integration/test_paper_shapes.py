"""Shape tests: the qualitative results of the paper's evaluation.

These use scaled-down files (the relationships, not the absolute numbers, are
asserted), on the paper's 16-CP / 16-IOP / 16-disk machine where it matters.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, make_filesystem, make_pattern

MEGABYTE = 2 ** 20
KILOBYTE = 1024


def run(method, pattern_name, layout, record_size=8192, file_size=MEGABYTE,
        config=None, seed=1):
    config = config or MachineConfig()
    machine = Machine(config, seed=seed)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    return make_filesystem(method, machine, striped).transfer(pattern)


@pytest.mark.slow
class TestFigure4Shapes:
    """Contiguous layout: DDIO approaches peak; TC depends on the pattern."""

    def test_ddio_read_approaches_peak_disk_bandwidth(self):
        result = run("disk-directed", "rb", "contiguous", file_size=4 * MEGABYTE)
        assert result.throughput_mb > 0.75 * 37.5

    def test_ddio_write_approaches_peak_disk_bandwidth(self):
        result = run("disk-directed", "wb", "contiguous", file_size=4 * MEGABYTE)
        assert result.throughput_mb > 0.7 * 37.5

    def test_tc_loses_on_multi_locality_pattern(self):
        ddio = run("disk-directed", "rb", "contiguous", file_size=2 * MEGABYTE)
        tc = run("traditional", "rb", "contiguous", file_size=2 * MEGABYTE)
        assert ddio.throughput > 1.5 * tc.throughput

    def test_tc_matches_ddio_on_single_reader(self):
        ddio = run("disk-directed", "rn", "contiguous", file_size=2 * MEGABYTE)
        tc = run("traditional", "rn", "contiguous", file_size=2 * MEGABYTE)
        assert tc.throughput > 0.85 * ddio.throughput

    def test_small_records_hurt_tc_much_more_than_ddio(self):
        ddio = run("disk-directed", "rc", "contiguous", record_size=8,
                   file_size=MEGABYTE // 2)
        tc = run("traditional", "rc", "contiguous", record_size=8,
                 file_size=MEGABYTE // 4)
        assert ddio.throughput_mb > 5 * tc.throughput_mb


@pytest.mark.slow
class TestFigure3Shapes:
    """Random-blocks layout: DDIO consistent, presort pays, TC pattern-dependent."""

    def test_ddio_beats_tc_for_every_sampled_pattern(self):
        for pattern in ("rb", "rcb", "wb"):
            ddio = run("disk-directed", pattern, "random", file_size=MEGABYTE)
            tc = run("traditional", pattern, "random", file_size=MEGABYTE)
            assert ddio.throughput >= 0.95 * tc.throughput, pattern

    def test_presort_improves_random_layout_noticeably(self):
        with_sort = run("disk-directed", "rb", "random", file_size=2 * MEGABYTE)
        without = run("ddio-nosort", "rb", "random", file_size=2 * MEGABYTE)
        assert with_sort.throughput > 1.15 * without.throughput

    def test_ddio_random_throughput_nearly_pattern_independent(self):
        values = [run("disk-directed", pattern, "random",
                      file_size=MEGABYTE).throughput_mb
                  for pattern in ("rb", "rc", "rcn", "rbb")]
        assert (max(values) - min(values)) / max(values) < 0.3


@pytest.mark.slow
class TestLayoutEffect:
    def test_contiguous_much_faster_than_random(self):
        contiguous = run("disk-directed", "rb", "contiguous", file_size=2 * MEGABYTE)
        scattered = run("disk-directed", "rb", "random", file_size=2 * MEGABYTE)
        assert contiguous.throughput > 3 * scattered.throughput


@pytest.mark.slow
class TestSensitivityShapes:
    """Figures 5-8 directions: hardware limits move with CPs / IOPs / disks."""

    def test_ddio_insensitive_to_cp_count(self):
        few = run("disk-directed", "rb", "contiguous", file_size=MEGABYTE,
                  config=MachineConfig(n_cps=2))
        many = run("disk-directed", "rb", "contiguous", file_size=MEGABYTE,
                   config=MachineConfig(n_cps=16))
        assert abs(few.throughput - many.throughput) / many.throughput < 0.2

    def test_tc_rc_suffers_with_few_cps(self):
        few = run("traditional", "rc", "contiguous", file_size=MEGABYTE,
                  config=MachineConfig(n_cps=2))
        many = run("traditional", "rc", "contiguous", file_size=MEGABYTE,
                   config=MachineConfig(n_cps=16))
        assert many.throughput > 1.5 * few.throughput

    def test_single_bus_caps_throughput_with_many_disks(self):
        # 16 disks behind one 10 MB/s SCSI bus: the bus, not the disks, limits.
        config = MachineConfig(n_cps=16, n_iops=1, n_disks=16)
        result = run("disk-directed", "rb", "contiguous", file_size=2 * MEGABYTE,
                     config=config)
        assert result.throughput_mb < 11.0
        assert result.throughput_mb > 5.0

    def test_throughput_scales_with_disks_until_bus_limit(self):
        one = run("disk-directed", "rb", "contiguous", file_size=MEGABYTE,
                  config=MachineConfig(n_cps=8, n_iops=1, n_disks=1))
        four = run("disk-directed", "rb", "contiguous", file_size=MEGABYTE,
                   config=MachineConfig(n_cps=8, n_iops=1, n_disks=4))
        assert four.throughput > 2.5 * one.throughput

    def test_fewer_iops_means_less_bus_bandwidth(self):
        sixteen = run("disk-directed", "rb", "contiguous", file_size=2 * MEGABYTE,
                      config=MachineConfig(n_iops=16, n_disks=16))
        two = run("disk-directed", "rb", "contiguous", file_size=2 * MEGABYTE,
                  config=MachineConfig(n_iops=2, n_disks=16))
        assert sixteen.throughput > 1.3 * two.throughput
