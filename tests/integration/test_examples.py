"""The example scripts must run (they are part of the public deliverable)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SRC = Path(__file__).resolve().parents[2] / "src"


def run_example(name, *args, timeout=600):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False, env=env)


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "--file-mb", "0.5")
        assert proc.returncode == 0, proc.stderr
        assert "disk-directed" in proc.stdout
        assert "Mbytes/s" in proc.stdout

    def test_out_of_core_matrix(self):
        proc = run_example("out_of_core_matrix.py", "--slab-mb", "0.25",
                           "--slabs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "sweep took" in proc.stdout

    def test_weather_checkpoint(self):
        proc = run_example("weather_checkpoint.py", "--grid-mb", "0.5")
        assert proc.returncode == 0, proc.stderr
        assert "checkpoint" in proc.stdout

    def test_sensitivity_sweep(self):
        proc = run_example("sensitivity_sweep.py", "disks-contiguous",
                           "--file-mb", "0.25")
        assert proc.returncode == 0, proc.stderr
        assert "disks" in proc.stdout

    def test_service_driver(self):
        # The CI quickstart smoke: tiny stream, heavy-tailed sizes, 8-byte
        # record mix (mirrors the bench-smoke CI step).
        proc = run_example("service_driver.py", "--requests", "4", "--files",
                           "2", "--file-mb", "0.125", "-K", "2",
                           "--size-dist", "pareto",
                           "--record-sizes", "8,8192")
        assert proc.returncode == 0, proc.stderr
        assert "conservation=ok" in proc.stdout
        assert "VIOLATED" not in proc.stdout
