"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    FileSystem,
    Machine,
    MachineConfig,
    PATTERN_NAMES,
    make_filesystem,
    make_pattern,
)

KILOBYTE = 1024
MEGABYTE = 2 ** 20


def run(method, pattern_name, layout="contiguous", record_size=8192,
        file_size=128 * KILOBYTE, config=None, seed=1):
    config = config or MachineConfig(n_cps=4, n_iops=2, n_disks=2)
    machine = Machine(config, seed=seed)
    striped = FileSystem(config, layout_seed=seed).create_file(
        "f", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    fs = make_filesystem(method, machine, striped)
    result = fs.transfer(pattern)
    return result, machine


class TestEveryPatternEveryMethod:
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    @pytest.mark.parametrize("method", ["disk-directed", "traditional"])
    def test_all_paper_patterns_complete(self, pattern, method):
        result, machine = run(method, pattern, record_size=1024,
                              file_size=64 * KILOBYTE)
        stats = machine.total_disk_stats()
        moved = stats["bytes_read"] + stats["bytes_written"]
        assert moved >= 64 * KILOBYTE
        assert result.elapsed > 0
        assert result.throughput_mb > 0

    @pytest.mark.parametrize("method", ["disk-directed", "traditional", "two-phase"])
    def test_both_layouts_work(self, method):
        for layout in ("contiguous", "random"):
            result, _machine = run(method, "rbb", layout=layout)
            assert result.layout_name in ("contiguous", "random")
            assert result.throughput_mb > 0


class TestPhysicalConservation:
    def test_reads_hit_every_block_exactly_once_with_ddio(self):
        result, machine = run("disk-directed", "rcb", record_size=1024,
                              file_size=256 * KILOBYTE)
        assert machine.total_disk_stats()["reads"] == 256 // 8

    def test_writes_reach_disk_even_with_partial_blocks(self):
        # 4 CPs writing 1 KB records cyclically: every block is assembled from
        # several CPs' pieces before being written.
        result, machine = run("traditional", "wc", record_size=1024,
                              file_size=128 * KILOBYTE)
        assert machine.total_disk_stats()["bytes_written"] == 128 * KILOBYTE

    def test_elapsed_times_are_consistent_with_clock(self):
        config = MachineConfig(n_cps=4, n_iops=2, n_disks=2)
        machine = Machine(config, seed=1)
        striped = FileSystem(config).create_file("f", 128 * KILOBYTE)
        fs = make_filesystem("ddio", machine, striped)
        pattern = make_pattern("rb", 128 * KILOBYTE, 8192, config.n_cps)
        result = fs.transfer(pattern)
        assert result.end_time == machine.now
        assert result.start_time >= 0


class TestMachineShapes:
    def test_single_cp_single_disk(self):
        config = MachineConfig(n_cps=1, n_iops=1, n_disks=1)
        result, _machine = run("disk-directed", "rn", config=config)
        assert result.throughput_mb > 0

    def test_more_iops_than_disks(self):
        config = MachineConfig(n_cps=4, n_iops=4, n_disks=2)
        result, _machine = run("disk-directed", "rb", config=config)
        assert result.throughput_mb > 0

    def test_many_disks_per_iop(self):
        config = MachineConfig(n_cps=4, n_iops=1, n_disks=8)
        result, _machine = run("disk-directed", "rb", config=config,
                               file_size=512 * KILOBYTE)
        assert result.throughput_mb > 0

    def test_paper_scale_machine_smoke(self):
        config = MachineConfig()  # 16/16/16
        result, _machine = run("disk-directed", "rb", config=config,
                               file_size=1 * MEGABYTE)
        assert 10.0 < result.throughput_mb < 40.0


class TestDeterminism:
    def test_identical_runs_produce_identical_times(self):
        first, _ = run("traditional", "rcb", layout="random", seed=9)
        second, _ = run("traditional", "rcb", layout="random", seed=9)
        assert first.elapsed == second.elapsed
        assert first.counters["cp_requests"] == second.counters["cp_requests"]

    def test_different_layout_seeds_produce_different_times(self):
        first, _ = run("disk-directed", "rb", layout="random", seed=1)
        second, _ = run("disk-directed", "rb", layout="random", seed=2)
        assert first.elapsed != second.elapsed
