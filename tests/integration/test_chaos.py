"""Chaos suite: random fault schedules never break the accounting.

Hypothesis composes a fault scenario (transient errors, latent bad ranges,
a fail-slow episode, a fail-stop, whole-drive silent corruption), crosses
it with the redundancy axis and the client fault policy, and runs a small
service trial.  Two invariants must hold under *any* schedule:

* byte conservation — every requested byte is delivered, explicitly failed,
  or shed: ``conserves_bytes()`` is true;
* watchdog-free completion — the trial finishes (a stuck simulation raises
  ``DeadlockError`` out of the driver's fault watchdog and fails the test).
  ``on_fault="abort"`` may instead terminate with its documented
  :class:`~repro.disk.faults.FaultAbort` — a clean abort, never a hang.

Additionally, when parity faces a *pure* fail-stop (its design case), zero
bytes may fail or be lost regardless of the client policy.

Uses hypothesis when installed; otherwise a fixed seed spread keeps the
suite meaningful in minimal CI images (same fallback as
``tests/workload/test_properties.py``).
"""

import random

import pytest

from repro.disk.faults import FaultAbort
from repro.experiments import ServiceExperimentConfig, run_service_experiment

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in minimal CI images
    HAVE_HYPOTHESIS = False

KILOBYTE = 1024

#: Tiny machine: 4 drives (parity minimum is 3) and short streams so one
#: chaos example costs tens of milliseconds.
BASE = dict(n_cps=2, n_iops=2, n_disks=4, n_requests=4, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", concurrency=2,
            arrival="poisson", arrival_rate=200.0)

METHODS = ("disk-directed", "traditional")
POLICIES = ("retry", "degrade", "abort")
REDUNDANCY = ("none", "parity")


def run_chaos_trial(method, redundancy, on_fault, transient, bad_ranges,
                    fail_stop_disk, fail_stop_time, silent, checksums, seed):
    config = ServiceExperimentConfig(
        method=method,
        redundancy=redundancy,
        rebuild_bandwidth=8.0 * 1024 * 1024,
        checksums=checksums,
        on_fault=on_fault,
        fault_transient_rate=transient,
        fault_bad_ranges=bad_ranges,
        fault_fail_stop_disk=fail_stop_disk,
        fault_fail_stop_time=fail_stop_time,
        fault_silent_ranges=1 if silent else 0,
        fault_silent_range_sectors=10 ** 9,
        seed=seed,
        **BASE,
    )
    # Completing at all proves watchdog-free completion: a stuck simulation
    # raises DeadlockError out of the driver's fault watchdog.  An abort
    # policy may end the run with its documented FaultAbort instead — a
    # clean termination, not a hang — in which case there is no result to
    # check conservation on.
    try:
        result = run_service_experiment(config)
    except FaultAbort:
        assert on_fault == "abort"
        return None
    assert result.conserves_bytes(), (
        f"conservation violated: {method} {redundancy} {on_fault} "
        f"transient={transient} bad={bad_ranges} stop={fail_stop_disk}"
        f"@{fail_stop_time} silent={silent} chk={checksums} seed={seed}")
    pure_fail_stop = (fail_stop_disk >= 0 and transient == 0.0
                      and bad_ranges == 0 and not silent)
    if redundancy == "parity" and pure_fail_stop:
        assert result.failed_bytes == 0, "parity lost data under fail-stop"
        assert result.lost_bytes == 0
    return result


if HAVE_HYPOTHESIS:
    @settings(max_examples=25, deadline=None)
    @given(
        method=st.sampled_from(METHODS),
        redundancy=st.sampled_from(REDUNDANCY),
        on_fault=st.sampled_from(POLICIES),
        transient=st.sampled_from((0.0, 0.05, 0.2)),
        bad_ranges=st.integers(min_value=0, max_value=2),
        fail_stop=st.one_of(
            st.none(),
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.sampled_from((0.0, 0.01, 0.05)))),
        silent=st.booleans(),
        checksums=st.booleans(),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_chaos_schedules_conserve_bytes_and_complete(
            method, redundancy, on_fault, transient, bad_ranges, fail_stop,
            silent, checksums, seed):
        fail_stop_disk, fail_stop_time = fail_stop if fail_stop else (-1, 0.0)
        run_chaos_trial(method, redundancy, on_fault, transient, bad_ranges,
                        fail_stop_disk, fail_stop_time, silent, checksums,
                        seed)
else:  # pragma: no cover - exercised in minimal CI images
    @pytest.mark.parametrize("spin", range(12))
    def test_chaos_schedules_conserve_bytes_and_complete(spin):
        rng = random.Random(1000 + spin)
        fail_stop = rng.choice([None, (rng.randrange(4),
                                       rng.choice((0.0, 0.01, 0.05)))])
        fail_stop_disk, fail_stop_time = fail_stop if fail_stop else (-1, 0.0)
        run_chaos_trial(
            rng.choice(METHODS), rng.choice(REDUNDANCY),
            rng.choice(POLICIES), rng.choice((0.0, 0.05, 0.2)),
            rng.randrange(3), fail_stop_disk, fail_stop_time,
            rng.random() < 0.5, rng.random() < 0.5, rng.randrange(6))


def test_parity_failstop_is_lossless_for_every_policy():
    """The design case, pinned deterministically for all three policies."""
    for on_fault in POLICIES:
        result = run_chaos_trial(
            "disk-directed", "parity", on_fault, 0.0, 0, 0, 0.01,
            False, False, 3)
        assert result.aggregates.get("reconstructed_bytes", 0) > 0
