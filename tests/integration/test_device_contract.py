"""The device contract: every device-facing behavior, on disk AND flash.

The flash SSD is duck-compatible with the HP 97560 disk — same request,
counter, session and fault surface — and ``Machine(device=...)`` switches
between them.  That seam is enforced here by running the device-facing
integration behaviors (conservation, session-scoped counters, shared-queue
merge and late-join, fault-plan determinism, end-to-end transfers) over
``device in {disk, ssd}``, not by convention.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, make_filesystem, \
    make_pattern
from repro.disk import SSD, Disk, HP97560_SPEC, SSDSpec, SharedDiskQueue
from repro.disk.drive import BusPort
from repro.disk.faults import FAIL_STOP, FaultConfig, build_fault_plan
from repro.sim import Environment, Resource
from repro.sim.events import AllOf

from tests.conftest import run_transfer

KILOBYTE = 1024
SECTORS_PER_BLOCK = 16
DEVICES = ("disk", "ssd")

#: small flash geometry for direct-device tests (GC-capable at test scale)
TINY_SSD = SSDSpec(total_sectors=HP97560_SPEC.total_sectors,
                   channels=2, ncq_depth=2)


def make_device(env, device, **kwargs):
    """A bare device of either kind on its own SCSI bus."""
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    if device == "disk":
        return Disk(env, HP97560_SPEC, port, **kwargs)
    return SSD(env, spec=TINY_SSD, bus_port=port, **kwargs)


# -- the duck-typing surface itself ------------------------------------------

class TestContractSurface:
    @pytest.mark.parametrize("device", DEVICES)
    def test_device_exposes_the_full_disk_api(self, device):
        env = Environment()
        dev = make_device(env, device)
        for name in ("read", "write", "write_tracked", "submit", "flush",
                     "session", "release_session"):
            assert callable(getattr(dev, name))
        assert hasattr(dev, "queue_depth")
        assert hasattr(dev, "head_lbn_estimate")
        assert hasattr(dev, "stats") and hasattr(dev, "session_stats")
        assert dev.geometry.total_sectors == HP97560_SPEC.total_sectors

    @pytest.mark.parametrize("device", DEVICES)
    def test_out_of_range_requests_rejected(self, device):
        env = Environment()
        dev = make_device(env, device)
        with pytest.raises(ValueError):
            dev.read(-1, 4)
        with pytest.raises(ValueError):
            dev.read(dev.geometry.total_sectors, 4)


# -- conservation and counters through full transfers -------------------------

class TestConservation:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("method", ["disk-directed", "traditional"])
    def test_reads_move_every_byte(self, method, device):
        result, machine, _fs = run_transfer(
            method, "rb", file_size=128 * KILOBYTE, device=device)
        stats = machine.total_disk_stats()
        assert stats["bytes_read"] >= 128 * KILOBYTE
        assert result.throughput_mb > 0

    @pytest.mark.parametrize("device", DEVICES)
    def test_ddio_reads_each_block_exactly_once(self, device):
        _result, machine, _fs = run_transfer(
            "disk-directed", "rcb", record_size=1024,
            file_size=128 * KILOBYTE, device=device)
        assert machine.total_disk_stats()["reads"] == 128 // 8

    @pytest.mark.parametrize("device", DEVICES)
    def test_writes_reach_the_media(self, device):
        _result, machine, _fs = run_transfer(
            "traditional", "wc", record_size=1024,
            file_size=128 * KILOBYTE, device=device)
        assert machine.total_disk_stats()["bytes_written"] == 128 * KILOBYTE

    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("layout", ["contiguous", "random"])
    def test_both_layouts_complete(self, layout, device):
        result, _machine, _fs = run_transfer(
            "disk-directed", "rb", layout=layout, device=device)
        assert result.throughput_mb > 0


class TestSessionScopedCounters:
    @pytest.mark.parametrize("device", DEVICES)
    def test_transfer_work_lands_in_session_counters(self, device):
        # The result's counters are the session-scoped snapshot taken at
        # transfer end (sessions are released afterwards), on either device.
        result, _machine, _fs = run_transfer(
            "disk-directed", "rb", file_size=128 * KILOBYTE, device=device)
        assert result.counters["bytes_read"] == 128 * KILOBYTE
        assert result.counters["disk_service_time"] > 0
        assert result.counters["reads"] == 128 // 8

    @pytest.mark.parametrize("device", DEVICES)
    def test_unknown_session_reads_zero(self, device):
        config = MachineConfig(n_cps=2, n_iops=1, n_disks=1)
        machine = Machine(config, seed=1, device=device)
        scoped = machine.session_disk_stats("nobody")
        assert scoped["bytes_read"] == 0
        assert scoped["iop_queue_wait"] == 0.0


# -- determinism ---------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("device", DEVICES)
    def test_identical_runs_are_bit_identical(self, device):
        first, _m, _f = run_transfer("traditional", "rcb", layout="random",
                                     seed=9, device=device)
        second, _m, _f = run_transfer("traditional", "rcb", layout="random",
                                      seed=9, device=device)
        assert first.elapsed == second.elapsed
        assert first.counters["cp_requests"] == second.counters["cp_requests"]

    def test_devices_are_actually_different_models(self):
        disk, _m, _f = run_transfer("disk-directed", "rb", seed=3,
                                    device="disk")
        ssd, _m, _f = run_transfer("disk-directed", "rb", seed=3,
                                   device="ssd")
        assert disk.elapsed != ssd.elapsed

    @pytest.mark.parametrize("device", DEVICES)
    def test_fault_plan_runs_are_bit_identical(self, device):
        def timed():
            env = Environment()
            plan = build_fault_plan(
                FaultConfig(transient_rate=0.4, bad_range_count=2), 1, 0,
                HP97560_SPEC.total_sectors)
            dev = make_device(env, device, fault_plan=plan)
            outcomes = []

            def client(env):
                for lbn in (0, 4096, 8192, 12288):
                    request = yield dev.read(lbn, SECTORS_PER_BLOCK)
                    outcomes.append(request.status)

            env.run(env.process(client(env)))
            return env.now, outcomes, dict(dev.stats.faults)

        assert timed() == timed()

    @pytest.mark.parametrize("device", DEVICES)
    def test_fail_stop_kills_both_devices_identically(self, device):
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), 1, 0,
            HP97560_SPEC.total_sectors)
        dev = make_device(env, device, fault_plan=plan)
        box = []

        def client(env):
            request = yield dev.read(0, SECTORS_PER_BLOCK)
            box.append(request)

        env.run(env.process(client(env)))
        assert box[0].status == "error"
        assert box[0].error == FAIL_STOP
        assert dev.stats.faults[FAIL_STOP] == 1


# -- the shared per-drive IOP queue over either device -------------------------

class TestSharedQueueOverEitherDevice:
    def _make_queue(self, env, device, policy="cscan", workers=1):
        dev = make_device(env, device)
        return dev, SharedDiskQueue(env, dev, policy=policy, workers=workers)

    @pytest.mark.parametrize("device", DEVICES)
    def test_cscan_merges_sessions_into_one_sweep(self, device):
        env = Environment()
        _dev, queue = self._make_queue(env, device)
        order = []

        def job(label, lbn):
            def run():
                yield queue.disk.read(lbn, SECTORS_PER_BLOCK)
                order.append(label)
            return run

        submissions = [("a0", "A", 8000), ("b0", "B", 1000),
                       ("a1", "A", 4000), ("b1", "B", 9000)]
        events = [queue.submit(lbn, job(label, lbn), session_id=session)
                  for label, session, lbn in submissions]
        env.run(AllOf(env, events))
        # Single worker, everything pending at the first wake (position 0):
        # one ascending sweep across both sessions, on either device.
        assert order == ["b0", "a1", "a0", "b1"]

    @pytest.mark.parametrize("device", DEVICES)
    def test_late_arrival_joins_the_sweep(self, device):
        env = Environment()
        _dev, queue = self._make_queue(env, device)
        order = []

        def job(label, lbn):
            def run():
                yield queue.disk.read(lbn, SECTORS_PER_BLOCK)
                order.append(label)
            return run

        first = [queue.submit(lbn, job(f"a{lbn}", lbn))
                 for lbn in (2000, 40000, 80000)]

        def late_submitter():
            yield env.timeout(0.005)
            yield queue.submit(41000, job("late", 41000))

        late = env.process(late_submitter())
        env.run(AllOf(env, first + [late]))
        assert order.index("late") < order.index("a80000")

    @pytest.mark.parametrize("device", DEVICES)
    def test_queue_tags_sessions_through_to_the_device(self, device):
        env = Environment()
        dev, queue = self._make_queue(env, device)
        env.run(queue.read(100, SECTORS_PER_BLOCK, session_id=7))
        assert dev.session_stats[7].reads == 1
        assert dev.session_stats[7].bytes_read == SECTORS_PER_BLOCK * 512

    @pytest.mark.parametrize("device", DEVICES)
    def test_flush_drains_buffered_writes(self, device):
        env = Environment()
        dev, queue = self._make_queue(env, device)
        for i in range(4):
            queue.write(1000 * i, SECTORS_PER_BLOCK)
        env.run(queue.flush())
        assert dev.stats.writes == 4
        assert dev.stats.bytes_written == 4 * SECTORS_PER_BLOCK * 512

    @pytest.mark.parametrize("device", DEVICES)
    def test_shared_scheduler_machine_transfers(self, device):
        config = MachineConfig(n_cps=2, n_iops=1, n_disks=1)
        machine = Machine(config, seed=1, disk_scheduler="shared-cscan",
                          device=device)
        striped = FileSystem(config, layout_seed=1).create_file(
            "f", 64 * KILOBYTE)
        fs = make_filesystem("ddio", machine, striped)
        result = fs.transfer(make_pattern("rb", striped.size_bytes, 8192, 2))
        assert result.throughput_mb > 0
        assert machine.total_disk_stats()["bytes_read"] == 64 * KILOBYTE


# -- the machine-level device axis ---------------------------------------------

class TestMachineDeviceAxis:
    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            Machine(MachineConfig(n_cps=2, n_iops=1, n_disks=1),
                    device="mram")

    def test_disk_machine_has_no_flash_counters(self):
        machine = Machine(MachineConfig(n_cps=2, n_iops=1, n_disks=1))
        assert machine.device == "disk"
        assert machine.total_flash_counters() is None

    def test_ssd_machine_aggregates_flash_counters(self):
        _result, machine, _fs = run_transfer(
            "traditional", "wc", file_size=128 * KILOBYTE, device="ssd")
        counters = machine.total_flash_counters()
        assert counters["host_pages_written"] >= 128 * KILOBYTE // 4096
        assert counters["write_amplification"] >= 1.0

    def test_every_drive_is_the_requested_kind(self):
        config = MachineConfig(n_cps=2, n_iops=2, n_disks=4)
        assert all(isinstance(disk, SSD)
                   for disk in Machine(config, device="ssd").disks)
        assert all(isinstance(disk, Disk)
                   for disk in Machine(config, device="disk").disks)

    def test_ssd_spec_override_reaches_the_drives(self):
        spec = SSDSpec(channels=2, ncq_depth=2)
        machine = Machine(MachineConfig(n_cps=2, n_iops=1, n_disks=1),
                          device="ssd", ssd_spec=spec)
        assert machine.disks[0].spec.channels == 2

    @pytest.mark.parametrize("method", ["disk-directed", "traditional",
                                        "two-phase"])
    def test_every_method_runs_on_flash(self, method):
        result, _machine, _fs = run_transfer(method, "rb", device="ssd")
        assert result.throughput_mb > 0
