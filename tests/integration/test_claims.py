"""Measured headline claims on a scaled-down Figure 3/4 sweep."""

import pytest

from repro.experiments import ExperimentConfig, sweep
from repro.experiments.claims import check_headline_claims

MEGABYTE = 2 ** 20


def _scaled_sweep():
    """A small but representative subset of Figures 3 and 4."""
    configs = []
    for layout in ("contiguous", "random"):
        for pattern in ("rb", "rcb"):
            for method in ("disk-directed", "disk-directed-nosort", "traditional"):
                if layout == "contiguous" and method == "disk-directed-nosort":
                    continue
                configs.append(ExperimentConfig(
                    method=method, pattern=pattern, record_size=8192,
                    layout=layout, file_size=2 * MEGABYTE))
    # One small-record case for the "order of magnitude" claim.
    for method in ("disk-directed", "traditional"):
        configs.append(ExperimentConfig(
            method=method, pattern="rc", record_size=8,
            layout="contiguous", file_size=MEGABYTE // 4))
    return sweep(configs, trials=1)


@pytest.mark.slow
class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def summaries(self):
        return _scaled_sweep()

    def test_every_claim_direction_holds(self, summaries):
        checks = check_headline_claims(summaries)
        assert checks
        failing = [check.claim for check in checks if not check.holds]
        assert not failing, f"claims violated: {failing}"

    def test_ddio_never_substantially_slower(self, summaries):
        by_key = {(s.config.method, s.config.pattern, s.config.layout,
                   s.config.record_size): s.mean_throughput_mb for s in summaries}
        for (method, pattern, layout, record_size), value in by_key.items():
            if method != "traditional":
                continue
            ddio = by_key.get(("disk-directed", pattern, layout, record_size))
            assert ddio is not None
            assert ddio >= 0.9 * value
