"""Tests for the event loop / environment."""

import pytest

from repro.sim import Environment, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_number_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_events_processed_in_time_order(self):
        env = Environment()
        order = []

        def worker(env, delay, name):
            yield env.timeout(delay)
            order.append(name)

        env.process(worker(env, 3.0, "late"))
        env.process(worker(env, 1.0, "early"))
        env.process(worker(env, 2.0, "middle"))
        env.run()
        assert order == ["early", "middle", "late"]

    def test_ties_processed_in_schedule_order(self):
        env = Environment()
        order = []

        def worker(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abc":
            env.process(worker(env, name))
        env.run()
        assert order == ["a", "b", "c"]


class TestRun:
    def test_run_to_exhaustion(self):
        env = Environment()
        ticks = []

        def ticker(env):
            for _ in range(5):
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(ticker(env))
        env.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_run_until_event_returns_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(2.0)
            return "the answer"

        proc = env.process(worker(env))
        assert env.run(proc) == "the answer"

    def test_run_until_event_deadlock_detected(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(never)

    def test_run_until_event_that_failed_raises(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            raise RuntimeError("worker died")

        proc = env.process(worker(env))
        with pytest.raises(RuntimeError, match="worker died"):
            env.run(proc)

    def test_run_until_time_leaves_pending_events(self):
        env = Environment()
        fired = []

        def worker(env):
            yield env.timeout(10.0)
            fired.append(env.now)

        env.process(worker(env))
        env.run(until=5.0)
        assert fired == []
        env.run()
        assert fired == [10.0]

    def test_step_on_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(4.0)
        assert env.peek() == 4.0

    def test_peek_empty_is_infinite(self):
        assert Environment().peek() == float("inf")

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-1.0)

    def test_unhandled_event_failure_surfaces(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            env.run()


class TestHelpers:
    def test_all_of_helper(self):
        env = Environment()
        done = []

        def coordinator(env):
            yield env.all_of([env.timeout(1.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(coordinator(env))
        env.run()
        assert done == [2.0]

    def test_any_of_helper(self):
        env = Environment()
        done = []

        def coordinator(env):
            yield env.any_of([env.timeout(1.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(coordinator(env))
        env.run(until=5.0)
        assert done == [1.0]

    def test_active_process_visible_inside_process(self):
        env = Environment()
        seen = []

        def worker(env):
            seen.append(env.active_process)
            yield env.timeout(1.0)

        proc = env.process(worker(env))
        env.run()
        assert seen == [proc]
        assert env.active_process is None
