"""Tests for counters, time-weighted values and utilisation tracking."""

import pytest

from repro.sim import Counter, Environment, TimeWeightedValue, UtilizationTracker


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add_default_one(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("x")
        counter.add(10)
        counter.reset()
        assert counter.value == 0


class TestTimeWeightedValue:
    def test_constant_value_mean(self):
        env = Environment()
        value = TimeWeightedValue(env, initial=3.0)
        env.run(until=10.0)
        assert value.mean() == pytest.approx(3.0)

    def test_step_change_mean(self):
        env = Environment()
        value = TimeWeightedValue(env, initial=0.0)
        env.run(until=5.0)
        value.set(10.0)
        env.run(until=10.0)
        assert value.mean() == pytest.approx(5.0)

    def test_add_adjusts_level(self):
        env = Environment()
        value = TimeWeightedValue(env, initial=1.0)
        value.add(2.0)
        assert value.level == 3.0

    def test_maximum_is_tracked(self):
        env = Environment()
        value = TimeWeightedValue(env, initial=0.0)
        value.set(7.0)
        value.set(2.0)
        assert value.maximum == 7.0

    def test_mean_with_zero_elapsed_is_level(self):
        env = Environment()
        value = TimeWeightedValue(env, initial=4.0)
        assert value.mean() == 4.0


class TestUtilizationTracker:
    def test_idle_resource_has_zero_utilisation(self):
        env = Environment()
        tracker = UtilizationTracker(env, capacity=1)
        env.run(until=10.0)
        assert tracker.utilization() == 0.0
        assert tracker.busy_fraction() == 0.0

    def test_half_busy(self):
        env = Environment()
        tracker = UtilizationTracker(env, capacity=1)
        tracker.set(1)
        env.run(until=5.0)
        tracker.set(0)
        env.run(until=10.0)
        assert tracker.busy_fraction() == pytest.approx(0.5)
        assert tracker.utilization() == pytest.approx(0.5)

    def test_partial_capacity_utilisation(self):
        env = Environment()
        tracker = UtilizationTracker(env, capacity=4)
        tracker.set(2)
        env.run(until=10.0)
        assert tracker.utilization() == pytest.approx(0.5)
        assert tracker.busy_fraction() == pytest.approx(1.0)
