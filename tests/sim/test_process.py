"""Tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, Process, StopProcess


class TestProcessBasics:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_process_returns_generator_value(self, env):
        def worker(env):
            yield env.timeout(1.0)
            return 99

        proc = env.process(worker(env))
        assert env.run(proc) == 99

    def test_process_is_alive_until_done(self, env):
        def worker(env):
            yield env.timeout(5.0)

        proc = env.process(worker(env))
        env.run(until=1.0)
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_processes_can_wait_for_each_other(self, env):
        log = []

        def child(env):
            yield env.timeout(2.0)
            log.append(("child", env.now))
            return "child-result"

        def parent(env):
            value = yield env.process(child(env))
            log.append(("parent", env.now, value))

        env.process(parent(env))
        env.run()
        assert log == [("child", 2.0), ("parent", 2.0, "child-result")]

    def test_stop_process_exception_finishes_early(self, env):
        def worker(env):
            yield env.timeout(1.0)
            raise StopProcess("early exit")
            yield env.timeout(100.0)  # pragma: no cover

        proc = env.process(worker(env))
        assert env.run(proc) == "early exit"
        assert env.now == 1.0

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as error:
                return f"caught: {error}"

        proc = env.process(parent(env))
        assert env.run(proc) == "caught: child failed"

    def test_unwaited_failure_surfaces_at_run(self, env):
        def worker(env):
            yield env.timeout(1.0)
            raise RuntimeError("nobody is watching")

        env.process(worker(env))
        with pytest.raises(RuntimeError):
            env.run()

    def test_yielding_non_event_is_an_error(self, env):
        def worker(env):
            yield 42

        env.process(worker(env))
        with pytest.raises(TypeError):
            env.run()

    def test_name_reflects_generator(self, env):
        def my_worker(env):
            yield env.timeout(1.0)

        proc = env.process(my_worker(env))
        assert proc.name == "my_worker"
        env.run()

    def test_immediate_return_process(self, env):
        def worker(env):
            return "instant"
            yield  # pragma: no cover

        proc = env.process(worker(env))
        assert env.run(proc) == "instant"

    def test_yield_already_processed_event(self, env):
        early = env.timeout(1.0)
        env.run(until=2.0)

        def worker(env):
            value = yield early
            return (env.now, value)

        proc = env.process(worker(env))
        assert env.run(proc) == (2.0, None)

    def test_active_process_restored_when_base_exception_escapes(self, env):
        def interrupted(env):
            yield env.timeout(1.0)
            raise KeyboardInterrupt

        env.process(interrupted(env))
        with pytest.raises(KeyboardInterrupt):
            env.run()
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_wakes_process(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(3.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(3.0, "wake up")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def interrupter(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [3.0]

    def test_unhandled_interrupt_fails_process(self, env):
        def sleeper(env):
            yield env.timeout(100.0)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("unhandled")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupting_finished_process_is_an_error(self, env):
        def quick(env):
            yield env.timeout(1.0)

        proc = env.process(quick(env))
        env.run()
        from repro.sim import SimulationError
        with pytest.raises(SimulationError):
            proc.interrupt()
