"""Calendar-order equivalence: the two-tier ring+heap vs a reference heap.

The two-tier calendar (`repro.sim.engine`) claims to pop events in *exactly*
the order the old single-heap implementation did: ascending ``(time,
priority, eid)``.  These tests drive random schedule/succeed/timeout/pop
sequences through a real :class:`Environment` and through a reference
single-heap calendar with the identical eid stream, asserting identical pop
order and identical ``env.now`` trajectories.
"""

from heapq import heappop, heappush

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.engine import NORMAL, URGENT

#: Delays drawn by the property: includes 0.0 (ring traffic) and repeated
#: values (time ties, where priority/eid ordering is what's under test).
DELAYS = (0.0, 0.0, 0.25, 0.25, 0.5, 1.0, 1.5)

#: Priorities beyond the two the kernel uses, to exercise the key folding.
PRIORITIES = (URGENT, NORMAL, NORMAL, NORMAL, 2)


class ReferenceCalendar:
    """The old implementation: one heap of ``(time, priority, eid, marker)``."""

    def __init__(self):
        self.queue = []
        self.eid = 0
        self.now = 0.0

    def schedule(self, delay, priority, marker):
        heappush(self.queue, (self.now + delay, priority, self.eid, marker))
        self.eid += 1

    def pop(self):
        when, _priority, _eid, marker = heappop(self.queue)
        self.now = when
        return when, marker

    def __len__(self):
        return len(self.queue)


def _triggered_event(env):
    event = env.event()
    event._ok = True
    event._value = None
    return event


def drive(operations):
    """Apply *operations* to both calendars; return (env_log, ref_log).

    Each op is ``("timeout", delay)``, ``("succeed",)``,
    ``("schedule", delay, priority)`` or ``("pop",)``.  Scheduling ops mint
    one eid in both calendars (matching the Environment's allocation);
    markers identify events across the two implementations.
    """
    env = Environment()
    ref = ReferenceCalendar()
    env_log = []
    ref_log = []
    pending = 0
    marker = 0

    def record(tag):
        def callback(_event):
            env_log.append((env.now, tag))
        return callback

    for op in operations:
        kind = op[0]
        if kind == "pop":
            if pending:
                env.step()
                ref_log.append(ref.pop())
                pending -= 1
            continue
        if kind == "timeout":
            _kind, delay = op
            env.timeout(delay).callbacks.append(record(marker))
            ref.schedule(delay, NORMAL, marker)
        elif kind == "succeed":
            event = env.event()
            event.callbacks.append(record(marker))
            event.succeed()
            ref.schedule(0.0, NORMAL, marker)
        else:  # schedule
            _kind, delay, priority = op
            event = _triggered_event(env)
            event.callbacks.append(record(marker))
            env.schedule(event, delay=delay, priority=priority)
            ref.schedule(delay, priority, marker)
        pending += 1
        marker += 1

    while pending:
        env.step()
        ref_log.append(ref.pop())
        pending -= 1
    assert len(ref) == 0
    return env_log, ref_log


operation = st.one_of(
    st.tuples(st.just("timeout"), st.sampled_from(DELAYS)),
    st.tuples(st.just("succeed")),
    st.tuples(st.just("schedule"), st.sampled_from(DELAYS),
              st.sampled_from(PRIORITIES)),
    st.tuples(st.just("pop")),
)


class TestCalendarEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(operation, min_size=1, max_size=60))
    def test_pop_order_and_clock_match_reference_heap(self, operations):
        env_log, ref_log = drive(operations)
        assert env_log == ref_log  # same markers at the same clock readings

    @settings(max_examples=100, deadline=None)
    @given(st.lists(operation, min_size=1, max_size=40), st.randoms())
    def test_interleaved_pops_preserve_equivalence(self, operations, rng):
        # Inject pops at random positions so the clock advances mid-schedule
        # (ring entries from an earlier instant must drain before the heap
        # advances time past them).
        mixed = []
        for op in operations:
            mixed.append(op)
            if rng.random() < 0.4:
                mixed.append(("pop",))
        env_log, ref_log = drive(mixed)
        assert env_log == ref_log


class TestCalendarUnits:
    def test_urgent_pops_before_normal_at_equal_time(self):
        env = Environment()
        order = []
        normal = _triggered_event(env)
        normal.callbacks.append(lambda _e: order.append("normal"))
        urgent = _triggered_event(env)
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        env.schedule(normal, delay=1.0, priority=NORMAL)
        env.schedule(urgent, delay=1.0, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_ring_and_heap_interleave_by_eid_at_equal_time(self):
        # At the same instant, a zero-delay timeout (ring), a succeed (ring)
        # and an explicitly scheduled event (ring via delay 0) must pop in
        # creation (eid) order, exactly as one heap would order them.
        env = Environment()
        order = []

        def trigger(env):
            yield env.timeout(1.0)
            env.timeout(0.0).callbacks.append(lambda _e: order.append("t0"))
            event = env.event()
            event.callbacks.append(lambda _e: order.append("succeed"))
            event.succeed()
            env.timeout(0.0).callbacks.append(lambda _e: order.append("t1"))

        env.process(trigger(env))
        env.run()
        assert order == ["t0", "succeed", "t1"]

    def test_future_timeout_does_not_overtake_ring(self):
        env = Environment()
        order = []
        env.timeout(0.5).callbacks.append(lambda _e: order.append("later"))
        now_event = env.event()
        now_event.callbacks.append(lambda _e: order.append("now"))
        now_event.succeed()
        env.run()
        assert order == ["now", "later"]

    def test_peek_sees_both_tiers(self):
        env = Environment()
        env.timeout(2.0)
        assert env.peek() == 2.0
        env.event().succeed()
        assert env.peek() == 0.0

    def test_event_at_lands_on_exact_instant(self):
        env = Environment()
        # A target whose ``now + (when - now)`` round-trip is lossy.
        target = 0.1 + 0.2  # 0.30000000000000004
        seen = []

        def wait(env):
            yield env.timeout(0.1)
            assert env.now + (target - env.now) != target or True
            yield env.event_at(target)
            seen.append(env.now)

        env.process(wait(env))
        env.run()
        assert seen == [target]

    def test_event_at_rejects_the_past(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.event_at(4.0)

    def test_event_at_now_is_processed_immediately(self):
        env = Environment()
        seen = []
        env.event_at(0.0).callbacks.append(lambda _e: seen.append(env.now))
        env.run()
        assert seen == [0.0]
