"""Tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


class TestEvent:
    def test_new_event_is_untriggered(self, env):
        event = Event(env)
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = Event(env)
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = Event(env)
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = Event(env)
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = Event(env)
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_records_exception(self, env):
        event = Event(env)
        error = RuntimeError("boom")
        event.fail(error)
        event.defuse()
        assert event.triggered
        assert not event.ok
        assert event.value is error
        env.run()

    def test_processed_after_run(self, env):
        event = Event(env)
        event.succeed("done")
        env.run()
        assert event.processed

    def test_callbacks_receive_event(self, env):
        event = Event(env)
        seen = []
        event.callbacks.append(seen.append)
        event.succeed()
        env.run()
        assert seen == [event]

    def test_trigger_copies_outcome(self, env):
        source = Event(env)
        source.succeed("payload")
        target = Event(env)
        target.trigger(source)
        assert target.value == "payload"


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_timeout_fires_at_right_time(self, env):
        times = []

        def waiter(env):
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(waiter(env))
        env.run()
        assert times == [2.5]

    def test_timeout_carries_value(self, env):
        received = []

        def waiter(env):
            value = yield env.timeout(1.0, value="tick")
            received.append(value)

        env.process(waiter(env))
        env.run()
        assert received == ["tick"]

    def test_zero_delay_allowed(self, env):
        timeout = env.timeout(0)
        env.run()
        assert timeout.processed

    def test_delay_property(self, env):
        assert env.timeout(3.5).delay == 3.5


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        finish_times = []

        def worker(env, delay):
            yield env.timeout(delay)
            return delay

        def coordinator(env):
            procs = [env.process(worker(env, d)) for d in (1.0, 3.0, 2.0)]
            values = yield AllOf(env, procs)
            finish_times.append((env.now, sorted(values.values())))

        env.process(coordinator(env))
        env.run()
        assert finish_times == [(3.0, [1.0, 2.0, 3.0])]

    def test_any_of_fires_on_first(self, env):
        arrival = []

        def coordinator(env):
            timeouts = [env.timeout(5.0), env.timeout(1.0), env.timeout(3.0)]
            yield AnyOf(env, timeouts)
            arrival.append(env.now)

        env.process(coordinator(env))
        env.run(until=10)
        assert arrival == [1.0]

    def test_all_of_empty_list_fires_immediately(self, env):
        fired = []

        def coordinator(env):
            yield AllOf(env, [])
            fired.append(env.now)

        env.process(coordinator(env))
        env.run()
        assert fired == [0.0]

    def test_all_of_mixing_environments_rejected(self, env):
        other = Environment()
        event = Event(other)
        with pytest.raises(SimulationError):
            AllOf(env, [event])

    def test_all_of_with_already_processed_events(self, env):
        early = env.timeout(0.5)
        env.run(until=1.0)
        assert early.processed
        done = []

        def coordinator(env):
            yield AllOf(env, [early, env.timeout(1.0)])
            done.append(env.now)

        env.process(coordinator(env))
        env.run()
        assert done == [2.0]

    def test_all_of_propagates_failure(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("expected failure")

        def coordinator(env):
            with pytest.raises(ValueError):
                yield AllOf(env, [env.process(failing(env)), env.timeout(5.0)])
            return "handled"

        proc = env.process(coordinator(env))
        result = env.run(proc)
        assert result == "handled"

    def test_all_of_with_all_children_already_processed(self, env):
        timeouts = [env.timeout(0.5), env.timeout(1.0)]
        env.run(until=2.0)
        done = []

        def coordinator(env):
            values = yield AllOf(env, timeouts)
            done.append((env.now, len(values)))

        env.process(coordinator(env))
        env.run()
        assert done == [(2.0, 2)]

    def test_all_of_with_already_failed_child_fails_immediately(self, env):
        def failing(env):
            yield env.timeout(0.5)
            raise ValueError("already dead")

        proc = env.process(failing(env))
        with pytest.raises(ValueError):
            env.run()
        caught = []

        def coordinator(env):
            try:
                yield AllOf(env, [proc, env.timeout(10.0)])
            except ValueError as error:
                caught.append(str(error))

        env.process(coordinator(env))
        env.run(until=1.0)
        assert caught == ["already dead"]

    def test_any_of_with_already_processed_child_fires_immediately(self, env):
        early = env.timeout(0.25)
        env.run(until=1.0)
        done = []

        def coordinator(env):
            yield AnyOf(env, [early, env.timeout(50.0)])
            done.append(env.now)

        env.process(coordinator(env))
        env.run(until=2.0)
        assert done == [1.0]

    def test_any_of_empty_list_fires_immediately(self, env):
        fired = []

        def coordinator(env):
            yield AnyOf(env, [])
            fired.append(env.now)

        env.process(coordinator(env))
        env.run()
        assert fired == [0.0]

    def test_all_of_duplicate_events(self, env):
        shared = env.timeout(1.0, value="twice")
        done = []

        def coordinator(env):
            values = yield AllOf(env, [shared, shared])
            done.append((env.now, values[shared]))

        env.process(coordinator(env))
        env.run()
        assert done == [(1.0, "twice")]

    def test_all_of_many_children_linear_counter(self, env):
        # The pending-counter design: a single decrement per child callback.
        events = [env.timeout(float(i % 7)) for i in range(500)]
        condition = AllOf(env, events)
        assert condition._pending == 500
        done = []

        def coordinator(env):
            values = yield condition
            done.append((env.now, len(values)))

        env.process(coordinator(env))
        env.run()
        assert done == [(6.0, 500)]
        assert condition._pending == 0

    def test_all_of_value_collects_only_successes_in_order(self, env):
        first = env.timeout(1.0, value="a")
        second = env.timeout(2.0, value="b")
        collected = []

        def coordinator(env):
            values = yield AllOf(env, [first, second])
            collected.append(list(values.values()))

        env.process(coordinator(env))
        env.run()
        assert collected == [["a", "b"]]


class TestChain:
    def test_chain_propagates_success_value(self):
        from repro.sim.events import chain

        env = Environment()
        source, target = Event(env), Event(env)
        chain(source, target)
        source.succeed("payload")
        env.run()
        assert target.triggered and target.value == "payload"

    def test_chain_from_already_processed_event(self):
        from repro.sim.events import chain

        env = Environment()
        source = Event(env)
        source.succeed(42)
        env.run()
        target = Event(env)
        chain(source, target)
        assert target.triggered and target.value == 42

    def test_chain_does_not_propagate_failure_as_success(self):
        from repro.sim.events import chain

        env = Environment()
        source, target = Event(env), Event(env)
        chain(source, target)
        source.fail(RuntimeError("disk on fire"))
        source.defuse()
        env.run()
        assert not target.triggered
