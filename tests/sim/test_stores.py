"""Tests for FIFO and priority stores."""

import pytest

from repro.sim import Environment, PriorityStore, Store


class TestStore:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, store):
            item = yield store.get()
            received.append(item)

        store.put("hello")
        env.process(consumer(env, store))
        env.run()
        assert received == ["hello"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, store):
            item = yield store.get()
            received.append((env.now, item))

        def producer(env, store):
            yield env.timeout(3.0)
            yield store.put("late item")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert received == [(3.0, "late item")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        for item in (1, 2, 3):
            store.put(item)
        env.process(consumer(env, store))
        env.run()
        assert received == [1, 2, 3]

    def test_bounded_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer(env, store):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put-first", 0.0) in log
        assert ("put-second", 5.0) in log

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2
        assert store.items == ["a", "b"]

    def test_multiple_consumers_each_get_one(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, store, name):
            item = yield store.get()
            received.append((name, item))

        env.process(consumer(env, store, "x"))
        env.process(consumer(env, store, "y"))
        for item in (1, 2):
            store.put(item)
        env.run()
        assert sorted(received) == [("x", 1), ("y", 2)]


class TestPriorityStore:
    def test_items_pop_in_priority_order(self):
        env = Environment()
        store = PriorityStore(env)
        received = []

        def consumer(env, store):
            yield env.timeout(1.0)
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        store.put_with_priority(5, "low")
        store.put_with_priority(1, "high")
        store.put_with_priority(3, "mid")
        env.process(consumer(env, store))
        env.run()
        assert received == ["high", "mid", "low"]

    def test_equal_priorities_keep_insertion_order(self):
        env = Environment()
        store = PriorityStore(env)
        received = []

        def consumer(env, store):
            yield env.timeout(1.0)
            for _ in range(3):
                received.append((yield store.get()))

        for name in ("first", "second", "third"):
            store.put_with_priority(7, name)
        env.process(consumer(env, store))
        env.run()
        assert received == ["first", "second", "third"]

    def test_len_tracks_heap(self, env):
        store = PriorityStore(env)
        store.put_with_priority(2, "b")
        store.put_with_priority(1, "a")
        env.run()
        assert len(store) == 2
        assert store.items == ["a", "b"]
