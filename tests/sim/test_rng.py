"""Tests for deterministic random streams."""

import numpy as np

from repro.sim import RandomStreams, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_different_roots_differ(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_right_count(self):
        assert len(spawn_seeds(7, 9)) == 9


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(123)
        b = RandomStreams(123)
        assert np.allclose(a.stream("disk_layout").random(10),
                           b.stream("disk_layout").random(10))

    def test_streams_are_independent(self):
        streams = RandomStreams(5)
        layout_draw = streams.stream("disk_layout").random(4)
        rotation_draw = streams.stream("rotation").random(4)
        assert not np.allclose(layout_draw, rotation_draw)

    def test_consuming_one_stream_does_not_disturb_another(self):
        reference = RandomStreams(9).stream("rotation").random(5)
        streams = RandomStreams(9)
        streams.stream("disk_layout").random(1000)
        assert np.allclose(streams.stream("rotation").random(5), reference)

    def test_adhoc_stream_is_reproducible(self):
        a = RandomStreams(11).stream("custom-component").random(3)
        b = RandomStreams(11).stream("custom-component").random(3)
        assert np.allclose(a, b)

    def test_adhoc_stream_is_stable_across_processes(self):
        # The derivation must not involve Python's salted hash(): a parallel
        # sweep's worker processes have different PYTHONHASHSEEDs and would
        # otherwise disagree with the serial run.  Run the derivation in a
        # subprocess with a forced hash seed and compare.
        import os
        import pathlib
        import subprocess
        import sys

        import repro
        script = ("from repro.sim.rng import RandomStreams; "
                  "print(repr(float(RandomStreams(11)"
                  ".stream('custom-component').random())))")
        local = float(RandomStreams(11).stream("custom-component").random())
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH=src_dir)
        output = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        assert float(output.stdout.strip()) == local

    def test_getitem_alias(self):
        streams = RandomStreams(1)
        assert streams["workload"] is streams.stream("workload")
