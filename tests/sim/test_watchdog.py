"""Tests for the no-progress watchdog and deadlock diagnosis."""

import pytest

from repro.sim import Environment
from repro.sim.errors import DeadlockError, SimulationError


class TestDeadlockDiagnosis:
    def test_waiting_on_nothing_raises_deadlock_error(self):
        """An intentionally-deadlocked run raises instead of hanging."""
        env = Environment()

        def stuck_consumer(env):
            yield env.event()  # nobody will ever succeed this

        proc = env.process(stuck_consumer(env))
        with pytest.raises(DeadlockError):
            env.run(proc)

    def test_deadlock_error_names_the_stuck_process(self):
        env = Environment()

        def orphaned_waiter(env):
            yield env.event()

        proc = env.process(orphaned_waiter(env))
        with pytest.raises(DeadlockError) as excinfo:
            env.run(proc)
        message = str(excinfo.value)
        assert "orphaned_waiter" in message
        assert "waiting on" in message

    def test_deadlock_error_lists_every_stuck_process(self):
        env = Environment()

        def waiter_a(env):
            yield env.event()

        def waiter_b(env):
            yield env.event()

        env.process(waiter_a(env))
        proc = env.process(waiter_b(env))
        with pytest.raises(DeadlockError) as excinfo:
            env.run(proc)
        message = str(excinfo.value)
        assert "waiter_a" in message and "waiter_b" in message
        assert "2 process(es)" in message

    def test_deadlock_error_is_a_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_mutual_wait_is_diagnosed(self):
        """Two processes each waiting on the other's event: classic deadlock."""
        env = Environment()
        lock_a = env.event()
        lock_b = env.event()

        def philosopher_one(env):
            yield lock_a
            lock_b.succeed()

        def philosopher_two(env):
            yield lock_b
            lock_a.succeed()

        env.process(philosopher_one(env))
        proc = env.process(philosopher_two(env))
        with pytest.raises(DeadlockError) as excinfo:
            env.run(proc)
        assert "philosopher_one" in str(excinfo.value)
        assert "philosopher_two" in str(excinfo.value)


class TestWatchdog:
    def test_normal_run_unaffected_by_watchdog(self):
        """The watched loop gives the same answer as the fast loop."""
        def worker(env):
            total = 0.0
            for _ in range(10):
                yield env.timeout(0.5)
                total += env.now
            return total

        plain = Environment()
        expected = plain.run(plain.process(worker(plain)))
        watched = Environment()
        got = watched.run(watched.process(worker(watched)), watchdog=30.0)
        assert got == expected
        assert watched.now == plain.now

    def test_watchdog_until_time_matches_fast_loop(self):
        def ticker(env):
            while True:
                yield env.timeout(1.0)

        plain = Environment()
        plain.process(ticker(plain))
        plain.run(until=5.5)
        watched = Environment()
        watched.process(ticker(watched))
        watched.run(until=5.5, watchdog=30.0)
        assert watched.now == plain.now == 5.5

    def test_watchdog_catches_zero_time_livelock(self):
        """Events firing forever at one instant trip the watchdog."""
        env = Environment()

        def spinner(env):
            while True:
                # event_at(now) reschedules at the same instant: simulated
                # time never advances but the calendar never empties.
                yield env.event_at(env.now)

        env.process(spinner(env))
        with pytest.raises(DeadlockError) as excinfo:
            env.run(watchdog=0.05)
        message = str(excinfo.value)
        assert "watchdog expired" in message
        assert "spinner" in message

    def test_watchdog_empty_calendar_below_sentinel_diagnosed(self):
        env = Environment()

        def silent_partner(env):
            yield env.event()

        proc = env.process(silent_partner(env))
        with pytest.raises(DeadlockError) as excinfo:
            env.run(proc, watchdog=10.0)
        assert "silent_partner" in str(excinfo.value)

    def test_watchdog_budget_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.run(watchdog=0.0)
        with pytest.raises(ValueError):
            env.run(watchdog=-1.0)

    def test_watchdog_until_in_past_rejected(self):
        env = Environment()
        env.process(_tick(env))
        env.run(until=2.0)
        with pytest.raises(ValueError):
            env.run(until=1.0, watchdog=5.0)

    def test_watchdog_run_to_exhaustion_returns_none(self):
        env = Environment()
        env.process(_tick(env))
        assert env.run(watchdog=10.0) is None
        assert env.now == 3.0


def _tick(env):
    for _ in range(3):
        yield env.timeout(1.0)
