"""Tests for barriers and latches."""

import pytest

from repro.sim import Barrier, CountDownLatch, Environment, SimulationError


class TestBarrier:
    def test_requires_at_least_one_party(self, env):
        with pytest.raises(ValueError):
            Barrier(env, parties=0)

    def test_all_parties_released_together(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        released = []

        def participant(env, barrier, delay, name):
            yield env.timeout(delay)
            yield barrier.wait()
            released.append((name, env.now))

        env.process(participant(env, barrier, 1.0, "a"))
        env.process(participant(env, barrier, 5.0, "b"))
        env.process(participant(env, barrier, 3.0, "c"))
        env.run()
        assert all(time == 5.0 for _name, time in released)
        assert len(released) == 3

    def test_barrier_is_reusable(self):
        env = Environment()
        barrier = Barrier(env, parties=2)
        generations = []

        def participant(env, barrier):
            for _ in range(3):
                generation = yield barrier.wait()
                generations.append(generation)
                yield env.timeout(1.0)

        env.process(participant(env, barrier))
        env.process(participant(env, barrier))
        env.run()
        assert sorted(generations) == [0, 0, 1, 1, 2, 2]

    def test_single_party_barrier_never_blocks(self):
        env = Environment()
        barrier = Barrier(env, parties=1)
        log = []

        def participant(env, barrier):
            yield barrier.wait()
            log.append(env.now)

        env.process(participant(env, barrier))
        env.run()
        assert log == [0.0]

    def test_n_waiting(self, env):
        barrier = Barrier(env, parties=3)
        barrier.wait()
        barrier.wait()
        assert barrier.n_waiting == 2
        barrier.wait()
        assert barrier.n_waiting == 0
        env.run()


class TestCountDownLatch:
    def test_negative_count_rejected(self, env):
        with pytest.raises(ValueError):
            CountDownLatch(env, -1)

    def test_zero_count_is_open_immediately(self, env):
        latch = CountDownLatch(env, 0)
        assert latch.wait().triggered

    def test_opens_after_n_countdowns(self):
        env = Environment()
        latch = CountDownLatch(env, 3)
        opened = []

        def waiter(env, latch):
            yield latch.wait()
            opened.append(env.now)

        def worker(env, latch, delay):
            yield env.timeout(delay)
            latch.count_down()

        env.process(waiter(env, latch))
        for delay in (1.0, 2.0, 4.0):
            env.process(worker(env, latch, delay))
        env.run()
        assert opened == [4.0]

    def test_count_down_below_zero_is_an_error(self, env):
        latch = CountDownLatch(env, 1)
        latch.count_down()
        with pytest.raises(SimulationError):
            latch.count_down()
        env.run()

    def test_remaining_counts_down(self, env):
        latch = CountDownLatch(env, 2)
        assert latch.remaining == 2
        latch.count_down()
        assert latch.remaining == 1
