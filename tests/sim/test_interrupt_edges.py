"""Interrupt edge cases: fused device waits, resource fast paths, re-entry.

`Process.interrupt` detaches the target from whatever it was waiting on and
throws :class:`Interrupt` into its generator.  These tests pin the corners
that the hot-path rewrites (delay fusion, ``acquire_event`` /
``transfer_event``) must not break: the underlying hardware model keeps its
own schedule; only the waiter changes course.
"""

import pytest

from repro.disk import Disk, HP97560_SPEC
from repro.disk.drive import BusPort
from repro.sim import Environment, Resource
from repro.sim.errors import Interrupt, SimulationError

SECTORS_PER_BLOCK = 16


def make_disk(env, **kwargs):
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    return Disk(env, HP97560_SPEC, port, **kwargs)


class TestInterruptFusedDiskWait:
    def test_interrupted_reader_leaves_drive_serviceable(self):
        """Interrupting a waiter on a fused read must not corrupt the drive.

        The fused fast path completes the read via one ``event_at``; the
        interrupted client detaches, but the drive's internal schedule runs
        on — the completion still fires and the next read sees a consistent
        arm position and cache.
        """
        env = Environment()
        disk = make_disk(env)
        seen = []

        def reader(env):
            try:
                yield disk.read(0, SECTORS_PER_BLOCK)
                seen.append("completed")
            except Interrupt:
                seen.append("interrupted")

        def interrupter(env, victim):
            # Strike mid-service: after the request is queued, well before
            # the mechanical delay expires.
            yield env.timeout(1e-6)
            victim.interrupt("lost interest")

        victim = env.process(reader(env))
        env.process(interrupter(env, victim))
        env.run()
        assert seen == ["interrupted"]
        # The service actually ran to completion on the drive's side.
        assert disk.stats.reads == 1
        # And the drive still serves later traffic normally.
        done = []

        def second_reader(env):
            request = yield disk.read(64, SECTORS_PER_BLOCK)
            done.append(request)

        env.run(env.process(second_reader(env)))
        assert done and done[0].status == "ok"
        assert disk.stats.reads == 2

    def test_interrupt_does_not_stop_the_completion_event(self):
        env = Environment()
        disk = make_disk(env)
        completion_box = []

        def reader(env):
            completion = disk.read(0, SECTORS_PER_BLOCK)
            completion_box.append(completion)
            try:
                yield completion
            except Interrupt:
                pass

        victim = env.process(reader(env))

        def interrupter(env):
            yield env.timeout(1e-6)
            victim.interrupt()

        env.process(interrupter(env))
        env.run()
        assert completion_box[0].triggered


class TestInterruptResourceFastPaths:
    def test_acquire_event_hold_released_at_expiry_after_interrupt(self):
        """The documented ``acquire_event`` caveat: an interrupted holder's
        slot is returned when the hold timeout expires, never leaked."""
        env = Environment()
        cpu = Resource(env, capacity=1)

        def holder(env):
            event = cpu.acquire_event(1.0)
            assert event is not None
            try:
                yield event
            except Interrupt:
                pass

        victim = env.process(holder(env))

        def interrupter(env):
            yield env.timeout(0.25)
            victim.interrupt()

        env.process(interrupter(env))
        env.run(until=0.5)
        assert cpu.count == 1  # still held: release rides the timeout
        env.run()
        assert cpu.count == 0  # ...and lands exactly at expiry

    def test_acquire_generator_path_releases_on_interrupt(self):
        """The generator path's ``finally`` releases at interrupt time."""
        env = Environment()
        cpu = Resource(env, capacity=1)

        def holder(env):
            try:
                yield from cpu.acquire(1.0)
            except Interrupt:
                pass

        victim = env.process(holder(env))

        def interrupter(env):
            yield env.timeout(0.25)
            victim.interrupt()

        env.process(interrupter(env))
        env.run(until=0.5)
        assert cpu.count == 0

    def test_transfer_event_bus_released_at_expiry_after_interrupt(self):
        env = Environment()
        bus = Resource(env, capacity=1)
        port = BusPort(bus, bandwidth=10e6, overhead=0.0)

        def sender(env):
            event = port.transfer_event(env, 10 ** 6)  # 0.1 s on the wire
            assert event is not None
            try:
                yield event
            except Interrupt:
                pass

        victim = env.process(sender(env))

        def interrupter(env):
            yield env.timeout(0.01)
            victim.interrupt()

        env.process(interrupter(env))
        env.run()
        assert bus.count == 0
        # A fresh transfer finds the bus free again.
        event = port.transfer_event(env, 1000)
        assert event is not None


class TestInterruptReentry:
    def test_double_interrupt_delivered_twice(self):
        env = Environment()
        hits = []

        def stoic(env):
            for _ in range(2):
                try:
                    yield env.timeout(10.0)
                except Interrupt as interrupt:
                    hits.append(interrupt.cause)
            return "survived"

        victim = env.process(stoic(env))
        victim.interrupt("first")
        victim.interrupt("second")
        result = env.run(victim)
        assert hits == ["first", "second"]
        assert result == "survived"

    def test_interrupt_after_completion_is_an_error(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.1)

        proc = env.process(quick(env))
        env.run(proc)
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupt_raced_with_completion_is_dropped(self):
        """Interrupt scheduled while alive but delivered after the process
        finished in the same instant: delivery notices the corpse and does
        nothing (the process keeps its return value)."""
        env = Environment()
        gate = env.event()

        def quick(env):
            yield gate
            return "done"

        proc = env.process(quick(env))

        def racer(env):
            yield env.timeout(0.1)
            # Both scheduled at t=0.1: the gate resume (first) finishes the
            # process, then the interruption finds it already dead.
            gate.succeed()
            proc.interrupt()

        env.process(racer(env))
        env.run()
        assert proc.triggered and proc._value == "done"

    def test_unhandled_interrupt_fails_the_process(self):
        env = Environment()

        def oblivious(env):
            yield env.timeout(10.0)

        victim = env.process(oblivious(env))
        victim.interrupt("wake up")
        with pytest.raises(Interrupt):
            env.run(victim)
