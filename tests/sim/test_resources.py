"""Tests for capacity-limited resources."""

import pytest

from repro.sim import Environment, Resource


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_when_free(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        assert request.triggered
        assert resource.count == 1

    def test_queueing_when_full(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.triggered
        assert not second.triggered
        assert resource.queue_length == 1
        resource.release(first)
        assert second.triggered
        assert resource.queue_length == 0

    def test_release_of_unknown_request_raises(self, env):
        resource = Resource(env, capacity=1)
        granted = resource.request()
        other = Resource(env, capacity=1).request()
        with pytest.raises(ValueError):
            resource.release(other)
        resource.release(granted)

    def test_fifo_ordering(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(env, resource, name, hold):
            yield from resource.acquire(hold)
            order.append((name, env.now))

        for index, name in enumerate("abc"):
            env.process(user(env, resource, name, 1.0))
        env.run()
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_multi_capacity_allows_parallel_use(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        done = []

        def user(env, resource, name):
            yield from resource.acquire(1.0)
            done.append((name, env.now))

        for name in "abcd":
            env.process(user(env, resource, name))
        env.run()
        # Two at a time: a+b finish at 1.0, c+d at 2.0.
        assert [t for _n, t in done] == [1.0, 1.0, 2.0, 2.0]

    def test_acquire_releases_even_on_zero_hold(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource):
            yield from resource.acquire(0.0)

        env.process(user(env, resource))
        env.run()
        assert resource.count == 0

    def test_utilization_tracking(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource):
            yield from resource.acquire(4.0)
            yield env.timeout(4.0)

        env.process(user(env, resource))
        env.run()
        assert env.now == 8.0
        assert resource.utilization.busy_fraction() == pytest.approx(0.5)

    def test_request_as_context_manager(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource):
            with resource.request() as request:
                yield request
                yield env.timeout(1.0)

        env.process(user(env, resource))
        env.run()
        assert resource.count == 0


class TestAcquireEvent:
    """The non-generator fast path must mirror acquire() exactly."""

    def test_uncontended_returns_single_event(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        done = []

        def user(env, resource):
            event = resource.acquire_event(2.0)
            assert event is not None
            assert resource.count == 1
            yield event
            done.append(env.now)

        env.process(user(env, resource))
        env.run()
        assert done == [2.0]
        assert resource.count == 0  # released at expiry

    def test_contended_returns_none(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env, resource):
            yield from resource.acquire(5.0)

        def prober(env, resource):
            yield env.timeout(1.0)
            assert resource.acquire_event(1.0) is None

        env.process(holder(env, resource))
        env.process(prober(env, resource))
        env.run()

    def test_release_happens_before_waiter_resumes(self):
        # A queued waiter must be granted by the fast path's release callback
        # at hold expiry, exactly as the generator path grants it.
        env = Environment()
        resource = Resource(env, capacity=1)
        grants = []

        def fast_user(env, resource):
            yield resource.acquire_event(1.0)
            grants.append(("fast-done", env.now))

        def queued_user(env, resource):
            yield from resource.acquire(1.0)
            grants.append(("queued-done", env.now))

        env.process(fast_user(env, resource))
        env.process(queued_user(env, resource))
        env.run()
        assert grants == [("fast-done", 1.0), ("queued-done", 2.0)]

    def test_matches_generator_path_timings(self):
        def scenario(use_fast_path):
            env = Environment()
            resource = Resource(env, capacity=2)
            finished = []

            def user(env, name, start, hold):
                yield env.timeout(start)
                if use_fast_path:
                    event = resource.acquire_event(hold)
                    if event is None:
                        yield from resource.acquire(hold)
                    else:
                        yield event
                else:
                    yield from resource.acquire(hold)
                finished.append((name, env.now))

            for index, (start, hold) in enumerate(
                    [(0.0, 3.0), (0.5, 1.0), (1.0, 2.0), (1.0, 0.5)]):
                env.process(user(env, index, start, hold))
            env.run()
            return finished, resource.utilization.busy_fraction()

        assert scenario(True) == scenario(False)

    def test_utilization_tracked_on_fast_path(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env, resource):
            yield resource.acquire_event(4.0)
            yield env.timeout(4.0)

        env.process(user(env, resource))
        env.run()
        assert env.now == 8.0
        assert resource.utilization.busy_fraction() == pytest.approx(0.5)
