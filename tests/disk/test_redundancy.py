"""Tests for the declustered parity layer (repro.disk.redundancy)."""

import pytest

from repro.disk.faults import FaultConfig
from repro.disk.redundancy import (
    DEFAULT_REBUILD_BANDWIDTH,
    REDUNDANCY_MODES,
    ParityArray,
    ParityDisk,
)
from repro.fs.layout import ParityLayout, make_layout
from repro.machine import Machine, MachineConfig

KILOBYTE = 1024


def build_machine(n_disks=4, redundancy="parity", fault_config=None,
                  **kwargs):
    config = MachineConfig(n_cps=2, n_iops=2, n_disks=n_disks)
    return Machine(config, seed=3, fault_config=fault_config,
                   redundancy=redundancy, **kwargs)


def run_until(machine, event):
    """Drive the simulation until *event* fires; returns its request."""
    results = []

    def waiter():
        results.append((yield event))
    machine.env.process(waiter())
    machine.run()
    assert results, "event never fired"
    return results[0]


class TestParityLayout:
    def spec(self):
        return MachineConfig().disk_spec

    def test_data_rows_skip_the_rotated_parity_row(self):
        layout = make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                             redundancy="parity", n_disks=4)
        for drive in range(4):
            rows = [layout.data_row(drive, slot) for slot in range(12)]
            assert all(row % 4 != drive for row in rows)
            assert rows == sorted(rows)          # contiguous stays ordered
            assert len(set(rows)) == len(rows)   # and collision-free

    def test_every_data_row_is_used_exactly_once_per_group(self):
        layout = make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                             redundancy="parity", n_disks=4)
        # Drive d's first 3 slots tile the first group of 4 physical rows
        # minus the parity row d.
        for drive in range(4):
            rows = {layout.data_row(drive, slot) for slot in range(3)}
            assert rows == set(range(4)) - {drive}

    def test_capacity_shrinks_by_the_parity_share(self):
        plain = make_layout("contiguous", self.spec(), 8 * KILOBYTE)
        parity = make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                             redundancy="parity", n_disks=4)
        physical = plain.blocks_per_disk
        expected = physical - (-(-physical // 4))
        assert parity.blocks_per_disk == expected
        assert isinstance(parity, ParityLayout)
        assert parity.physical_rows == physical

    def test_lbn_of_lands_on_data_rows_only(self):
        layout = make_layout("random", self.spec(), 8 * KILOBYTE,
                             redundancy="parity", n_disks=4, seed=11)
        spb = layout.sectors_per_block
        for drive in range(4):
            for slot in range(16):
                row = layout.lbn_of(drive, slot) // spb
                assert row % 4 != drive

    def test_inner_name_is_preserved_for_the_extent_cursor(self):
        layout = make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                             redundancy="parity", n_disks=4)
        assert layout.name == "contiguous"

    def test_rejects_unknown_redundancy_and_missing_width(self):
        with pytest.raises(ValueError, match="redundancy"):
            make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                        redundancy="raid6")
        with pytest.raises(ValueError, match="n_disks"):
            make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                        redundancy="parity")
        with pytest.raises(ValueError, match="3 drives"):
            make_layout("contiguous", self.spec(), 8 * KILOBYTE,
                        redundancy="parity", n_disks=2)


class TestMachineAxis:
    def test_none_builds_no_parity_hardware(self):
        machine = build_machine(redundancy="none")
        assert machine.parity is None
        assert machine.spare_disks == []
        assert machine.disk_handles[0] is machine.disks[0]

    def test_parity_wraps_every_handle_and_adds_a_spare(self):
        machine = build_machine()
        assert isinstance(machine.parity, ParityArray)
        assert len(machine.spare_disks) == 1
        for handle in machine.disk_handles:
            assert isinstance(handle, ParityDisk)
        # the owning IOPs see the same wrappers
        for iop in machine.iops:
            for handle in iop.disk_handles:
                assert isinstance(handle, ParityDisk)

    def test_parity_needs_three_drives(self):
        with pytest.raises(ValueError, match="3 drives"):
            build_machine(n_disks=2)

    def test_unknown_redundancy_rejected(self):
        with pytest.raises(ValueError, match="redundancy"):
            build_machine(redundancy="mirror")
        assert REDUNDANCY_MODES == ("none", "parity")

    def test_default_rebuild_bandwidth_applies(self):
        machine = build_machine()
        assert machine.parity.rebuild_bandwidth == DEFAULT_REBUILD_BANDWIDTH


class TestHealthyPath:
    def test_reads_and_writes_pass_through(self):
        machine = build_machine()
        handle = machine.disk_handles[1]
        spb = machine.config.sectors_per_block
        request = run_until(machine, handle.read(0, spb))
        assert request.status == "ok"
        assert machine.parity.counters["degraded_reads"] == 0
        assert machine.parity.counters["reconstructed_bytes"] == 0

    def test_live_write_triggers_a_coalesced_parity_update(self):
        machine = build_machine()
        handle = machine.disk_handles[1]
        spb = machine.config.sectors_per_block
        request = run_until(machine, handle.write(0, spb))
        assert request.status == "ok"
        counters = machine.parity.counters
        assert counters["parity_updates"] == 1
        # RMW on a 3-data-column stripe: old data + old parity pre-read,
        # then the parity write.
        assert counters["parity_overhead_bytes"] == \
            3 * machine.config.block_size

    def test_same_row_writes_coalesce_toward_full_stripe(self):
        machine = build_machine()
        spb = machine.config.sectors_per_block
        # Row 0's parity lives on drive 0: writing drives 1..3 dirties every
        # data column of the stripe at once.
        events = [machine.disk_handles[d].write(0, spb) for d in (1, 2, 3)]
        for event in events:
            run_until(machine, event)
        counters = machine.parity.counters
        assert counters["full_stripe_updates"] == 1
        assert counters["parity_updates"] == 1
        # Full stripe: no pre-reads, just the parity write.
        assert counters["parity_overhead_bytes"] == machine.config.block_size

    def test_repair_reconstructs_and_counts_a_scrub(self):
        machine = build_machine()
        handle = machine.disk_handles[2]
        spb = machine.config.sectors_per_block
        request = run_until(machine, handle.repair(0, spb))
        assert request.status == "ok"
        assert machine.parity.counters["scrub_repairs"] == 1
        assert machine.parity.counters["reconstructed_bytes"] == \
            machine.config.block_size

    def test_repair_from_corrupt_survivors_fails_with_checksum(self):
        # Full-drive silent ranges on *every* drive: the survivors feeding
        # the reconstruction are themselves corrupt, so parity can only
        # produce garbage and must say so.
        fault = FaultConfig(silent_range_count=1,
                            silent_range_sectors=10 ** 9)
        machine = build_machine(fault_config=fault)
        handle = machine.disk_handles[2]
        spb = machine.config.sectors_per_block
        request = run_until(machine, handle.repair(0, spb))
        assert request.status == "error"
        assert request.error == "checksum"
        assert machine.parity.counters["scrub_repairs"] == 0


class TestDegradedPath:
    def dead_machine(self, **kwargs):
        fault = FaultConfig(fail_stop_disk=0, fail_stop_time=0.0)
        return build_machine(fault_config=fault, **kwargs)

    def test_read_on_dead_drive_reconstructs(self):
        machine = self.dead_machine()
        spb = machine.config.sectors_per_block
        # Row 1 (lbn == spb): drive 0 holds data there (parity is on 1).
        request = run_until(machine, machine.disk_handles[0].read(spb, spb))
        assert request.status == "ok"
        counters = machine.parity.counters
        assert counters["degraded_reads"] == 1
        assert counters["reconstructed_bytes"] == machine.config.block_size
        # One read per survivor hit the other drives.
        for survivor in range(1, 4):
            assert machine.disks[survivor].stats.reads >= 1

    def test_write_to_dead_drive_degrades_without_loss(self):
        machine = self.dead_machine()
        spb = machine.config.sectors_per_block
        request = run_until(machine, machine.disk_handles[0].write(spb, spb))
        assert request.status == "ok"
        counters = machine.parity.counters
        assert counters["degraded_writes"] == 1
        assert counters["parity_overhead_bytes"] > 0

    def test_rebuild_streams_used_rows_onto_the_spare(self):
        machine = self.dead_machine(
            rebuild_bandwidth=float(64 * 1024 * 1024))
        parity = machine.parity
        spb = machine.config.sectors_per_block
        for row in (1, 2, 5):
            parity.note_used_row(0, row)
        machine.run()
        assert parity.rebuild is not None
        assert parity.rebuild.rows_done == 3
        assert parity.counters["rebuilt_rows"] == 3
        assert parity.rebuild.done.triggered
        assert machine.spare_disks[0].stats.writes == 3
        assert parity.counters["rebuild_seconds"] > 0.0

    def test_reads_after_rebuild_come_from_the_spare(self):
        machine = self.dead_machine(
            rebuild_bandwidth=float(64 * 1024 * 1024))
        parity = machine.parity
        spb = machine.config.sectors_per_block
        parity.note_used_row(0, 1)
        machine.run()
        spare_reads_before = machine.spare_disks[0].stats.reads
        request = run_until(machine, machine.disk_handles[0].read(spb, spb))
        assert request.status == "ok"
        assert machine.spare_disks[0].stats.reads == spare_reads_before + 1
        # Served from the spare, not by reconstruction.
        assert parity.counters["degraded_reads"] == 0
