"""Tests for the HP 97560 drive specification."""

import pytest

from repro.disk import HP97560_SPEC, DiskSpec
from repro.disk.specs import SeekCurve

MEGABYTE = 2 ** 20


class TestSeekCurve:
    def test_zero_distance_is_free(self):
        assert SeekCurve().seek_time(0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SeekCurve().seek_time(-1)

    def test_short_seeks_use_sqrt_regime(self):
        curve = SeekCurve()
        assert curve.seek_time(100) == pytest.approx(
            curve.short_constant + curve.short_sqrt_coeff * 10.0)

    def test_long_seeks_use_linear_regime(self):
        curve = SeekCurve()
        assert curve.seek_time(1000) == pytest.approx(
            curve.long_constant + curve.long_linear_coeff * 1000)

    def test_monotonic_nondecreasing(self):
        curve = SeekCurve()
        times = [curve.seek_time(d) for d in range(0, 1962, 7)]
        assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))

    def test_single_cylinder_seek_is_milliseconds(self):
        assert 0.001 < SeekCurve().seek_time(1) < 0.01


class TestHP97560Spec:
    def test_capacity_matches_paper(self):
        # Table 1: 1.3 GB.
        assert HP97560_SPEC.capacity_bytes == pytest.approx(1.3e9, rel=0.1)

    def test_peak_transfer_rate_matches_paper(self):
        # Table 1: 2.34 Mbytes/s (2^20-byte megabytes).
        assert HP97560_SPEC.media_transfer_rate / MEGABYTE == pytest.approx(2.34, abs=0.02)

    def test_aggregate_of_16_disks_is_papers_peak(self):
        total = 16 * HP97560_SPEC.media_transfer_rate / MEGABYTE
        assert total == pytest.approx(37.5, abs=0.3)

    def test_revolution_time_from_rpm(self):
        assert HP97560_SPEC.revolution_time == pytest.approx(60.0 / 4002.0)

    def test_sector_time_times_sectors_is_revolution(self):
        spec = HP97560_SPEC
        assert spec.sector_time * spec.sectors_per_track == pytest.approx(
            spec.revolution_time)

    def test_sustained_rate_below_peak(self):
        assert HP97560_SPEC.sustained_transfer_rate < HP97560_SPEC.media_transfer_rate

    def test_track_skew_covers_head_switch(self):
        spec = HP97560_SPEC
        assert spec.track_skew_sectors * spec.sector_time >= spec.head_switch_time
        assert spec.track_skew_sectors < spec.sectors_per_track

    def test_average_rotational_latency_is_half_revolution(self):
        assert HP97560_SPEC.average_rotational_latency == pytest.approx(
            HP97560_SPEC.revolution_time / 2)

    def test_full_seek_is_under_a_tenth_of_a_second(self):
        assert 0.01 < HP97560_SPEC.full_seek_time() < 0.1

    def test_custom_spec_overrides(self):
        small = DiskSpec(cylinders=100, heads=2, sectors_per_track=32)
        assert small.total_sectors == 100 * 2 * 32
        assert small.capacity_bytes == small.total_sectors * 512
