"""Tests for the cross-collective IOP disk queue (SharedDiskQueue)."""

import pytest

from repro.disk import Disk, HP97560_SPEC, SharedDiskQueue
from repro.disk.drive import BusPort
from repro.sim import Environment, Resource
from repro.sim.events import AllOf, Event

SECTORS_PER_BLOCK = 16


def make_disk(env, **kwargs):
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    return Disk(env, HP97560_SPEC, port, **kwargs)


def make_queue(env, policy="cscan", workers=1, **disk_kwargs):
    disk = make_disk(env, **disk_kwargs)
    return disk, SharedDiskQueue(env, disk, policy=policy, workers=workers)


class TestValidation:
    def test_rejects_zero_workers(self):
        env = Environment()
        disk = make_disk(env)
        with pytest.raises(ValueError):
            SharedDiskQueue(env, disk, workers=0)

    def test_rejects_unknown_policy(self):
        env = Environment()
        disk = make_disk(env)
        with pytest.raises(ValueError):
            SharedDiskQueue(env, disk, policy="elevator-to-nowhere")


class TestMergedOrdering:
    def _service_order(self, env, queue, submissions, policy_kick=None):
        """Submit everything at t=0, return the order jobs were serviced."""
        order = []

        def job(label, lbn):
            def run():
                yield queue.disk.read(lbn, SECTORS_PER_BLOCK)
                order.append(label)
            return run

        events = [queue.submit(lbn, job(label, lbn), session_id=session)
                  for label, session, lbn in submissions]
        env.run(AllOf(env, events))
        return order

    def test_cscan_merges_two_sessions_into_one_sweep(self):
        # Session A holds even thousands, session B odd thousands; submitted
        # interleaved A,B,A,B by arrival.  A single-worker CSCAN queue must
        # service the union in ascending-LBN order, not per-session streams.
        env = Environment()
        _disk, queue = make_queue(env, policy="cscan", workers=1)
        submissions = [
            ("a0", "A", 8000), ("b0", "B", 1000),
            ("a1", "A", 4000), ("b1", "B", 9000),
            ("a2", "A", 2000), ("b2", "B", 5000),
        ]
        order = self._service_order(env, queue, submissions)
        # All six jobs are pending when the worker first wakes (head at 0),
        # so the whole batch is serviced in one ascending sweep across both
        # sessions — not as two per-session streams in arrival order.
        assert order == ["b0", "a2", "a1", "b2", "a0", "b1"]

    def test_fcfs_policy_preserves_arrival_order(self):
        env = Environment()
        _disk, queue = make_queue(env, policy="fcfs", workers=1)
        submissions = [("x", "A", 9000), ("y", "B", 100), ("z", "A", 5000)]
        order = self._service_order(env, queue, submissions)
        assert order == ["x", "y", "z"]

    def test_worker_pool_bounds_jobs_in_service(self):
        env = Environment()
        _disk, queue = make_queue(env, policy="cscan", workers=2)
        peak = []

        def job(lbn):
            def run():
                peak.append(queue.in_service)
                yield queue.disk.read(lbn, SECTORS_PER_BLOCK)
            return run

        events = [queue.submit(1000 * i, job(1000 * i)) for i in range(6)]
        env.run(AllOf(env, events))
        assert max(peak) <= 2
        assert queue.dispatched == 6
        assert queue.queue_depth == 0


class TestDiskCompatibleInterface:
    def test_read_returns_value_and_tags_session(self):
        env = Environment()
        disk, queue = make_queue(env)
        done = queue.read(100, SECTORS_PER_BLOCK, session_id=7)
        env.run(done)
        assert disk.session_stats[7].reads == 1
        assert disk.session_stats[7].bytes_read == SECTORS_PER_BLOCK * 512
        assert disk.session_stats[7].service_time > 0

    def test_write_tracked_media_placeholder_fires(self):
        env = Environment()
        disk, queue = make_queue(env)
        accepted, on_media = queue.write_tracked(
            100, SECTORS_PER_BLOCK, session_id=3)
        env.run(accepted)
        accepted_at = env.now
        env.run(on_media)
        assert env.now >= accepted_at  # destage happens at or after accept
        assert disk.session_stats[3].writes == 1

    def test_flush_waits_for_queued_and_buffered_writes(self):
        env = Environment()
        disk, queue = make_queue(env, workers=1)
        for i in range(4):
            queue.write(1000 * i, SECTORS_PER_BLOCK)
        flushed = queue.flush()
        env.run(flushed)
        assert disk.stats.writes == 4
        assert disk.stats.bytes_written == 4 * SECTORS_PER_BLOCK * 512

    def test_flush_with_no_writes_completes(self):
        env = Environment()
        _disk, queue = make_queue(env)
        flushed = queue.flush()
        env.run(flushed)
        assert flushed.triggered


class TestLateMerging:
    def test_late_arrival_joins_the_sweep(self):
        # A second session submitting while the queue is draining is merged
        # by the policy rather than appended after everything pending.
        env = Environment()
        _disk, queue = make_queue(env, policy="cscan", workers=1)
        order = []

        def job(label, lbn):
            def run():
                yield queue.disk.read(lbn, SECTORS_PER_BLOCK)
                order.append(label)
            return run

        first = [queue.submit(lbn, job(f"a{lbn}", lbn))
                 for lbn in (2000, 40000, 80000)]

        def late_submitter():
            yield env.timeout(0.005)  # while the queue still has work
            yield queue.submit(41000, job("late", 41000))

        late = env.process(late_submitter())
        env.run(AllOf(env, first + [late]))
        # The late 41000 must ride the sweep right after 40000, before 80000.
        assert order.index("late") < order.index("a80000")


class TestQueueWaitAccounting:
    def test_pending_wait_attributed_per_session(self):
        env = Environment()
        _disk, queue = make_queue(env, policy="cscan", workers=1)
        events = [queue.read(1000 * i, SECTORS_PER_BLOCK, session_id="s")
                  for i in range(4)]
        env.run(AllOf(env, events))
        # Jobs 2-4 waited for the single worker; their wait is recorded.
        assert queue.session_wait_seconds("s") > 0
        assert queue.session_wait_seconds("other") == 0.0
        queue.release_session("s")
        assert queue.session_wait_seconds("s") == 0.0

    def test_iop_queue_wait_reaches_session_counters(self):
        from repro import FileSystem, Machine, MachineConfig, make_filesystem, \
            make_pattern

        config = MachineConfig(n_cps=2, n_iops=1, n_disks=1)
        machine = Machine(config, seed=1, disk_scheduler="shared-cscan")
        striped = FileSystem(config, layout_seed=1).create_file("f", 64 * 1024)
        fs = make_filesystem("ddio", machine, striped)
        result = fs.transfer(make_pattern("rb", striped.size_bytes, 8192, 2))
        # One disk, 8 blocks, 2 workers: most jobs waited in the IOP queue.
        assert result.counters["iop_queue_wait"] > 0
        # Default machines report the key as 0.0 (no shared queues).
        plain = Machine(config, seed=1)
        assert plain.session_disk_stats(12345)["iop_queue_wait"] == 0.0
