"""Tests for seek/rotation/transfer mechanics."""

import pytest

from repro.disk import DiskGeometry, HP97560_SPEC, SeekModel
from repro.disk.mechanics import DiskMechanics, MediaTransferModel, RotationModel


@pytest.fixture
def geometry():
    return DiskGeometry(HP97560_SPEC)


@pytest.fixture
def mechanics(geometry):
    return DiskMechanics(HP97560_SPEC, geometry)


class TestSeekModel:
    def test_no_movement_no_time(self):
        assert SeekModel(HP97560_SPEC).seek_time(100, 100) == 0.0

    def test_symmetric(self):
        model = SeekModel(HP97560_SPEC)
        assert model.seek_time(0, 500) == model.seek_time(500, 0)

    def test_longer_seeks_cost_more(self):
        model = SeekModel(HP97560_SPEC)
        assert model.seek_time(0, 1900) > model.seek_time(0, 10)


class TestRotationModel:
    def test_angle_wraps_each_revolution(self):
        rotation = RotationModel(HP97560_SPEC)
        assert rotation.angle_at(HP97560_SPEC.revolution_time) == pytest.approx(0.0, abs=1e-9)

    def test_initial_angle_respected(self):
        rotation = RotationModel(HP97560_SPEC, initial_angle_fraction=0.5)
        assert rotation.angle_at(0.0) == pytest.approx(0.5)

    def test_delay_to_current_sector_is_zero(self):
        rotation = RotationModel(HP97560_SPEC)
        assert rotation.rotational_delay_to_sector(0.0, 0) == pytest.approx(0.0)

    def test_delay_never_exceeds_a_revolution(self):
        rotation = RotationModel(HP97560_SPEC, initial_angle_fraction=0.37)
        for sector in range(0, HP97560_SPEC.sectors_per_track, 5):
            delay = rotation.rotational_delay_to_sector(1.234, sector)
            assert 0.0 <= delay < HP97560_SPEC.revolution_time

    def test_floating_point_wraparound_treated_as_zero(self):
        rotation = RotationModel(HP97560_SPEC)
        # A target a hair "behind" the head must not cost a full revolution.
        delay = rotation.rotational_delay_to_sector(1e-15, 0)
        assert delay == pytest.approx(0.0, abs=1e-6)


class TestMediaTransfer:
    def test_single_sector_time(self, geometry):
        media = MediaTransferModel(HP97560_SPEC, geometry)
        assert media.transfer_time(0, 1) == pytest.approx(HP97560_SPEC.sector_time)

    def test_block_within_track(self, geometry):
        media = MediaTransferModel(HP97560_SPEC, geometry)
        assert media.transfer_time(0, 16) == pytest.approx(16 * HP97560_SPEC.sector_time)

    def test_track_crossing_adds_head_switch(self, geometry):
        media = MediaTransferModel(HP97560_SPEC, geometry)
        spt = HP97560_SPEC.sectors_per_track
        plain = media.transfer_time(0, 16)
        crossing = media.transfer_time(spt - 8, 16)
        assert crossing == pytest.approx(plain + HP97560_SPEC.head_switch_time)

    def test_zero_sectors_is_free(self, geometry):
        media = MediaTransferModel(HP97560_SPEC, geometry)
        assert media.transfer_time(0, 0) == 0.0


class TestDiskMechanics:
    def test_access_time_updates_cylinder(self, mechanics, geometry):
        per_cylinder = HP97560_SPEC.sectors_per_track * HP97560_SPEC.heads
        mechanics.access_time(0.0, 5 * per_cylinder, 16)
        assert mechanics.current_cylinder == 5

    def test_access_time_includes_seek_and_rotation(self, mechanics):
        per_cylinder = HP97560_SPEC.sectors_per_track * HP97560_SPEC.heads
        far = 1000 * per_cylinder
        elapsed = mechanics.access_time(0.0, far, 16)
        seek_only = HP97560_SPEC.seek_curve.seek_time(1000)
        assert elapsed >= seek_only

    def test_positioning_time_zero_when_aligned(self, mechanics):
        # At time zero, cylinder 0 / sector 0 is directly under the head.
        assert mechanics.positioning_time(0.0, 0) == pytest.approx(0.0, abs=1e-9)

    def test_sequential_transfer_time_is_media_only(self, mechanics):
        assert mechanics.sequential_transfer_time(0, 16) == pytest.approx(
            16 * HP97560_SPEC.sector_time)
