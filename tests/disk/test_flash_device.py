"""Unit tests for the simulated SSD device (repro.disk.flash.SSD)."""

import pytest

from repro.disk import SSD, SSDSpec, matched_ssd_spec
from repro.disk.drive import BusPort, DiskRequest
from repro.disk.faults import FAIL_STOP, TRANSIENT, FaultConfig, \
    build_fault_plan
from repro.sim import Environment, Resource
from repro.sim.events import AllOf

SECTORS_PER_BLOCK = 16    # one 8 KB file-system block = two 4 KB flash pages

#: A small device (64 logical pages over 9 erase blocks) whose GC actually
#: runs at test scale; long page times keep cached-read windows open.
TINY_SPEC = SSDSpec(total_sectors=512, pages_per_block=8, channels=2,
                    ncq_depth=2, write_cache_pages=8)


def make_ssd(env, spec=TINY_SPEC, **kwargs):
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    return SSD(env, spec=spec, bus_port=port, **kwargs)


def one_request(env, ssd, lbn=0, op="read", n_sectors=SECTORS_PER_BLOCK):
    box = []

    def client(env):
        if op == "read":
            request = yield ssd.read(lbn, n_sectors)
        else:
            request = yield ssd.write(lbn, n_sectors)
            yield ssd.flush()
        box.append(request)

    env.run(env.process(client(env)))
    return box[0]


class TestConstruction:
    def test_default_spec_is_bandwidth_matched(self):
        env = Environment()
        ssd = make_ssd(env, spec=None)
        assert ssd.spec.sequential_read_rate == pytest.approx(
            matched_ssd_spec().sequential_read_rate)

    def test_disk_constructor_knobs_are_accepted_and_ignored(self):
        # Machine passes scheduler/initial_angle_fraction to any device;
        # flash has no seek order and no platter.
        env = Environment()
        ssd = make_ssd(env, scheduler="cscan", initial_angle_fraction=0.73)
        request = one_request(env, ssd)
        assert request.status == "ok"

    def test_geometry_quacks_like_a_disk_geometry(self):
        env = Environment()
        ssd = make_ssd(env)
        assert ssd.geometry.total_sectors == TINY_SPEC.total_sectors
        assert ssd.geometry.page_of(0) == 0
        assert ssd.geometry.page_of(8) == 1
        assert list(ssd.geometry.page_span(0, 16)) == [0, 1]
        assert list(ssd.geometry.page_span(7, 2)) == [0, 1]


class TestSubmitValidation:
    def test_rejects_negative_lbn(self):
        env = Environment()
        ssd = make_ssd(env)
        with pytest.raises(ValueError):
            ssd.read(-1, 4)

    def test_rejects_reads_past_the_end(self):
        env = Environment()
        ssd = make_ssd(env)
        with pytest.raises(ValueError):
            ssd.read(TINY_SPEC.total_sectors - 2, 4)

    def test_rejects_empty_requests(self):
        env = Environment()
        ssd = make_ssd(env)
        with pytest.raises(ValueError):
            ssd.read(0, 0)


class TestReadPath:
    def test_read_completes_and_counts(self):
        env = Environment()
        ssd = make_ssd(env)
        request = one_request(env, ssd)
        assert request.status == "ok"
        assert ssd.stats.reads == 1
        assert ssd.stats.bytes_read == SECTORS_PER_BLOCK * 512
        assert ssd.stats.cache_misses == 1
        assert env.now > 0

    def test_head_estimate_tracks_the_last_request(self):
        env = Environment()
        ssd = make_ssd(env)
        assert ssd.head_lbn_estimate == 0
        one_request(env, ssd, lbn=64)
        assert ssd.head_lbn_estimate == 64 + SECTORS_PER_BLOCK

    def test_two_channel_read_beats_two_sequential_single_reads(self):
        # Pages stripe lpn % channels: a two-page read uses both channels
        # in parallel, so it finishes in less than twice the one-page time.
        def timed(n_sectors):
            env = Environment()
            ssd = make_ssd(env)
            one_request(env, ssd, n_sectors=n_sectors)
            return env.now

        two_pages = timed(16)
        one_page = timed(8)
        assert two_pages < 2 * one_page

    def test_same_channel_pages_serialize(self):
        # Pages 0 and 2 both live on channel 0 (lpn % 2): their flash
        # reads cannot overlap.
        env = Environment()
        ssd = make_ssd(env)
        box = []

        def client(env):
            request = yield ssd.read(0, 24)   # pages 0,1,2
            box.append(request)

        env.run(env.process(client(env)))
        assert env.now >= 2 * TINY_SPEC.read_page_time
        assert box[0].status == "ok"

    def test_ncq_overlaps_independent_requests(self):
        def timed(concurrent):
            env = Environment()
            ssd = make_ssd(env)
            if concurrent:
                events = [ssd.read(0, 8), ssd.read(8, 8)]
                env.run(AllOf(env, events))
            else:
                one_request(env, ssd, lbn=0, n_sectors=8)
                first = env.now
                one_request(env, ssd, lbn=8, n_sectors=8)
                return env.now
            return env.now

        assert timed(concurrent=True) < timed(concurrent=False)


class TestWritePath:
    def test_cached_write_completes_before_media(self):
        env = Environment()
        ssd = make_ssd(env)
        times = {}

        def client(env):
            accepted, on_media = ssd.write_tracked(0, SECTORS_PER_BLOCK)
            yield accepted
            times["accepted"] = env.now
            yield on_media
            times["media"] = env.now

        env.run(env.process(client(env)))
        assert times["media"] > times["accepted"]
        assert ssd.stats.writes == 1
        assert ssd.stats.bytes_written == SECTORS_PER_BLOCK * 512
        assert ssd.ftl.host_pages_written == 2

    def test_flush_waits_for_destage(self):
        env = Environment()
        ssd = make_ssd(env)

        def client(env):
            yield ssd.write(0, SECTORS_PER_BLOCK)
            accepted_at = env.now
            yield ssd.flush()
            assert env.now > accepted_at

        env.run(env.process(client(env)))
        assert ssd.ftl.host_pages_written == 2

    def test_flush_with_nothing_buffered_is_immediate(self):
        env = Environment()
        ssd = make_ssd(env)
        flushed = ssd.flush()
        assert flushed.triggered

    def test_disabled_cache_programs_inline(self):
        spec = SSDSpec(total_sectors=512, pages_per_block=8, channels=2,
                       ncq_depth=2, write_cache_enabled=False)
        env = Environment()
        ssd = make_ssd(env, spec=spec)
        times = {}

        def client(env):
            accepted, on_media = ssd.write_tracked(0, SECTORS_PER_BLOCK)
            yield accepted
            times["accepted"] = env.now
            yield on_media
            times["media"] = env.now

        env.run(env.process(client(env)))
        # Write-through: acceptance IS media (programs happened inline).
        assert times["media"] == times["accepted"]
        assert env.now >= spec.program_page_time

    def test_write_larger_than_the_cache_does_not_deadlock(self):
        # 16 pages into an 8-page cache: the oversized request proceeds
        # alone into an empty cache instead of waiting forever.
        env = Environment()
        ssd = make_ssd(env)     # write_cache_pages=8
        request = one_request(env, ssd, op="write", n_sectors=128)
        assert request.status == "ok"
        assert ssd.ftl.host_pages_written == 16

    def test_cache_backpressure_preserves_all_writes(self):
        env = Environment()
        ssd = make_ssd(env)
        events = [ssd.write(16 * i, 16) for i in range(12)]

        def client(env):
            yield AllOf(env, events)
            yield ssd.flush()

        env.run(env.process(client(env)))
        assert ssd.stats.writes == 12
        assert ssd.ftl.host_pages_written == 24


class TestWriteCacheReadHits:
    def test_read_of_buffered_pages_hits_the_cache(self):
        env = Environment()
        ssd = make_ssd(env)

        def client(env):
            yield ssd.write(0, SECTORS_PER_BLOCK)
            # Destage needs a flash program (milliseconds); this read
            # arrives while the pages are still buffered.
            yield ssd.read(0, SECTORS_PER_BLOCK)

        env.run(env.process(client(env)))
        assert ssd.stats.cache_hits == 1

    def test_read_after_flush_misses(self):
        env = Environment()
        ssd = make_ssd(env)

        def client(env):
            yield ssd.write(0, SECTORS_PER_BLOCK)
            yield ssd.flush()
            yield ssd.read(0, SECTORS_PER_BLOCK)

        env.run(env.process(client(env)))
        assert ssd.stats.cache_hits == 0
        assert ssd.stats.cache_misses == 1


class TestGarbageCollectionOnDevice:
    def test_hot_overwrites_trigger_gc_and_charge_time(self):
        env = Environment()
        ssd = make_ssd(env)

        def client(env):
            yield ssd.write(0, 512)          # fill all 64 logical pages
            yield ssd.flush()
            for _round in range(6):
                yield ssd.write(0, 64)       # hot 8-page region
                yield ssd.flush()

        env.run(env.process(client(env)))
        counters = ssd.flash_counters()
        assert counters["erases"] > 0
        assert counters["write_amplification"] >= 1.0
        assert counters["flash_pages_written"] \
            == counters["host_pages_written"] + counters["relocated_pages"]

    def test_flash_counters_include_cache_stats(self):
        env = Environment()
        ssd = make_ssd(env)
        one_request(env, ssd)
        counters = ssd.flash_counters()
        assert counters["cache_misses"] == 1
        assert counters["cache_hits"] == 0


class TestSessionAccounting:
    def test_session_counters_are_scoped(self):
        env = Environment()
        ssd = make_ssd(env)
        box = []

        def client(env):
            yield ssd.read(0, SECTORS_PER_BLOCK, session_id="a")
            yield ssd.read(16, SECTORS_PER_BLOCK, session_id="b")
            yield ssd.read(32, SECTORS_PER_BLOCK, session_id="a")
            box.append(env.now)

        env.run(env.process(client(env)))
        assert ssd.session_stats["a"].reads == 2
        assert ssd.session_stats["b"].reads == 1
        assert ssd.session_stats["a"].bytes_read == 2 * SECTORS_PER_BLOCK * 512
        assert ssd.session_stats["a"].service_time > 0

    def test_release_session_drops_the_stats(self):
        env = Environment()
        ssd = make_ssd(env)
        one_request(env, ssd)   # untagged: no session entry
        ssd.session("s").reads = 3
        ssd.release_session("s")
        assert "s" not in ssd.session_stats
        ssd.release_session("never-seen")   # idempotent

    def test_queue_wait_is_accounted(self):
        env = Environment()
        spec = SSDSpec(total_sectors=512, pages_per_block=8, channels=1,
                       ncq_depth=1)
        ssd = make_ssd(env, spec=spec)
        events = [ssd.read(8 * i, 8, session_id="s") for i in range(4)]
        env.run(AllOf(env, events))
        assert ssd.stats.queue_wait_time > 0
        assert ssd.session_stats["s"].queue_wait_time > 0


class TestFaults:
    def test_fail_stop_refuses_reads(self):
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), 1, 0,
            TINY_SPEC.total_sectors)
        ssd = make_ssd(env, fault_plan=plan)
        request = one_request(env, ssd)
        assert request.status == "error"
        assert request.error == FAIL_STOP
        assert ssd.stats.faults[FAIL_STOP] == 1

    def test_fail_stop_refuses_writes_before_the_bus(self):
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), 1, 0,
            TINY_SPEC.total_sectors)
        ssd = make_ssd(env, fault_plan=plan)
        box = []

        def client(env):
            request = yield ssd.write(0, SECTORS_PER_BLOCK)
            box.append(request)

        env.run(env.process(client(env)))
        assert box[0].status == "error"
        assert ssd.stats.writes == 0            # never accepted
        assert ssd.ftl.host_pages_written == 0  # never programmed

    def test_certain_transient_fails_reads_with_time_charged(self):
        env = Environment()
        plan = build_fault_plan(FaultConfig(transient_rate=1.0), 1, 0,
                                TINY_SPEC.total_sectors)
        ssd = make_ssd(env, fault_plan=plan)
        request = one_request(env, ssd)
        assert request.status == "error"
        assert request.error == TRANSIENT
        # The device attempted the flash reads before reporting the error.
        assert env.now >= TINY_SPEC.read_page_time

    def test_fail_stop_mid_destage_counts_lost_writes(self):
        # The write is accepted (cache) before the stop time, but the
        # device dies before the destage programs it: data lost, counted.
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.5e-3), 1, 0,
            TINY_SPEC.total_sectors)
        ssd = make_ssd(env, fault_plan=plan)
        box = []

        def client(env):
            request = yield ssd.write(0, SECTORS_PER_BLOCK)
            box.append(request)
            yield ssd.flush()

        env.run(env.process(client(env)))
        assert box[0] is not None
        assert ssd.stats.faults.get("lost_destage", 0) == 1
        assert ssd.ftl.host_pages_written == 0

    def test_slow_episode_stretches_reads(self):
        def timed(plan):
            env = Environment()
            ssd = make_ssd(env, fault_plan=plan)
            one_request(env, ssd)
            return env.now

        slow = build_fault_plan(
            FaultConfig(slow_disk=0, slow_factor=8.0, slow_start=0.0,
                        slow_duration=100.0), 1, 0, TINY_SPEC.total_sectors)
        past = build_fault_plan(
            FaultConfig(slow_disk=0, slow_factor=8.0, slow_start=-2.0,
                        slow_duration=1.0), 1, 0, TINY_SPEC.total_sectors)
        assert timed(slow) > 2.0 * timed(past)

    def test_planless_timing_unchanged_by_a_disabled_plan(self):
        def timed(plan):
            env = Environment()
            ssd = make_ssd(env, fault_plan=plan)
            for lbn in (0, 64, 128):
                one_request(env, ssd, lbn=lbn)
            return env.now

        assert timed(None) == timed(
            build_fault_plan(FaultConfig(), 1, 0, TINY_SPEC.total_sectors))

    def test_same_plan_same_seed_is_deterministic(self):
        def timed():
            env = Environment()
            plan = build_fault_plan(
                FaultConfig(transient_rate=0.3), 1, 0,
                TINY_SPEC.total_sectors)
            ssd = make_ssd(env, fault_plan=plan)
            for lbn in (0, 64, 128, 192):
                one_request(env, ssd, lbn=lbn)
            return env.now, dict(ssd.stats.faults)

        assert timed() == timed()


class TestWriteTrackedContract:
    def test_media_event_fires_after_accept(self):
        env = Environment()
        ssd = make_ssd(env)
        accepted, on_media = ssd.write_tracked(0, SECTORS_PER_BLOCK)
        env.run(on_media)
        assert on_media.triggered
        assert accepted.triggered

    def test_submit_accepts_a_prebuilt_request(self):
        env = Environment()
        ssd = make_ssd(env)
        request = DiskRequest(op="read", lbn=0, n_sectors=SECTORS_PER_BLOCK,
                              tag="t", session_id="s")
        completion = ssd.submit(request)
        env.run(completion)
        assert request.status == "ok"
        assert ssd.session_stats["s"].reads == 1
