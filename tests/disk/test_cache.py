"""Tests for the drive's read-ahead cache model."""

import pytest

from repro.disk import HP97560_SPEC, ReadAheadCache


@pytest.fixture
def cache():
    return ReadAheadCache(HP97560_SPEC)


TOTAL = HP97560_SPEC.total_sectors
SECTOR = HP97560_SPEC.sector_time


class TestReadAheadCache:
    def test_starts_inactive(self, cache):
        assert not cache.active
        hit, _ready = cache.lookup(0.0, 0, 16)
        assert not hit

    def test_sequential_hit_after_readahead(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        # After enough time the next block is fully cached.
        hit, ready = cache.lookup(16 * SECTOR + 1e-6, 16, 16)
        assert hit
        assert ready <= 16 * SECTOR + 1e-6

    def test_hit_still_being_read_is_in_future(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        hit, ready = cache.lookup(1 * SECTOR, 16, 16)
        assert hit
        assert ready > 1 * SECTOR
        # Read-ahead began at sector 16 at time 0, so the last requested
        # sector (31) comes off the media after 16 sector times.
        assert ready == pytest.approx(16 * SECTOR, rel=0.01)

    def test_non_sequential_request_misses(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        hit, _ready = cache.lookup(10 * SECTOR, 100000, 16)
        assert not hit

    def test_request_beyond_readahead_target_misses(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        beyond = 16 + HP97560_SPEC.readahead_sectors + 1
        hit, _ready = cache.lookup(1.0, beyond, 16)
        assert not hit

    def test_invalidate_clears_state(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        cache.invalidate()
        assert not cache.active
        hit, _ready = cache.lookup(1.0, 20, 4)
        assert not hit

    def test_extend_after_hit_moves_target(self, cache):
        cache.start_readahead(0.0, 0, TOTAL)
        cache.extend_after_hit(1.0, 200, TOTAL)
        hit, _ready = cache.lookup(5.0, 250, 16)
        assert hit

    def test_readahead_capped_at_disk_end(self, cache):
        near_end = TOTAL - 8
        cache.start_readahead(0.0, near_end, TOTAL)
        hit, _ready = cache.lookup(1.0, near_end, 8)
        assert hit
        hit, _ready = cache.lookup(1.0, TOTAL - 4, 8)
        assert not hit

    def test_hit_rate_statistics(self, cache):
        cache.start_readahead(0.0, 16, TOTAL)
        cache.lookup(1.0, 16, 16)     # hit
        cache.lookup(1.0, 500000, 16)  # miss
        assert cache.hits == 1
        assert cache.misses >= 1
        assert 0.0 < cache.hit_rate() < 1.0

    def test_frontier_does_not_regress(self, cache):
        cache.start_readahead(0.0, 0, TOTAL)
        _start, frontier_late = cache.cached_range(10 * SECTOR)
        _start, frontier_later = cache.cached_range(20 * SECTOR)
        assert frontier_later >= frontier_late
