"""Tests for logical-block-to-physical-position mapping."""

import pytest

from repro.disk import DiskGeometry, HP97560_SPEC


@pytest.fixture
def geometry():
    return DiskGeometry(HP97560_SPEC)


class TestPositionMapping:
    def test_first_sector_is_origin(self, geometry):
        position = geometry.position_of(0)
        assert (position.cylinder, position.head, position.sector) == (0, 0, 0)

    def test_track_boundary(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        position = geometry.position_of(spt)
        assert (position.cylinder, position.head, position.sector) == (0, 1, 0)

    def test_cylinder_boundary(self, geometry):
        per_cylinder = HP97560_SPEC.sectors_per_track * HP97560_SPEC.heads
        position = geometry.position_of(per_cylinder)
        assert (position.cylinder, position.head, position.sector) == (1, 0, 0)

    def test_last_sector_is_last_position(self, geometry):
        last = geometry.total_sectors - 1
        position = geometry.position_of(last)
        assert position.cylinder == HP97560_SPEC.cylinders - 1
        assert position.head == HP97560_SPEC.heads - 1
        assert position.sector == HP97560_SPEC.sectors_per_track - 1

    def test_out_of_range_rejected(self, geometry):
        with pytest.raises(ValueError):
            geometry.position_of(-1)
        with pytest.raises(ValueError):
            geometry.position_of(geometry.total_sectors)

    def test_cylinder_of_matches_position_of(self, geometry):
        for lbn in (0, 999, 123456, geometry.total_sectors - 1):
            assert geometry.cylinder_of(lbn) == geometry.position_of(lbn).cylinder


class TestTransferGeometry:
    def test_sectors_to_track_end(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        assert geometry.sectors_to_track_end(0) == spt
        assert geometry.sectors_to_track_end(spt - 1) == 1

    def test_no_boundary_crossed_within_track(self, geometry):
        assert geometry.track_boundaries_crossed(0, 16) == 0

    def test_boundary_crossed_at_track_end(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        assert geometry.track_boundaries_crossed(spt - 8, 16) == 1

    def test_many_boundaries_for_long_transfer(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        assert geometry.track_boundaries_crossed(0, spt * 3) == 2

    def test_zero_length_transfer(self, geometry):
        assert geometry.track_boundaries_crossed(10, 0) == 0


class TestAngularPosition:
    def test_first_track_has_no_skew(self, geometry):
        assert geometry.angular_sector_of(5) == 5

    def test_second_track_is_skewed(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        skew = HP97560_SPEC.track_skew_sectors
        assert geometry.angular_sector_of(spt) == skew % spt

    def test_angular_position_within_range(self, geometry):
        spt = HP97560_SPEC.sectors_per_track
        for lbn in range(0, 10000, 371):
            assert 0 <= geometry.angular_sector_of(lbn) < spt
