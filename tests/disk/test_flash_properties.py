"""Property tests for the FTL invariants (Hypothesis).

The flash translation layer is pure bookkeeping, so Hypothesis can drive
it through arbitrary write/trim interleavings and check the pinned
invariants directly:

* every logical page maps to at most one live physical page (and the map
  and the per-block tables stay inverse bijections) — ``check_consistency``;
* GC conserves live data byte-for-byte (payloads survive relocation);
* write amplification is >= 1 always, and exactly 1 under pure-sequential
  fill.

Deadlines are explicit per test (the repo rule for the device axis: no
blanket ``deadline=None`` suppression — a runaway FTL op should fail,
slow machines get headroom via a generous-but-finite bound).
"""

from datetime import timedelta

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.disk.flash import FlashTranslationLayer  # noqa: E402

LOGICAL = 24
PAGES_PER_BLOCK = 4
BLOCKS = 8

#: one FTL op is microseconds of pure python; whole examples finish well
#: under this even on a loaded CI box, while a quadratic regression trips it
EXAMPLE_DEADLINE = timedelta(milliseconds=400)

lpns = st.integers(min_value=0, max_value=LOGICAL - 1)
#: an op is ("write", lpn) or ("trim", lpn); writes outnumber trims so GC
#: actually has live data to move around
ops = st.lists(
    st.tuples(st.sampled_from(["write", "write", "write", "trim"]), lpns),
    max_size=400)
policies = st.sampled_from(["greedy", "cost-benefit"])


def apply(ftl, op_list, model=None):
    for op, lpn in op_list:
        if op == "write":
            payload = (lpn, len(op_list)) if model is None \
                else (lpn, ftl.host_pages_written)
            ftl.write(lpn, payload=payload)
            if model is not None:
                model[lpn] = payload
        else:
            ftl.trim(lpn)
            if model is not None:
                model.pop(lpn, None)


class TestMappingInvariant:
    @settings(max_examples=100, deadline=EXAMPLE_DEADLINE)
    @given(op_list=ops, policy=policies)
    def test_at_most_one_live_physical_page_per_lpn(self, op_list, policy):
        ftl = FlashTranslationLayer(LOGICAL, PAGES_PER_BLOCK, BLOCKS,
                                    gc_policy=policy)
        apply(ftl, op_list)
        ftl.check_consistency()     # bijection + valid counts + free blocks

    @settings(max_examples=60, deadline=EXAMPLE_DEADLINE)
    @given(op_list=ops)
    def test_live_pages_equal_distinct_written_minus_trimmed(self, op_list):
        ftl = FlashTranslationLayer(LOGICAL, PAGES_PER_BLOCK, BLOCKS)
        model = {}
        apply(ftl, op_list, model=model)
        assert ftl.live_pages == len(model)
        assert {lpn for lpn in range(LOGICAL) if ftl.read(lpn) is not None} \
            == set(model)


class TestGcConservation:
    @settings(max_examples=100, deadline=EXAMPLE_DEADLINE)
    @given(op_list=ops, policy=policies)
    def test_gc_conserves_live_data_byte_for_byte(self, op_list, policy):
        ftl = FlashTranslationLayer(LOGICAL, PAGES_PER_BLOCK, BLOCKS,
                                    gc_policy=policy)
        model = {}
        apply(ftl, op_list, model=model)
        for lpn, payload in model.items():
            assert ftl.read_payload(lpn) == payload
        for lpn in range(LOGICAL):
            if lpn not in model:
                assert ftl.read_payload(lpn) is None


class TestWriteAmplificationBounds:
    @settings(max_examples=100, deadline=EXAMPLE_DEADLINE)
    @given(op_list=ops, policy=policies)
    def test_wa_at_least_one_under_any_interleaving(self, op_list, policy):
        ftl = FlashTranslationLayer(LOGICAL, PAGES_PER_BLOCK, BLOCKS,
                                    gc_policy=policy)
        apply(ftl, op_list)
        assert ftl.write_amplification >= 1.0
        assert ftl.flash_pages_written >= ftl.host_pages_written

    @settings(max_examples=40, deadline=EXAMPLE_DEADLINE)
    @given(pages_per_block=st.integers(min_value=2, max_value=16),
           spare_blocks=st.integers(min_value=1, max_value=4),
           logical_blocks=st.integers(min_value=2, max_value=12),
           policy=policies)
    def test_sequential_fill_wa_exactly_one_for_any_shape(
            self, pages_per_block, spare_blocks, logical_blocks, policy):
        # One pass over the whole logical space never triggers GC: the
        # overprovisioned (spare) blocks cover the active-block churn.
        logical = logical_blocks * pages_per_block
        ftl = FlashTranslationLayer(
            logical, pages_per_block, logical_blocks + spare_blocks,
            gc_policy=policy)
        for lpn in range(logical):
            ftl.write(lpn)
        assert ftl.write_amplification == 1.0
        assert ftl.erases == 0
        assert ftl.relocated_pages == 0
        ftl.check_consistency()


class TestDeterminism:
    @settings(max_examples=40, deadline=EXAMPLE_DEADLINE)
    @given(op_list=ops, policy=policies)
    def test_identical_op_streams_produce_identical_state(
            self, op_list, policy):
        # The device charges time from FTL reports, so bit-identical
        # simulations require bit-identical GC decisions.
        def build():
            ftl = FlashTranslationLayer(LOGICAL, PAGES_PER_BLOCK, BLOCKS,
                                        gc_policy=policy)
            apply(ftl, op_list)
            return ftl

        first, second = build(), build()
        assert first.counters() == second.counters()
        assert first._map == second._map
        assert first.erase_counts == second.erase_counts
