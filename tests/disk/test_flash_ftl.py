"""Unit tests for the flash translation layer and SSD spec (repro.disk.flash)."""

import pytest

from repro.disk import HP97560_SPEC
from repro.disk.flash import FlashTranslationLayer, SSDSpec, matched_ssd_spec

MEGABYTE = 2 ** 20


def small_ftl(logical=24, pages_per_block=4, blocks=8, **kwargs):
    """A tiny FTL: 24 logical pages over 8 x 4-page blocks (33% headroom)."""
    return FlashTranslationLayer(logical, pages_per_block, blocks, **kwargs)


class TestSpecDerivedQuantities:
    def test_sectors_per_page(self):
        assert SSDSpec().sectors_per_page == 4096 // 512

    def test_logical_pages_round_up(self):
        spec = SSDSpec(total_sectors=10, sector_size=512, page_size=4096)
        assert spec.logical_pages == 2  # 10 sectors -> 1.25 pages -> 2

    def test_overprovision_adds_physical_blocks(self):
        spec = SSDSpec()
        assert spec.physical_pages > spec.logical_pages
        assert spec.physical_pages >= spec.logical_pages * 1.07 - \
            spec.pages_per_block
        assert spec.physical_pages == spec.physical_blocks \
            * spec.pages_per_block

    def test_capacity_matches_the_hp97560_address_space(self):
        spec = SSDSpec()
        assert spec.total_sectors == HP97560_SPEC.total_sectors
        assert spec.capacity_bytes == HP97560_SPEC.total_sectors * 512

    def test_sequential_rates_scale_with_channels(self):
        narrow = SSDSpec(channels=1)
        wide = SSDSpec(channels=8)
        assert wide.sequential_read_rate == 8 * narrow.sequential_read_rate
        assert wide.sequential_write_rate == 8 * narrow.sequential_write_rate


class TestMatchedSpec:
    def test_sequential_bandwidth_equals_the_disk_in_both_directions(self):
        spec = matched_ssd_spec(HP97560_SPEC)
        rate = HP97560_SPEC.sustained_transfer_rate
        assert spec.sequential_read_rate == pytest.approx(rate)
        assert spec.sequential_write_rate == pytest.approx(rate)

    def test_address_space_carries_over(self):
        spec = matched_ssd_spec(HP97560_SPEC)
        assert spec.total_sectors == HP97560_SPEC.total_sectors
        assert spec.sector_size == HP97560_SPEC.sector_size

    def test_channel_override_stays_matched(self):
        # More channels -> each page op slower, aggregate rate unchanged.
        spec = matched_ssd_spec(HP97560_SPEC, channels=8)
        assert spec.channels == 8
        assert spec.sequential_read_rate == pytest.approx(
            HP97560_SPEC.sustained_transfer_rate)

    def test_explicit_page_time_override_wins(self):
        spec = matched_ssd_spec(HP97560_SPEC, read_page_time=1e-3)
        assert spec.read_page_time == 1e-3


class TestFtlValidation:
    def test_rejects_no_overprovision(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(32, 4, 8)   # 8*4 == 32: zero headroom

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            small_ftl(gc_policy="oracle")

    def test_rejects_low_water_below_two(self):
        # GC relocation allocates mid-collection; one spare block of slack
        # below the trigger is mandatory.
        with pytest.raises(ValueError):
            small_ftl(gc_low_water=1, gc_high_water=3)

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            small_ftl(gc_low_water=3, gc_high_water=3)

    def test_rejects_out_of_range_lpn(self):
        ftl = small_ftl()
        with pytest.raises(ValueError):
            ftl.write(24)
        with pytest.raises(ValueError):
            ftl.write(-1)


class TestMappingBasics:
    def test_write_maps_and_read_returns_the_page(self):
        ftl = small_ftl()
        ppn, report = ftl.write(5)
        assert ftl.read(5) == ppn
        assert report.relocated == 0 and report.erases == 0

    def test_unmapped_page_reads_none(self):
        assert small_ftl().read(3) is None

    def test_overwrite_moves_the_mapping(self):
        ftl = small_ftl()
        first, _ = ftl.write(5)
        second, _ = ftl.write(5)
        assert second != first
        assert ftl.read(5) == second
        assert ftl.live_pages == 1

    def test_pages_allocate_sequentially_within_a_block(self):
        ftl = small_ftl()
        ppns = [ftl.write(lpn)[0] for lpn in range(4)]
        assert ppns == [0, 1, 2, 3]

    def test_payload_rides_the_mapping(self):
        ftl = small_ftl()
        ftl.write(2, payload=b"two")
        assert ftl.read_payload(2) == b"two"
        ftl.write(2, payload=b"new")
        assert ftl.read_payload(2) == b"new"
        assert ftl.read_payload(3) is None


class TestTrim:
    def test_trim_unmaps_and_counts(self):
        ftl = small_ftl()
        ftl.write(7)
        ftl.trim(7)
        assert ftl.read(7) is None
        assert ftl.live_pages == 0
        assert ftl.trims == 1

    def test_trim_of_unmapped_page_is_a_noop(self):
        ftl = small_ftl()
        ftl.trim(7)
        assert ftl.trims == 0

    def test_trimmed_space_is_reclaimable(self):
        # Fill, trim everything, then refill: GC must find wholly-dead
        # blocks and the device never runs out.
        ftl = small_ftl()
        for round_ in range(4):
            for lpn in range(24):
                ftl.write(lpn)
            for lpn in range(24):
                ftl.trim(lpn)
        ftl.check_consistency()
        assert ftl.live_pages == 0


class TestWriteAmplification:
    def test_sequential_fill_has_wa_exactly_one(self):
        ftl = small_ftl()
        for lpn in range(24):
            ftl.write(lpn)
        assert ftl.write_amplification == 1.0
        assert ftl.erases == 0
        assert ftl.relocated_pages == 0

    def test_wa_is_one_before_any_write(self):
        assert small_ftl().write_amplification == 1.0

    def test_random_overwrites_force_gc_and_wa_above_one(self):
        ftl = small_ftl()
        for lpn in range(24):
            ftl.write(lpn)
        # Hammer a hot subset: victims always carry live pages, so GC
        # relocates and write amplification rises above 1.
        for step in range(200):
            ftl.write(step % 8)
        assert ftl.erases > 0
        assert ftl.write_amplification > 1.0
        ftl.check_consistency()

    def test_flash_pages_written_decomposes(self):
        ftl = small_ftl()
        for step in range(120):
            ftl.write(step % 10)
        assert ftl.flash_pages_written \
            == ftl.host_pages_written + ftl.relocated_pages
        assert ftl.host_pages_written == 120

    def test_counters_snapshot_is_complete(self):
        ftl = small_ftl()
        ftl.write(0)
        counters = ftl.counters()
        assert counters["host_pages_written"] == 1
        assert counters["live_pages"] == 1
        assert set(counters) == {
            "host_pages_written", "flash_pages_written", "relocated_pages",
            "erases", "trims", "live_pages", "free_blocks",
            "write_amplification"}


class TestVictimSelection:
    def _sealed_blocks_with_valid(self, ftl):
        return {block: ftl._valid[block] for block in ftl._sealed}

    def test_greedy_picks_the_emptiest_sealed_block(self):
        # 12 logical pages, 4 pages/block, 5 blocks, watermarks 2/3: fill
        # three blocks, then dirty block 0 completely and block 1 partially.
        ftl = FlashTranslationLayer(12, 4, 5, gc_policy="greedy",
                                    gc_low_water=2, gc_high_water=3)
        for lpn in range(12):
            ftl.write(lpn)          # blocks 0,1,2 sealed; 3,4 free
        ftl.write(0)                # invalidates one page of block 0 ...
        ftl.write(1)                # ... opens block 3, free == 1 <= low
        # The trigger collected the emptiest sealed block (block 0, two
        # dead pages) first — its survivors moved, the block was erased.
        assert ftl.erases >= 1
        assert ftl.erase_counts[0] == 1
        ftl.check_consistency()

    def test_full_blocks_are_never_victims(self):
        ftl = FlashTranslationLayer(12, 4, 5, gc_policy="greedy",
                                    gc_low_water=2, gc_high_water=3)
        for lpn in range(12):
            ftl.write(lpn)
        before = ftl.erase_counts[:]
        ftl.write(0)
        ftl.write(0)
        # Blocks 1 and 2 are still fully valid; whatever GC ran, it only
        # ever erased blocks with dead pages (0 and later allocations).
        assert ftl.erase_counts[1] == before[1] == 0
        assert ftl.erase_counts[2] == before[2] == 0

    def test_cost_benefit_prefers_the_old_cold_block(self):
        # Two candidate victims with equal utilisation: cost-benefit picks
        # the one sealed earlier (greater age); greedy would tie-break by id
        # the same way here, so distinguish via seal order instead — make
        # the *younger* block slightly emptier, which flips greedy only.
        def build(policy):
            ftl = FlashTranslationLayer(12, 4, 6, gc_policy=policy,
                                        gc_low_water=2, gc_high_water=3)
            for lpn in range(12):
                ftl.write(lpn)      # seals blocks 0,1,2 in that order
            ftl.write(4)            # block 1: 3 valid (young-ish, emptier
            ftl.write(5)            # after second hit: 2 valid)
            ftl.write(0)            # block 0: 3 valid, oldest seal
            return ftl

        greedy = build("greedy")
        cost = build("cost-benefit")
        # Both triggered GC by now; greedy reclaimed the emptiest (block 1,
        # 2 valid), cost-benefit weighed age into the score.
        assert greedy.erase_counts[1] >= 1
        assert cost.erases >= 1
        greedy.check_consistency()
        cost.check_consistency()

    def test_gc_keeps_the_device_from_exhausting(self):
        # Steady-state round-robin overwrites: free blocks may dip to one
        # mid-relocation, but the pool never empties and writes never fail.
        ftl = small_ftl(gc_low_water=2, gc_high_water=4)
        for step in range(400):
            ftl.write(step % 24)
        assert ftl.free_blocks >= 1
        assert ftl.erases > 0
        ftl.check_consistency()

    def test_erase_counts_accumulate_wear(self):
        ftl = small_ftl()
        for step in range(400):
            ftl.write(step % 6)
        assert sum(ftl.erase_counts) == ftl.erases
        assert ftl.erases > 1


class TestConsistency:
    def test_fresh_ftl_is_consistent(self):
        small_ftl().check_consistency()

    def test_consistency_detects_tampering(self):
        ftl = small_ftl()
        ftl.write(0)
        ftl._map[0] = 99    # corrupt the map behind the block tables
        with pytest.raises(AssertionError):
            ftl.check_consistency()

    def test_consistency_detects_double_mapping(self):
        ftl = small_ftl()
        ftl.write(0)
        ftl.write(1)
        block = ftl._block_live[0]
        block[1] = 0        # physical page 1 claims lpn 0 too
        with pytest.raises(AssertionError):
            ftl.check_consistency()
