"""Tests for disk request-queue scheduling policies."""

import pytest

from repro.disk import CScanScheduler, FcfsScheduler, SstfScheduler, make_scheduler
from repro.disk.drive import DiskRequest


def _queue(*lbns):
    return [DiskRequest(op="read", lbn=lbn, n_sectors=16) for lbn in lbns]


class TestFcfs:
    def test_always_picks_head_of_queue(self):
        scheduler = FcfsScheduler()
        assert scheduler.select(_queue(500, 100, 900), current_lbn=0) == 0

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            FcfsScheduler().select([], 0)


class TestSstf:
    def test_picks_nearest(self):
        scheduler = SstfScheduler()
        queue = _queue(1000, 90, 5000)
        assert scheduler.select(queue, current_lbn=100) == 1

    def test_picks_nearest_in_either_direction(self):
        scheduler = SstfScheduler()
        queue = _queue(200, 350)
        assert scheduler.select(queue, current_lbn=300) == 1

    def test_single_entry(self):
        assert SstfScheduler().select(_queue(123), current_lbn=0) == 0


class TestCScan:
    def test_prefers_requests_ahead_of_head(self):
        scheduler = CScanScheduler()
        queue = _queue(50, 500, 200)
        assert scheduler.select(queue, current_lbn=100) == 2

    def test_wraps_around_when_nothing_ahead(self):
        scheduler = CScanScheduler()
        queue = _queue(50, 20, 80)
        assert scheduler.select(queue, current_lbn=1000) == 1

    def test_serves_in_ascending_order(self):
        scheduler = CScanScheduler()
        queue = _queue(700, 300, 500)
        order = []
        position = 0
        while queue:
            index = scheduler.select(queue, position)
            request = queue.pop(index)
            position = request.lbn
            order.append(request.lbn)
        assert order == [300, 500, 700]


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_scheduler("fcfs"), FcfsScheduler)
        assert isinstance(make_scheduler("sstf"), SstfScheduler)
        assert isinstance(make_scheduler("cscan"), CScanScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("elevator-of-doom")
