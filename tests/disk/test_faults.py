"""Tests for the deterministic disk fault models (repro.disk.faults)."""

import pytest

from repro.disk import Disk, HP97560_SPEC
from repro.disk.drive import BusPort, DiskRequest
from repro.disk.faults import (
    BAD_SECTOR,
    FAIL_STOP,
    PERMANENT_ERRORS,
    TRANSIENT,
    FaultConfig,
    FaultPlan,
    FaultPolicy,
    build_fault_plan,
)
from repro.sim import Environment, Resource

SECTORS_PER_BLOCK = 16
TOTAL_SECTORS = HP97560_SPEC.total_sectors


def make_disk(env, **kwargs):
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    return Disk(env, HP97560_SPEC, port, **kwargs)


def one_request(env, disk, lbn=0, op="read"):
    """Issue one request and return the completed DiskRequest."""
    box = []

    def client(env):
        if op == "read":
            request = yield disk.read(lbn, SECTORS_PER_BLOCK)
        else:
            request = yield disk.write(lbn, SECTORS_PER_BLOCK)
            yield disk.flush()
        box.append(request)

    env.run(env.process(client(env)))
    return box[0]


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        assert not FaultConfig().enabled

    def test_each_knob_enables(self):
        assert FaultConfig(transient_rate=0.01).enabled
        assert FaultConfig(bad_range_count=1).enabled
        assert FaultConfig(slow_disk=0, slow_factor=4.0).enabled
        assert FaultConfig(fail_stop_disk=0).enabled

    def test_slow_factor_one_does_not_enable(self):
        assert not FaultConfig(slow_disk=0, slow_factor=1.0).enabled


class TestBuildFaultPlan:
    def test_disabled_config_builds_no_plan(self):
        assert build_fault_plan(None, 1, 0, TOTAL_SECTORS) is None
        assert build_fault_plan(FaultConfig(), 1, 0, TOTAL_SECTORS) is None

    def test_untargeted_drive_gets_no_plan(self):
        """Fail-stop on drive 3 must leave drive 0 planless (bit-identity)."""
        config = FaultConfig(fail_stop_disk=3, fail_stop_time=1.0)
        assert build_fault_plan(config, 1, 0, TOTAL_SECTORS) is None
        assert build_fault_plan(config, 1, 3, TOTAL_SECTORS) is not None

    def test_transient_rate_targets_every_drive(self):
        config = FaultConfig(transient_rate=0.01)
        for disk_index in range(4):
            assert build_fault_plan(config, 1, disk_index, TOTAL_SECTORS) \
                is not None


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        config = FaultConfig(transient_rate=0.3, bad_range_count=2,
                             fail_stop_disk=0, fail_stop_time=2.0)
        plan_a = FaultPlan(config, seed=7, disk_index=0,
                           total_sectors=TOTAL_SECTORS)
        plan_b = FaultPlan(config, seed=7, disk_index=0,
                           total_sectors=TOTAL_SECTORS)
        assert plan_a.describe() == plan_b.describe()
        request = DiskRequest(op="read", lbn=10 ** 6, n_sectors=16)
        draws_a = [plan_a.media_error(request) for _ in range(64)]
        draws_b = [plan_b.media_error(request) for _ in range(64)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        config = FaultConfig(bad_range_count=4)
        plan_a = FaultPlan(config, seed=1, disk_index=0,
                           total_sectors=TOTAL_SECTORS)
        plan_b = FaultPlan(config, seed=2, disk_index=0,
                           total_sectors=TOTAL_SECTORS)
        assert plan_a.bad_ranges != plan_b.bad_ranges

    def test_different_drives_draw_different_ranges(self):
        config = FaultConfig(bad_range_count=4)
        plan_a = FaultPlan(config, seed=1, disk_index=0,
                           total_sectors=TOTAL_SECTORS)
        plan_b = FaultPlan(config, seed=1, disk_index=1,
                           total_sectors=TOTAL_SECTORS)
        assert plan_a.bad_ranges != plan_b.bad_ranges

    def test_bad_ranges_sorted_and_in_bounds(self):
        config = FaultConfig(bad_range_count=8, bad_range_sectors=64)
        plan = FaultPlan(config, seed=3, disk_index=0,
                         total_sectors=TOTAL_SECTORS)
        assert list(plan.bad_ranges) == sorted(plan.bad_ranges)
        for lo, hi in plan.bad_ranges:
            assert 0 <= lo < hi <= TOTAL_SECTORS

    def test_describe_is_json_friendly(self):
        import json

        config = FaultConfig(transient_rate=0.01, bad_range_count=1,
                             slow_disk=0, slow_factor=4.0, slow_duration=1.0,
                             fail_stop_disk=0, fail_stop_time=2.0)
        plan = FaultPlan(config, seed=5, disk_index=0,
                         total_sectors=TOTAL_SECTORS)
        round_tripped = json.loads(json.dumps(plan.describe()))
        assert round_tripped["disk"] == 0
        assert round_tripped["fail_stop_time"] == 2.0


class TestMediaErrors:
    def test_certain_transient_fails_every_read(self):
        env = Environment()
        plan = build_fault_plan(FaultConfig(transient_rate=1.0), 1, 0,
                                TOTAL_SECTORS)
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk)
        assert request.status == "error"
        assert request.error == TRANSIENT
        assert disk.stats.faults[TRANSIENT] >= 1

    def test_zero_rate_never_fails(self):
        env = Environment()
        disk = make_disk(env)
        request = one_request(env, disk)
        assert request.status == "ok"
        assert request.error is None

    def test_bad_range_dominates_transient(self):
        config = FaultConfig(transient_rate=1.0, bad_range_count=1)
        plan = FaultPlan(config, seed=1, disk_index=0,
                         total_sectors=TOTAL_SECTORS)
        lo, _hi = plan.bad_ranges[0]
        request = DiskRequest(op="read", lbn=lo, n_sectors=16)
        assert plan.media_error(request) == BAD_SECTOR

    def test_read_off_the_bad_range_succeeds(self):
        env = Environment()
        plan = build_fault_plan(FaultConfig(bad_range_count=1), 1, 0,
                                TOTAL_SECTORS)
        lo, hi = plan.bad_ranges[0]
        clear_lbn = 0 if hi + SECTORS_PER_BLOCK < lo or lo > SECTORS_PER_BLOCK \
            else hi + 1
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk, lbn=clear_lbn)
        assert request.status == "ok"

    def test_bad_range_read_fails_permanently(self):
        env = Environment()
        plan = build_fault_plan(FaultConfig(bad_range_count=1), 1, 0,
                                TOTAL_SECTORS)
        lo, _hi = plan.bad_ranges[0]
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk, lbn=lo)
        assert request.status == "error"
        assert request.error == BAD_SECTOR
        assert BAD_SECTOR in PERMANENT_ERRORS


class TestFailStop:
    def test_requests_fail_after_stop_time(self):
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), 1, 0,
            TOTAL_SECTORS)
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk)
        assert request.status == "error"
        assert request.error == FAIL_STOP

    def test_requests_succeed_before_stop_time(self):
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=100.0), 1, 0,
            TOTAL_SECTORS)
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk)
        assert request.status == "ok"

    def test_failed_write_is_refused_quickly(self):
        """A dead drive refuses writes before the data crosses the bus."""
        env = Environment()
        plan = build_fault_plan(
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), 1, 0,
            TOTAL_SECTORS)
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk, op="write")
        assert request.status == "error"
        assert request.error == FAIL_STOP


class TestFailSlow:
    def test_reads_inside_episode_are_slower(self):
        def timed_read(plan):
            env = Environment()
            disk = make_disk(env, fault_plan=plan)
            one_request(env, disk, lbn=512 * SECTORS_PER_BLOCK)
            return env.now

        slow_plan = build_fault_plan(
            FaultConfig(slow_disk=0, slow_factor=8.0, slow_start=0.0,
                        slow_duration=100.0), 1, 0, TOTAL_SECTORS)
        # Same drive with the episode already over: nominal timing.
        past_plan = build_fault_plan(
            FaultConfig(slow_disk=0, slow_factor=8.0, slow_start=-2.0,
                        slow_duration=1.0), 1, 0, TOTAL_SECTORS)
        assert timed_read(slow_plan) > 2.0 * timed_read(past_plan)

    def test_multiplier_outside_window_is_one(self):
        plan = build_fault_plan(
            FaultConfig(slow_disk=0, slow_factor=4.0, slow_start=1.0,
                        slow_duration=1.0), 1, 0, TOTAL_SECTORS)
        assert plan.slow_multiplier(0.5) == 1.0
        assert plan.slow_multiplier(1.5) == 4.0
        assert plan.slow_multiplier(2.5) == 1.0


class TestFaultPolicy:
    def test_valid_strategies(self):
        for strategy in ("retry", "degrade", "abort"):
            assert FaultPolicy(on_fault=strategy).on_fault == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(on_fault="panic")

    def test_nonpositive_attempts_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)


class TestPlanDisablesFusion:
    def test_planless_drive_timing_unchanged_by_module(self):
        """A drive without a plan is bit-identical to one never offered one."""
        def timed(plan):
            env = Environment()
            disk = make_disk(env, fault_plan=plan)
            for lbn in (0, 64, 128):
                one_request(env, disk, lbn=lbn)
            return env.now

        assert timed(None) == timed(
            build_fault_plan(FaultConfig(), 1, 0, TOTAL_SECTORS))

    def test_healthy_drive_with_plan_still_delivers(self):
        """A plan that never fires (tiny rate, lucky seed) changes nothing
        about delivery: the request completes ok via the unfused path."""
        env = Environment()
        plan = build_fault_plan(FaultConfig(transient_rate=1e-12), 1, 0,
                                TOTAL_SECTORS)
        disk = make_disk(env, fault_plan=plan)
        request = one_request(env, disk)
        assert request.status == "ok"
