"""Tests for the simulated drive (service loop, cache, write buffer, bus)."""

import numpy as np
import pytest

from repro.disk import Disk, HP97560_SPEC
from repro.disk.drive import BusPort, DiskRequest
from repro.sim import Environment, Resource

MEGABYTE = 2 ** 20
SECTORS_PER_BLOCK = 16
BLOCK = SECTORS_PER_BLOCK * 512


def make_disk(env, **kwargs):
    bus = Resource(env, capacity=1)
    port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
    return Disk(env, HP97560_SPEC, port, **kwargs)


def run_client(env, disk, lbns, op="read"):
    def client(env):
        for lbn in lbns:
            if op == "read":
                yield disk.read(lbn, SECTORS_PER_BLOCK)
            else:
                yield disk.write(lbn, SECTORS_PER_BLOCK)
        if op == "write":
            yield disk.flush()

    proc = env.process(client(env))
    env.run(proc)
    return env.now


class TestValidation:
    def test_out_of_range_request_rejected(self):
        env = Environment()
        disk = make_disk(env)
        with pytest.raises(ValueError):
            disk.read(disk.geometry.total_sectors, 16)

    def test_zero_sector_request_rejected(self):
        env = Environment()
        disk = make_disk(env)
        with pytest.raises(ValueError):
            disk.read(0, 0)

    def test_request_byte_size(self):
        request = DiskRequest(op="read", lbn=0, n_sectors=16)
        assert request.n_bytes == 8192


class TestReadTiming:
    def test_sequential_reads_approach_media_rate(self):
        env = Environment()
        disk = make_disk(env)
        n_blocks = 128
        elapsed = run_client(env, disk, [i * SECTORS_PER_BLOCK for i in range(n_blocks)])
        throughput = n_blocks * BLOCK / elapsed
        assert throughput > 0.85 * HP97560_SPEC.media_transfer_rate

    def test_random_reads_much_slower_than_sequential(self):
        rng = np.random.default_rng(1)
        blocks = rng.choice(50000, size=64, replace=False)

        env = Environment()
        elapsed_random = run_client(env, make_disk(env),
                                    [int(b) * SECTORS_PER_BLOCK for b in blocks])
        env = Environment()
        elapsed_sequential = run_client(
            env, make_disk(env),
            [i * SECTORS_PER_BLOCK for i in range(64)])
        assert elapsed_random > 3 * elapsed_sequential

    def test_sorted_random_faster_than_unsorted(self):
        rng = np.random.default_rng(2)
        blocks = [int(b) for b in rng.choice(80000, size=64, replace=False)]

        env = Environment()
        unsorted_time = run_client(env, make_disk(env),
                                   [b * SECTORS_PER_BLOCK for b in blocks])
        env = Environment()
        sorted_time = run_client(env, make_disk(env),
                                 [b * SECTORS_PER_BLOCK for b in sorted(blocks)])
        assert sorted_time < unsorted_time

    def test_cache_hits_recorded_for_sequential_run(self):
        env = Environment()
        disk = make_disk(env)
        run_client(env, disk, [i * SECTORS_PER_BLOCK for i in range(32)])
        assert disk.stats.cache_hits > 0
        assert disk.stats.reads == 32
        assert disk.stats.bytes_read == 32 * BLOCK

    def test_single_read_includes_positioning(self):
        env = Environment()
        disk = make_disk(env, initial_angle_fraction=0.5)
        elapsed = run_client(env, disk, [123 * SECTORS_PER_BLOCK])
        # Must at least pay the media transfer plus the bus transfer.
        minimum = SECTORS_PER_BLOCK * HP97560_SPEC.sector_time + BLOCK / 10e6
        assert elapsed > minimum


class TestWriteTiming:
    def test_sequential_writes_approach_media_rate(self):
        env = Environment()
        disk = make_disk(env)
        n_blocks = 128
        elapsed = run_client(env, disk,
                             [i * SECTORS_PER_BLOCK for i in range(n_blocks)], op="write")
        throughput = n_blocks * BLOCK / elapsed
        assert throughput > 0.75 * HP97560_SPEC.media_transfer_rate

    def test_flush_waits_for_destage(self):
        env = Environment()
        disk = make_disk(env)
        completions = []

        def client(env):
            yield disk.write(0, SECTORS_PER_BLOCK)
            completions.append(("write-acked", env.now))
            yield disk.flush()
            completions.append(("flushed", env.now))

        env.run(env.process(client(env)))
        assert completions[0][0] == "write-acked"
        assert completions[1][1] >= completions[0][1]
        assert disk.stats.writes == 1

    def test_flush_with_no_writes_is_immediate(self):
        env = Environment()
        disk = make_disk(env)

        def client(env):
            yield disk.flush()
            return env.now

        assert env.run(env.process(client(env))) == 0.0

    def test_write_without_write_cache_is_synchronous(self):
        from dataclasses import replace
        env = Environment()
        spec = replace(HP97560_SPEC, write_cache_enabled=False)
        bus = Resource(env, capacity=1)
        disk = Disk(env, spec, BusPort(bus, 10e6), name="sync-disk")

        def client(env):
            yield disk.write(64, SECTORS_PER_BLOCK)
            return env.now

        elapsed = env.run(env.process(client(env)))
        # Synchronous write must include the media transfer itself.
        assert elapsed >= SECTORS_PER_BLOCK * spec.sector_time


class TestBusContention:
    def test_two_disks_on_one_bus_share_bandwidth(self):
        # With many disks on one slow bus, the bus becomes the bottleneck.
        env = Environment()
        bus = Resource(env, capacity=1)
        slow_port = BusPort(bus, bandwidth=2.5e6, overhead=0.0)
        disks = [Disk(env, HP97560_SPEC, BusPort(bus, 2.5e6), name=f"d{i}")
                 for i in range(2)]
        del slow_port
        n_blocks = 32

        def client(env, disk):
            for i in range(n_blocks):
                yield disk.read(i * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)

        procs = [env.process(client(env, disk)) for disk in disks]
        env.run(env.all_of(procs))
        total_bytes = 2 * n_blocks * BLOCK
        throughput = total_bytes / env.now
        # Two disks could stream ~4.6 MB/s, but the 2.5 MB/s bus caps them.
        assert throughput <= 2.6e6

    def test_queue_depth_visible(self):
        env = Environment()
        disk = make_disk(env)
        disk.read(0, SECTORS_PER_BLOCK)
        disk.read(16, SECTORS_PER_BLOCK)
        assert disk.queue_depth >= 1
        env.run()
        assert disk.queue_depth == 0


class TestPerSessionAttribution:
    def test_tagged_requests_split_stats_by_session(self):
        env = Environment()
        disk = make_disk(env)

        def client(env):
            yield disk.read(0, SECTORS_PER_BLOCK, session_id="a")
            yield disk.read(1000, SECTORS_PER_BLOCK, session_id="a")
            yield disk.read(2000, SECTORS_PER_BLOCK, session_id="b")
            yield disk.write(3000, SECTORS_PER_BLOCK, session_id="b")
            yield disk.flush()

        env.run(env.process(client(env)))
        a, b = disk.session_stats["a"], disk.session_stats["b"]
        assert (a.reads, a.writes) == (2, 0)
        assert (b.reads, b.writes) == (1, 1)
        assert a.bytes_read == 2 * BLOCK
        assert b.bytes_written == BLOCK
        # Per-session service time partitions the drive's request-service
        # busy time (destage of buffered writes is background, unattributed).
        assert a.service_time > 0 and b.service_time > 0
        assert a.service_time + b.service_time <= disk.stats.busy_time + 1e-12
        # Whole-drive stats are unchanged by tagging.
        assert disk.stats.reads == 3 and disk.stats.writes == 1

    def test_untagged_requests_leave_no_session_entries(self):
        env = Environment()
        disk = make_disk(env)

        def client(env):
            yield disk.read(0, SECTORS_PER_BLOCK)

        env.run(env.process(client(env)))
        assert disk.session_stats == {}

    def test_release_session_drops_accounting(self):
        env = Environment()
        disk = make_disk(env)

        def client(env):
            yield disk.read(0, SECTORS_PER_BLOCK, session_id=5)

        env.run(env.process(client(env)))
        assert 5 in disk.session_stats
        disk.release_session(5)
        assert disk.session_stats == {}
        disk.release_session(5)  # idempotent

    def test_readahead_hits_attributed_per_session(self):
        env = Environment()
        disk = make_disk(env)

        def client(env):
            # Sequential reads: the second request hits the read-ahead cache.
            yield disk.read(0, SECTORS_PER_BLOCK, session_id="s")
            yield disk.read(SECTORS_PER_BLOCK, SECTORS_PER_BLOCK, session_id="s")

        env.run(env.process(client(env)))
        stats = disk.session_stats["s"]
        assert stats.cache_misses >= 1
        assert stats.cache_hits >= 1
        assert stats.cache_hits + stats.cache_misses == 2


class TestDelayFusion:
    """The fused service path must be observationally identical to unfused."""

    def test_arm_position_hidden_until_controller_window_passes(self):
        # Delay fusion moves the arm-state update to service start; an
        # observer sampling mid-window (as the shared queue's policy does)
        # must still see the pre-request cylinder until the instant the
        # unfused timeline would have moved it (after controller overhead).
        env = Environment()
        disk = make_disk(env)
        far_lbn = disk.geometry.total_sectors - SECTORS_PER_BLOCK
        target_cylinder = disk.geometry.cylinder_of(
            disk.geometry.total_sectors - 1)
        overhead = disk.spec.controller_overhead
        samples = {}

        def reader(env):
            yield disk.read(far_lbn, SECTORS_PER_BLOCK)

        def observer(env):
            yield env.timeout(overhead / 2)
            samples["mid_window"] = disk.current_cylinder
            samples["mid_window_lbn"] = disk.head_lbn_estimate
            yield env.timeout(overhead)  # now past the controller window
            samples["after_window"] = disk.current_cylinder

        env.process(reader(env))
        env.process(observer(env))
        env.run()
        assert samples["mid_window"] == 0
        assert samples["mid_window_lbn"] == 0
        assert samples["after_window"] == target_cylinder

    def test_fused_read_timing_matches_component_sum(self):
        # One fused timeout must land on exactly controller + positioning +
        # transfer (the unfused end time).
        env = Environment()
        disk = make_disk(env)
        lbn = 512 * SECTORS_PER_BLOCK
        expected_lookup = disk.spec.controller_overhead
        positioning = disk.mechanics.positioning_time(expected_lookup, lbn)
        transfer = disk.mechanics.media.transfer_time(lbn, SECTORS_PER_BLOCK)
        done = []

        def reader(env):
            yield disk.read(lbn, SECTORS_PER_BLOCK)
            done.append(env.now)

        env.process(reader(env))
        env.run()
        bus_time = disk.bus_port.transfer_time(SECTORS_PER_BLOCK * 512)
        assert done[0] == pytest.approx(
            expected_lookup + positioning + transfer + bus_time)
        assert disk.stats.seek_time == pytest.approx(positioning)
        assert disk.stats.transfer_time == pytest.approx(transfer)

    def test_reads_fall_back_while_write_behind_drains(self):
        # With write-behind in flight the destage loop may invalidate the
        # read-ahead cache mid-service, so reads take the unfused reference
        # path; this pins that the mixed stream still completes with the
        # same conservation guarantees.
        env = Environment()
        disk = make_disk(env)
        done = []

        def client(env):
            yield disk.write(0, SECTORS_PER_BLOCK)
            # Queue reads while the buffered write destages in background.
            for index in range(1, 4):
                yield disk.read(index * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)
            yield disk.flush()
            done.append(env.now)

        env.process(client(env))
        env.run()
        assert done
        assert disk.stats.reads == 3
        assert disk.stats.writes == 1
        assert disk._writes_outstanding == 0

    def test_deep_write_buffer_drains_in_fifo_order(self):
        # The destage queue and its waiter list are deques; order must stay
        # strictly FIFO however deep the backlog gets.
        env = Environment()
        disk = make_disk(env, write_buffer_blocks=2)
        accepted = []

        def client(env):
            events = []
            for index in range(12):
                events.append(disk.write(index * SECTORS_PER_BLOCK,
                                         SECTORS_PER_BLOCK))
            for index, event in enumerate(events):
                yield event
                accepted.append(index)
            yield disk.flush()

        env.process(client(env))
        env.run()
        assert accepted == list(range(12))
        assert len(disk._write_buffer) == 0
        assert disk._writes_outstanding == 0


class TestBusPortFastPath:
    def test_transfer_event_none_when_bus_busy(self):
        env = Environment()
        bus = Resource(env, capacity=1)
        port = BusPort(bus, bandwidth=10e6, overhead=0.0)
        states = []

        def holder(env):
            yield from port.transfer(env, 10_000_000)  # holds the bus 1s

        def prober(env):
            yield env.timeout(0.5)
            states.append(port.transfer_event(env, 8192))
            yield env.timeout(1.0)
            states.append(port.transfer_event(env, 8192) is not None)

        env.process(holder(env))
        env.process(prober(env))
        env.run()
        assert states[0] is None
        assert states[1] is True

    def test_transfer_event_matches_transfer_duration(self):
        env = Environment()
        bus = Resource(env, capacity=1)
        port = BusPort(bus, bandwidth=10e6, overhead=0.1e-3)
        done = []

        def user(env):
            yield port.transfer_event(env, 8192)
            done.append(env.now)

        env.process(user(env))
        env.run()
        assert done[0] == pytest.approx(port.transfer_time(8192))
