"""Tests for the figure generators and the CLI (small, fast configurations)."""

import pytest

from repro.experiments import FIGURES, figure3, figure4, figure5, figure7, table1
from repro.experiments.figures import main

FAST = dict(file_mb=0.25, trials=1)


class TestTable1:
    def test_contains_paper_parameters(self):
        rows, text = table1()
        parameters = {row["parameter"]: row["value"] for row in rows}
        assert parameters["Compute processors (CPs)"] == "16"
        assert parameters["Disk type"] == "HP 97560"
        assert "2.34" in parameters["Disk peak transfer rate"]
        assert "Table 1" in text


class TestFigureGenerators:
    def test_registry_contains_every_figure(self):
        assert set(FIGURES) == {"table1", "figure3", "figure4", "figure5",
                                "figure6", "figure7", "figure8", "service",
                                "service-sched", "service-overload",
                                "service-faults", "service-millions",
                                "service-admission", "ddio-flash",
                                "service-rebuild"}

    def test_figure3_runs_subset(self):
        summaries, text = figure3(record_sizes=(8192,), patterns=("rb", "rc"), **FAST)
        assert len(summaries) == 2 * 3  # 2 patterns x 3 methods
        assert all(s.config.layout == "random" for s in summaries)
        assert "Figure 3" in text
        assert "#" in text  # the bar chart

    def test_figure4_runs_subset(self):
        summaries, text = figure4(record_sizes=(8192,), patterns=("rb",), **FAST)
        assert len(summaries) == 2  # DDIO + TC
        assert all(s.config.layout == "contiguous" for s in summaries)
        assert "Figure 4" in text

    def test_figure5_produces_series_per_pattern(self):
        summaries, text = figure5(cps=(2, 4), patterns=("rb",), **FAST)
        assert {s.config.n_cps for s in summaries} == {2, 4}
        assert "CPs" in text

    def test_figure7_single_iop(self):
        summaries, text = figure7(disks=(1, 2), patterns=("rb",), **FAST)
        assert all(s.config.n_iops == 1 for s in summaries)
        assert {s.config.n_disks for s in summaries} == {1, 2}
        assert "Figure 7" in text


class TestCli:
    def test_table1_via_cli(self, capsys):
        assert main(["table1", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "HP 97560" in output

    def test_figure4_via_cli_with_filters(self, capsys):
        code = main(["figure4", "--quiet", "--file-mb", "0.25",
                     "--record-size", "8192", "--patterns", "rb"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "disk-directed" in output

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
