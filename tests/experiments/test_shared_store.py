"""Concurrency and integrity tests for the content-addressed shared store.

The :class:`ResultCache` is shared between the processes of one parallel
sweep and between N hosts cooperating over one directory.  These tests pin
the properties that make that safe: racing writers never corrupt an entry or
serve a partial envelope (atomic temp-file + rename), every read verifies
the ``content_hash``, schema-version mismatches are rejected and counted,
and two independent cache handles over the same directory behave as one
store.
"""

import json
import threading

import pytest

from repro.experiments import ResultCache
from repro.experiments.runner import CACHE_SCHEMA_VERSION, _RESULT_TYPES

TransferResult = _RESULT_TYPES["TransferResult"]


def make_result(marker=0):
    """A small but real result object (the store reconstructs by type name)."""
    return TransferResult(
        method="disk-directed", pattern_name="rb", layout_name="contiguous",
        file_size=131072, record_size=8192, n_cps=2, n_iops=1, n_disks=1,
        start_time=0.0, end_time=1.0 + marker, bytes_transferred=131072,
        counters={"marker": marker})


KEY = "ab" + "0" * 30  # shard "ab"


class TestConcurrentWriters:
    def test_racing_writers_leave_complete_entries(self, tmp_path):
        # Many threads hammer the same key; a concurrent reader must only
        # ever see a complete, hash-valid entry — one writer's whole payload,
        # never a torn mix.
        cache = ResultCache(tmp_path)
        errors = []
        stop = threading.Event()

        def writer(marker):
            try:
                for _ in range(50):
                    cache.put(KEY, make_result(marker))
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        def reader():
            reader_cache = ResultCache(tmp_path)
            while not stop.is_set():
                result = reader_cache.get(KEY)
                if result is not None and \
                        result.counters["marker"] not in range(4):
                    errors.append(AssertionError(f"torn entry: {result}"))
            if reader_cache.corrupt:
                errors.append(AssertionError(
                    f"{reader_cache.corrupt} corrupt reads during the race"))

        threads = [threading.Thread(target=writer, args=(marker,))
                   for marker in range(4)]
        observer = threading.Thread(target=reader)
        observer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        observer.join()
        assert not errors
        # The survivor is one complete entry, readable and hash-valid.
        final = ResultCache(tmp_path).get(KEY)
        assert final is not None
        assert final.counters["marker"] in range(4)

    def test_no_temp_file_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        for marker in range(10):
            cache.put(KEY, make_result(marker))
        leftovers = [path for path in tmp_path.rglob("*")
                     if path.is_file() and not path.name.endswith(".json")]
        assert leftovers == []

    def test_distinct_keys_shard_independently(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [f"{first}{second}feed" + "0" * 26
                for first in "0af" for second in "19c"]
        for index, key in enumerate(keys):
            cache.put(key, make_result(index))
        for index, key in enumerate(keys):
            assert cache.get(key).counters["marker"] == index
        shards = {path.parent.name for path in tmp_path.rglob("*.json")}
        assert shards == {key[:2] for key in keys}


class TestSharedDirectory:
    def test_second_host_reads_first_hosts_entry(self, tmp_path):
        writer_host = ResultCache(tmp_path)
        writer_host.put(KEY, make_result(7))
        reader_host = ResultCache(tmp_path)  # N hosts, one directory
        result = reader_host.get(KEY)
        assert result is not None
        assert result.counters["marker"] == 7
        assert reader_host.hits == 1

    def test_schema_mismatch_between_hosts_rejected(self, tmp_path):
        # A host running an older model stamped its entry with an older
        # schema; this host must re-simulate, not serve it.
        writer_host = ResultCache(tmp_path)
        writer_host.put(KEY, make_result())
        path = writer_host._path(KEY)
        data = json.loads(path.read_text())
        data["schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(data))
        reader_host = ResultCache(tmp_path)
        assert reader_host.get(KEY) is None
        assert reader_host.stale == 1
        assert reader_host.misses == 1


class TestContentHash:
    def _entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_result())
        return cache, cache._path(KEY)

    def test_flipped_field_detected(self, tmp_path):
        cache, path = self._entry(tmp_path)
        data = json.loads(path.read_text())
        data["bytes_transferred"] += 1  # silent corruption, valid JSON
        path.write_text(json.dumps(data))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_hash_of_wrong_entry_detected(self, tmp_path):
        # Copying another key's (valid) entry over this one is caught too:
        # the hash travels with the content, so it still verifies — but a
        # *mutated* hash field itself must fail.
        cache, path = self._entry(tmp_path)
        data = json.loads(path.read_text())
        data["content_hash"] = "0" * len(data["content_hash"])
        path.write_text(json.dumps(data))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_intact_entry_verifies(self, tmp_path):
        cache, _path = self._entry(tmp_path)
        assert cache.get(KEY) is not None
        assert cache.corrupt == 0


class TestEnvelope:
    def test_missing_envelope_is_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_result())
        path = cache._path(KEY)
        data = json.loads(path.read_text())
        for envelope_key in ("schema", "result_type", "content_hash"):
            data.pop(envelope_key, None)
        path.write_text(json.dumps(data))
        assert cache.get(KEY) is None
        assert cache.stale == 1

    def test_unknown_result_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_result())
        path = cache._path(KEY)
        data = json.loads(path.read_text())
        data["result_type"] = "ResultFromTheFuture"
        path.write_text(json.dumps(data))
        assert cache.get(KEY) is None

    def test_clear_empties_all_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        for marker, key in enumerate(("aa" + "0" * 30, "bb" + "0" * 30)):
            cache.put(key, make_result(marker))
        assert len(list(tmp_path.rglob("*.json"))) == 2
        cache.clear()
        assert list(tmp_path.rglob("*.json")) == []
