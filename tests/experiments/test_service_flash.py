"""Tests for the device axis in the experiment layer and the ddio-flash figure."""

import json

from repro.experiments import (
    ExperimentConfig,
    ServiceExperimentConfig,
    run_experiment,
    run_service_experiment,
    trial_cache_key,
)
from repro.experiments.service import (
    FLASH_DEVICES,
    flash_ftl_probe,
    service_flash_configs,
    service_flash_figure,
)
from repro.workload import ServiceResult

KILOBYTE = 1024

#: tiny-machine overrides: one grid cell in ~10 ms, same code paths
TINY = dict(n_cps=2, n_iops=2, n_disks=2, n_requests=8, n_files=2,
            file_size=128 * KILOBYTE, concurrency=2)


class TestDeviceInConfigs:
    def test_device_defaults_to_disk_in_both_families(self):
        assert ExperimentConfig(method="disk-directed",
                                pattern="rb").device == "disk"
        assert ServiceExperimentConfig(method="disk-directed").device == "disk"

    def test_device_participates_in_transfer_cache_key(self):
        base = dict(method="disk-directed", pattern="rb")
        assert trial_cache_key(ExperimentConfig(**base), 7) != \
            trial_cache_key(ExperimentConfig(device="ssd", **base), 7)

    def test_device_participates_in_service_cache_key(self):
        assert trial_cache_key(ServiceExperimentConfig(
            method="disk-directed"), 7) != \
            trial_cache_key(ServiceExperimentConfig(
                method="disk-directed", device="ssd"), 7)

    def test_label_stays_cosmetic(self):
        config = ServiceExperimentConfig(method="disk-directed",
                                         device="ssd", label="a")
        relabeled = ServiceExperimentConfig(method="disk-directed",
                                            device="ssd", label="b")
        assert trial_cache_key(config, 7) == trial_cache_key(relabeled, 7)


class TestRunningOnFlash:
    def test_transfer_experiment_runs_on_ssd(self):
        base = dict(method="disk-directed", pattern="rb", n_cps=2, n_iops=2,
                    n_disks=2, file_size=128 * KILOBYTE)
        ssd = run_experiment(ExperimentConfig(device="ssd", **base), seed=1)
        disk = run_experiment(ExperimentConfig(**base), seed=1)
        assert ssd.throughput_mb > 0
        assert ssd.elapsed != disk.elapsed

    def test_service_experiment_runs_on_ssd(self):
        result = run_service_experiment(ServiceExperimentConfig(
            method="disk-directed", device="ssd", **TINY))
        assert isinstance(result, ServiceResult)
        assert result.conserves_bytes()
        assert result.goodput_mb > 0


class TestFtlProbe:
    def test_probe_reports_both_policies(self):
        rows = flash_ftl_probe()
        assert [row["gc_policy"] for row in rows] \
            == ["greedy", "cost-benefit"]

    def test_sequential_fill_wa_is_exactly_one(self):
        for row in flash_ftl_probe():
            assert row["sequential_fill_wa"] == 1.0

    def test_random_overwrites_amplify_writes(self):
        for row in flash_ftl_probe():
            assert row["random_overwrite_wa"] > 1.0
            assert row["erases"] > 0

    def test_probe_is_deterministic(self):
        assert flash_ftl_probe(seed=3) == flash_ftl_probe(seed=3)
        assert flash_ftl_probe(seed=3) != flash_ftl_probe(seed=4)


class TestFlashFigure:
    def test_config_grid_covers_the_device_axis(self):
        configs = service_flash_configs(loads=(4.0, 8.0))
        assert len(configs) == 2 * 2 * 2   # devices x loads x methods
        labels = {config.label for config in configs}
        assert "disk:disk-directed@4" in labels
        assert "ssd:traditional@8" in labels
        assert {config.device for config in configs} == set(FLASH_DEVICES)

    def test_figure_smoke_with_artifact(self, tmp_path):
        json_path = tmp_path / "service_flash.json"
        summaries, text = service_flash_figure(
            loads=(50.0,), trials=1, json_path=str(json_path), **TINY)
        assert len(summaries) == 4        # 2 devices x 1 load x 2 methods
        assert "equal" in text and "ddio_vs_tc" in text
        artifact = json.loads(json_path.read_text())
        assert artifact["figure"] == "ddio-flash"
        assert "repro.experiments.figures ddio-flash" in \
            artifact["regenerate"]
        assert len(artifact["rows"]) == 4
        assert {row["device"] for row in artifact["rows"]} == {"disk", "ssd"}
        assert len(artifact["ratios"]) == 2
        for ratio in artifact["ratios"]:
            assert ratio["ddio_vs_tc"] > 0
        # Equal sequential bandwidth is the experiment's control variable.
        assert artifact["config"]["disk_sequential_mb"] \
            == artifact["config"]["ssd_sequential_mb"]
        assert [row["gc_policy"] for row in artifact["ftl_probe"]] \
            == ["greedy", "cost-benefit"]

    def test_figure_runs_without_artifact(self):
        summaries, text = service_flash_figure(
            loads=(50.0,), devices=("ssd",), trials=1, **TINY)
        assert len(summaries) == 2
        assert "ssd:disk-directed@50" in {s.config.label for s in summaries}

    def test_figure_is_registered_in_the_cli(self):
        from repro.experiments.figures import FIGURES
        assert "ddio-flash" in FIGURES
        assert FIGURES["ddio-flash"] is service_flash_figure


class TestPublishedArtifact:
    """The committed docs artifact was produced by this code and still
    backs the claim docs/flash.md quotes from it."""

    def test_committed_artifact_matches_schema_and_claims(self):
        with open("docs/data/service_flash.json",
                  encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["figure"] == "ddio-flash"
        config = artifact["config"]
        assert config["disk_sequential_mb"] == config["ssd_sequential_mb"]
        ratios = {(row["device"], row["load_req_s"]): row["ddio_vs_tc"]
                  for row in artifact["ratios"]}
        top = max(load for _device, load in ratios)
        # The headline: DDIO's advantage is real on disk but essentially
        # vanishes on bandwidth-matched flash — it was a positioning-cost
        # effect, not a data-movement effect.
        assert ratios[("disk", top)] > 1.02
        assert ratios[("ssd", top)] < ratios[("disk", top)]
        assert ratios[("ssd", top)] < 1.02
        # Flash escapes the disk's saturation asymptote at the top load.
        goodput = {(row["device"], row["method"], row["load_req_s"]):
                   row["goodput_mb"] for row in artifact["rows"]}
        assert goodput[("ssd", "disk-directed", top)] \
            > 2 * goodput[("disk", "disk-directed", top)]
        for row in artifact["ftl_probe"]:
            assert row["sequential_fill_wa"] == 1.0
            assert row["random_overwrite_wa"] > 1.0
