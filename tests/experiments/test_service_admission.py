"""Tests for the ``service-admission`` experiment family and figure."""

import json

from repro.experiments import (
    ServiceExperimentConfig,
    run_service_experiment,
    trial_cache_key,
)
from repro.experiments.service import (
    ADMISSION_LOADS,
    ADMISSION_ROWS,
    ADMISSION_TARGET_P99,
    service_admission_configs,
    service_admission_figure,
)
from repro.workload import ServiceResult

KILOBYTE = 1024

#: Tiny-machine overrides so one trial takes ~10 ms.  The admission grid's
#: own defaults (Pareto sizes, record mix, QoS stamps) stay in force — the
#: point is a fast pass through the same code paths, not a different figure.
TINY = dict(n_cps=2, n_iops=2, n_disks=2, n_requests=8, n_files=2,
            file_size=128 * KILOBYTE, concurrency=2)


def tiny_admission_config(**overrides):
    base = dict(method="disk-directed", arrival="poisson", arrival_rate=200.0,
                priority_levels=2, deadline_slack=0.5, **TINY)
    base.update(overrides)
    return ServiceExperimentConfig(**base)


class TestAdmissionConfigPlumbing:
    def test_defaults_disable_the_controller(self):
        config = tiny_admission_config()
        assert config.controller_config() is None
        assert config.admission_policy == "fifo"

    def test_controller_fields_build_a_config(self):
        config = tiny_admission_config(controller_target_p99=2.0,
                                       controller_interval=0.25,
                                       controller_shed=True,
                                       controller_shed_age=1.0)
        controller = config.controller_config()
        assert controller == {"target_p99": 2.0, "interval": 0.25,
                              "max_k": 0, "shed": True, "shed_age": 1.0}

    def test_workload_carries_the_qos_stamps(self):
        workload = tiny_admission_config().workload()
        assert workload.priority_levels == 2
        assert workload.deadline_slack == 0.5

    def test_admission_fields_participate_in_cache_key(self):
        base = tiny_admission_config()
        assert trial_cache_key(base, 7) != \
            trial_cache_key(tiny_admission_config(admission_policy="sjf"), 7)
        assert trial_cache_key(base, 7) != \
            trial_cache_key(tiny_admission_config(controller_target_p99=2.0),
                            7)
        assert trial_cache_key(base, 7) != \
            trial_cache_key(tiny_admission_config(deadline_slack=1.0), 7)


class TestAdmissionTrials:
    def test_trial_reports_its_discipline(self):
        result = run_service_experiment(
            tiny_admission_config(admission_policy="sjf"))
        assert isinstance(result, ServiceResult)
        assert result.admission.startswith("sjf(aging=")
        assert result.conserves_bytes()

    def test_controller_trial_reports_state(self):
        result = run_service_experiment(
            tiny_admission_config(controller_target_p99=0.5,
                                  controller_interval=0.1,
                                  controller_shed=True,
                                  controller_shed_age=0.3))
        assert result.controller["target_p99"] == 0.5
        assert result.controller["intervals"] > 0
        assert result.conserves_bytes()

    def test_priority_trial_reports_class_sketches(self):
        result = run_service_experiment(
            tiny_admission_config(admission_policy="priority"))
        assert result.class_sketches
        assert set(result.class_sketches) <= {"0", "1"}


class TestAdmissionFigure:
    def test_config_grid_covers_loads_and_rows(self):
        configs = service_admission_configs()
        assert len(configs) == len(ADMISSION_LOADS) * len(ADMISSION_ROWS)
        labels = {config.label for config in configs}
        assert "fifo@32" in labels and "controller@8" in labels
        controller = next(config for config in configs
                          if config.label == "controller@32")
        assert controller.controller_target_p99 == ADMISSION_TARGET_P99
        assert controller.controller_shed
        assert controller.admission_policy == "fifo"

    def test_grid_rows_share_one_workload(self):
        # Every row must run the identical request stream — the discipline
        # is the only axis — so the stamps are on for FIFO too.
        configs = service_admission_configs()
        workloads = {config.label.split("@")[0]:
                     config.workload() for config in configs
                     if config.label.endswith("@32")}
        reference = workloads.pop("fifo")
        assert all(workload == reference
                   for workload in workloads.values())

    def test_figure_smoke_with_artifact(self, tmp_path):
        json_path = tmp_path / "service_admission.json"
        summaries, text = service_admission_figure(
            loads=(200.0,), trials=1, json_path=str(json_path), **TINY)
        assert len(summaries) == len(ADMISSION_ROWS)
        assert "Admission control under overload" in text
        assert "urgent_p99_s" in text and "goodput_mb" in text
        artifact = json.loads(json_path.read_text())
        assert artifact["figure"] == "service-admission"
        assert "repro.experiments.figures service-admission" in \
            artifact["regenerate"]
        assert len(artifact["rows"]) == len(ADMISSION_ROWS)
        by_policy = {row["policy"]: row for row in artifact["rows"]}
        assert set(by_policy) == set(ADMISSION_ROWS)
        controller_row = by_policy["controller"]
        assert controller_row["slo_target_s"] == ADMISSION_TARGET_P99
        assert isinstance(controller_row["slo_met"], bool)
        for row in artifact["rows"]:
            assert row["load_req_s"] == 200.0
            assert row["trials"] == 1

    def test_figure_runs_without_artifact(self):
        summaries, text = service_admission_figure(
            loads=(200.0,), rows=("fifo", "edf"), trials=1, **TINY)
        assert len(summaries) == 2
        assert "edf" in text


class TestPublishedArtifact:
    """The committed docs artifact was produced by this code and still
    backs the claims the docs quote from it."""

    def test_committed_artifact_matches_schema_and_claims(self):
        with open("docs/data/service_admission.json",
                  encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["figure"] == "service-admission"
        rows = {(row["policy"], row["load_req_s"]): row
                for row in artifact["rows"]}
        overload = max(row["load_req_s"] for row in artifact["rows"])
        fifo = rows[("fifo", overload)]
        # At 4x saturation at least one size/deadline-aware discipline
        # improves p99 over FIFO at comparable goodput...
        better = [rows[(policy, overload)]
                  for policy in ("sjf", "priority", "edf")
                  if rows[(policy, overload)]["p99_s"] < fifo["p99_s"]
                  and rows[(policy, overload)]["goodput_mb"]
                  >= 0.9 * fifo["goodput_mb"]]
        assert better, "no non-FIFO policy beats FIFO's p99 in the artifact"
        # ...and the controller holds the SLO that static-K FIFO misses.
        controller = rows[("controller", overload)]
        assert controller["slo_met"] is True
        assert controller["p99_s"] <= controller["slo_target_s"]
        assert fifo["p99_s"] > controller["slo_target_s"]
