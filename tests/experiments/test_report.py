"""Tests for plain-text report rendering."""

from repro.experiments.report import format_bar_chart, format_series_table, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no data)"

    def test_columns_aligned_and_ordered(self):
        rows = [{"pattern": "rb", "throughput": 12.5},
                {"pattern": "rcc", "throughput": 3.25}]
        text = format_table(rows, columns=["pattern", "throughput"])
        lines = text.splitlines()
        assert lines[0].startswith("pattern")
        assert "12.50" in text
        assert "3.25" in text
        assert len(lines) == 4  # header, separator, two rows

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert "x" in text


class TestBarChart:
    def test_empty(self):
        assert format_bar_chart([]) == "(no data)"

    def test_bars_scale_with_values(self):
        text = format_bar_chart([("big", 30.0), ("small", 3.0)], width=20)
        big_line, small_line = text.splitlines()
        assert big_line.count("#") > small_line.count("#")
        assert "MB/s" in big_line

    def test_zero_value_gets_no_bar(self):
        text = format_bar_chart([("none", 0.0), ("some", 1.0)])
        assert "#" not in text.splitlines()[0]


class TestSeriesTable:
    def test_empty(self):
        assert format_series_table({}) == "(no data)"

    def test_all_x_values_listed(self):
        series = {"DDIO": [(1, 2.0), (4, 8.0)], "TC": [(1, 1.0), (4, 2.0)]}
        text = format_series_table(series, x_label="disks")
        assert text.splitlines()[0].startswith("disks")
        assert any(line.startswith("1") for line in text.splitlines()[1:])
        assert any(line.startswith("4") for line in text.splitlines()[1:])

    def test_missing_points_shown_as_dashes(self):
        series = {"DDIO": [(1, 2.0)], "TC": [(2, 1.0)]}
        text = format_series_table(series)
        assert "--" in text
