"""Tests for the headline-claims checker (with synthetic data)."""

from repro.experiments import ExperimentConfig, TrialSummary
from repro.experiments.claims import check_headline_claims


class _FakeResult:
    def __init__(self, throughput_mb):
        self.throughput_mb = throughput_mb
        self.elapsed = 1.0


def _summary(method, pattern, layout, record_size, value):
    summary = TrialSummary(config=ExperimentConfig(
        method=method, pattern=pattern, layout=layout, record_size=record_size))
    summary.results = [_FakeResult(value)]
    return summary


def _paper_like_dataset():
    """Synthetic results shaped like the paper's findings."""
    data = []
    for pattern in ("rb", "rc"):
        data.append(_summary("disk-directed", pattern, "contiguous", 8192, 33.0))
        data.append(_summary("traditional", pattern, "contiguous", 8192,
                             30.0 if pattern == "rb" else 2.5))
        data.append(_summary("disk-directed", pattern, "random", 8192, 6.8))
        data.append(_summary("disk-directed-nosort", pattern, "random", 8192, 4.6))
        data.append(_summary("traditional", pattern, "random", 8192, 4.0))
    return data


class TestClaims:
    def test_paper_like_data_satisfies_all_claims(self):
        checks = check_headline_claims(_paper_like_dataset())
        assert checks, "expected some claims to be evaluated"
        assert all(check.holds for check in checks)

    def test_slow_ddio_fails_first_claim(self):
        data = [
            _summary("disk-directed", "rb", "contiguous", 8192, 5.0),
            _summary("traditional", "rb", "contiguous", 8192, 30.0),
        ]
        checks = check_headline_claims(data)
        first = [c for c in checks if "at least as fast" in c.claim][0]
        assert not first.holds

    def test_rows_render(self):
        checks = check_headline_claims(_paper_like_dataset())
        for check in checks:
            row = check.as_row()
            assert set(row) == {"claim", "paper", "measured", "holds"}

    def test_empty_input_gives_no_checks(self):
        assert check_headline_claims([]) == []
