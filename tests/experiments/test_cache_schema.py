"""Regression tests: the result cache must reject stale-schema entries.

The cache key already embeds :data:`CACHE_SCHEMA_VERSION`, but entries are
*also* stamped in their envelope and checked on read — so even a key
collision, a hand-copied cache directory, or a downgrade can never serve a
result produced under a different model.  CI enforces the other half of the
contract: model-relevant source changes without a version bump fail the
schema-guard job (tools/check_schema_bump.py).
"""

import dataclasses
import json

from repro.experiments import ExperimentConfig, ResultCache, trial_cache_key
from repro.experiments.runner import CACHE_SCHEMA_VERSION, run_trials

KILOBYTE = 1024


def tiny_config(**overrides):
    base = dict(method="disk-directed", pattern="rb", record_size=8192,
                layout="contiguous", file_size=128 * KILOBYTE,
                n_cps=2, n_iops=1, n_disks=1)
    base.update(overrides)
    return ExperimentConfig(**base)


def _entry_path(cache, config):
    # Pins the shared store's on-disk contract: entries are sharded by the
    # first two hex digits of their content-addressed key.
    key = trial_cache_key(config, config.seed)
    return cache.directory / key[:2] / f"{key}.json"


class TestSchemaStamp:
    def test_entries_carry_the_current_stamp(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        run_trials(config, trials=1, cache=cache)
        data = json.loads(_entry_path(cache, config).read_text())
        assert data["schema"] == CACHE_SCHEMA_VERSION
        assert data["result_type"] == "TransferResult"

    def test_stale_schema_version_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        summary = run_trials(config, trials=1, cache=cache)
        path = _entry_path(cache, config)
        data = json.loads(path.read_text())
        data["schema"] = CACHE_SCHEMA_VERSION - 1   # model changed since
        path.write_text(json.dumps(data))
        stale_before = cache.stale
        assert cache.get(trial_cache_key(config, config.seed)) is None
        assert cache.stale == stale_before + 1
        # And the sweep re-simulates rather than serving the stale entry.
        fresh = run_trials(config, trials=1, cache=cache)
        assert dataclasses.asdict(fresh.results[0]) == \
            dataclasses.asdict(summary.results[0])

    def test_pre_envelope_entry_is_rejected(self, tmp_path):
        # Entries written before the envelope existed (schema 1) were the
        # bare result fields with no stamp at all.
        cache = ResultCache(tmp_path)
        config = tiny_config()
        run_trials(config, trials=1, cache=cache)
        path = _entry_path(cache, config)
        data = json.loads(path.read_text())
        del data["schema"]
        del data["result_type"]
        path.write_text(json.dumps(data))
        assert cache.get(trial_cache_key(config, config.seed)) is None
        assert cache.stale >= 1

    def test_unknown_result_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        run_trials(config, trials=1, cache=cache)
        path = _entry_path(cache, config)
        data = json.loads(path.read_text())
        data["result_type"] = "ResultFromTheFuture"
        path.write_text(json.dumps(data))
        assert cache.get(trial_cache_key(config, config.seed)) is None

    def test_version_participates_in_the_key(self, monkeypatch):
        config = tiny_config()
        key_now = trial_cache_key(config, 0)
        monkeypatch.setattr("repro.experiments.runner.CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert trial_cache_key(config, 0) != key_now
