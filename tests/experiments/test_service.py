"""Tests for the service experiment family and its sweep/cache integration."""

import dataclasses

import pytest

from repro.experiments import (
    ResultCache,
    ServiceExperimentConfig,
    run_service_experiment,
    run_trial,
    sweep,
    sweep_parallel,
    trial_cache_key,
)
from repro.experiments.service import service_configs, service_figure
from repro.workload import ServiceResult

KILOBYTE = 1024


def tiny_service_config(**overrides):
    """A service config small enough for a trial to take ~10 ms."""
    base = dict(method="disk-directed", n_cps=2, n_iops=1, n_disks=1,
                n_requests=4, n_files=2, file_size=64 * KILOBYTE,
                layout="contiguous", concurrency=2, arrival="poisson",
                arrival_rate=200.0, seed=7)
    base.update(overrides)
    return ServiceExperimentConfig(**base)


def results_as_dicts(summary):
    return [dataclasses.asdict(result) for result in summary.results]


@pytest.fixture
def config_list():
    return [tiny_service_config(method=method, arrival_rate=rate)
            for rate in (100.0, 300.0)
            for method in ("disk-directed", "traditional")]


class TestRunServiceExperiment:
    def test_returns_service_result(self):
        result = run_service_experiment(tiny_service_config())
        assert isinstance(result, ServiceResult)
        assert result.n_requests == 4
        assert result.conserves_bytes()

    def test_type_checked(self):
        with pytest.raises(TypeError):
            run_service_experiment("not-a-config")

    def test_run_trial_dispatches_by_config_type(self):
        result = run_trial(tiny_service_config(), seed=7)
        assert isinstance(result, ServiceResult)

    def test_run_trial_rejects_unknown_family(self):
        with pytest.raises(TypeError):
            run_trial(object())

    def test_seed_overrides_config_seed(self):
        base = run_service_experiment(tiny_service_config())
        reseeded = run_service_experiment(tiny_service_config(), seed=8)
        assert dataclasses.asdict(base) != dataclasses.asdict(reseeded)


class TestServiceSweeps:
    def test_parallel_matches_serial_bit_for_bit(self, config_list):
        serial = sweep(config_list, trials=2)
        parallel = sweep_parallel(config_list, trials=2, workers=2)
        for serial_summary, parallel_summary in zip(serial, parallel):
            assert serial_summary.config == parallel_summary.config
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(parallel_summary)

    def test_cold_parallel_then_warm_serial_identical(self, tmp_path,
                                                      config_list):
        cold = sweep_parallel(config_list, trials=1, workers=2,
                              cache=tmp_path)
        cache = ResultCache(tmp_path)
        warm = sweep(config_list, trials=1, cache=cache)
        assert cache.hits >= len(config_list)
        for cold_summary, warm_summary in zip(cold, warm):
            assert results_as_dicts(cold_summary) == \
                results_as_dicts(warm_summary)

    def test_cache_round_trips_service_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_service_config()
        fresh = run_service_experiment(config)
        key = trial_cache_key(config, config.seed)
        cache.put(key, fresh)
        cached = cache.get(key)
        assert isinstance(cached, ServiceResult)
        assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)
        # Per-request records survive as plain dictionaries.
        assert cached.requests[0]["bytes_moved"] > 0
        assert cached.conserves_bytes()

    def test_service_and_transfer_keys_never_collide(self):
        # Same seed, overlapping field values — the config type itself is
        # part of the key.
        from repro.experiments import ExperimentConfig
        transfer_key = trial_cache_key(ExperimentConfig(), 0)
        service_key = trial_cache_key(ServiceExperimentConfig(), 0)
        assert transfer_key != service_key


class TestServiceFigure:
    def test_config_grid_covers_loads_and_methods(self):
        configs = service_configs(loads=(5.0, 10.0),
                                  methods=("disk-directed", "traditional"))
        assert len(configs) == 4
        assert {config.arrival_rate for config in configs} == {5.0, 10.0}

    def test_figure_text_and_summaries(self):
        summaries, text = service_figure(
            loads=(100.0, 300.0), trials=1, n_cps=2, n_iops=1, n_disks=1,
            n_requests=4, n_files=2, file_size=64 * KILOBYTE,
            layout="contiguous", concurrency=2)
        assert len(summaries) == 4
        assert "Sustained throughput" in text
        assert "99th-percentile response time" in text
        assert "DDIO" in text and "TC" in text

    def test_summary_rows_are_duck_compatible(self):
        # TrialSummary.as_row works on service configs (progress printers and
        # report tables rely on these fields).
        summaries, _text = service_figure(
            loads=(200.0,), methods=("disk-directed",), trials=1, n_cps=2,
            n_iops=1, n_disks=1, n_requests=3, n_files=1,
            file_size=64 * KILOBYTE, layout="contiguous")
        row = summaries[0].as_row()
        assert row["method"] == "disk-directed"
        assert row["pattern"].startswith("mix(")
        assert row["throughput_mb"] > 0


class TestHeadlineUnderConcurrentLoad:
    def test_ddio_sustains_higher_throughput_than_caching(self):
        """The north-star claim at a test-sized scale: under a concurrent
        mixed stream whose working set exceeds the IOP caches, disk-directed
        I/O sustains higher throughput than traditional caching.  The
        simulator is deterministic, so this is a stable regression anchor
        (same shape as the default service figure, scaled down)."""
        kwargs = dict(n_cps=4, n_iops=2, n_disks=2, n_requests=12,
                      n_files=8, file_size=128 * KILOBYTE, layout="random",
                      concurrency=4, arrival="closed", read_fraction=1.0,
                      pattern_specs=("b", "c"),
                      file_assignment="round-robin", seed=3)
        ddio = run_service_experiment(
            tiny_service_config(method="disk-directed", **kwargs))
        caching = run_service_experiment(
            tiny_service_config(method="traditional", **kwargs))
        assert ddio.conserves_bytes() and caching.conserves_bytes()
        assert ddio.throughput_mb > caching.throughput_mb


class TestOverloadFamily:
    """Heavy-tailed sizes, record mixes and the overload figure."""

    def overload_config(self, **overrides):
        base = dict(method="disk-directed", n_cps=2, n_iops=1, n_disks=1,
                    n_requests=6, n_files=3, file_size=64 * KILOBYTE,
                    layout="contiguous", concurrency=2, arrival="poisson",
                    arrival_rate=200.0, size_distribution="pareto",
                    size_alpha=1.5, record_sizes=(8, 8192), seed=7)
        base.update(overrides)
        return ServiceExperimentConfig(**base)

    def test_heavy_tail_fields_participate_in_cache_key(self):
        fixed = tiny_service_config()
        for overrides in (dict(size_distribution="pareto"),
                          dict(size_distribution="pareto", size_alpha=2.5),
                          dict(size_distribution="lognormal", size_sigma=2.0),
                          dict(size_distribution="pareto",
                               max_file_size=256 * KILOBYTE),
                          dict(record_sizes=(8, 8192))):
            other = tiny_service_config(**overrides)
            assert trial_cache_key(fixed, 7) != trial_cache_key(other, 7), \
                overrides

    def test_heavy_tailed_trial_conserves_bytes_and_varies_sizes(self):
        result = run_service_experiment(self.overload_config())
        assert result.conserves_bytes()
        assert len(result.file_sizes) == 3
        # Pareto with alpha=1.5 over 3 files: at least two distinct sizes
        # (the draw is deterministic, so this is a stable pin, not a flake).
        assert len(set(result.file_sizes)) >= 2

    def test_record_mix_reaches_both_sizes(self):
        result = run_service_experiment(
            self.overload_config(n_requests=10, method="traditional"))
        assert result.conserves_bytes()
        sizes = {record["record_size"] for record in result.requests}
        assert sizes == {8, 8192}

    def test_serial_parallel_determinism_with_heavy_tails(self):
        configs = [self.overload_config(method=method)
                   for method in ("disk-directed", "traditional")]
        serial = sweep(configs, trials=2)
        parallel = sweep_parallel(configs, trials=2, workers=2)
        for serial_summary, parallel_summary in zip(serial, parallel):
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(parallel_summary)

    def test_overload_figure_smoke(self):
        from repro.experiments.service import service_overload_figure

        summaries, text = service_overload_figure(
            loads=(100.0, 400.0), trials=1, n_cps=2, n_iops=1, n_disks=1,
            n_requests=4, n_files=2, file_size=64 * KILOBYTE,
            layout="contiguous", concurrency=2, seed=7)
        assert len(summaries) == 4  # 2 loads x 2 methods
        assert "asymptote" in text
        assert "record mix {8,8192}" in text
        assert all(result.conserves_bytes()
                   for summary in summaries for result in summary.results)

    def test_overload_response_time_grows_with_load(self):
        # Open loop far beyond saturation: mean response time at the highest
        # load must exceed the lightest load's (the asymptote, test-sized).
        from repro.experiments.service import service_overload_figure

        summaries, _text = service_overload_figure(
            loads=(25.0, 800.0), methods=("traditional",), trials=1,
            n_cps=2, n_iops=1, n_disks=1, n_requests=8, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", concurrency=2,
            seed=7)
        by_load = {summary.config.arrival_rate:
                   summary.results[0].mean_response_time
                   for summary in summaries}
        assert by_load[800.0] > by_load[25.0]


class TestSchedulerComparison:
    """Cross-collective IOP scheduling plugged into the service family."""

    def test_disk_scheduler_participates_in_cache_key(self):
        base = tiny_service_config()
        shared = tiny_service_config(disk_scheduler="shared-cscan")
        assert trial_cache_key(base, 7) != trial_cache_key(shared, 7)

    def test_shared_cscan_trial_conserves_bytes(self):
        result = run_service_experiment(
            tiny_service_config(disk_scheduler="shared-cscan"))
        assert result.conserves_bytes()

    def test_serial_parallel_determinism_with_shared_queues(self):
        configs = [tiny_service_config(disk_scheduler=scheduler)
                   for scheduler in ("fcfs", "shared-cscan")]
        serial = sweep(configs, trials=2)
        parallel = sweep_parallel(configs, trials=2, workers=2)
        for serial_summary, parallel_summary in zip(serial, parallel):
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(parallel_summary)

    def test_shared_cscan_beats_per_collective_sort_under_concurrency(self):
        # The K>1 pathology and its fix, at test scale: 8 concurrent DDIO
        # collectives over random-layout files on a small machine.  The
        # shared elevator must improve BOTH throughput and p99 response
        # time over per-collective presorted lists on a FCFS drive queue.
        overrides = dict(n_cps=8, n_iops=4, n_disks=4, n_requests=24,
                         n_files=12, file_size=1024 * KILOBYTE,
                         layout="random", concurrency=8,
                         arrival_rate=8.0, seed=0)
        fcfs = run_service_experiment(tiny_service_config(**overrides))
        cscan = run_service_experiment(
            tiny_service_config(disk_scheduler="shared-cscan", **overrides))
        assert cscan.throughput_mb > fcfs.throughput_mb
        assert cscan.response_percentile(0.99) < fcfs.response_percentile(0.99)

    def test_scheduler_figure_smoke(self):
        from repro.experiments.service import service_scheduler_figure

        summaries, text = service_scheduler_figure(
            loads=(100.0,), concurrencies=(1, 2),
            schedulers=("fcfs", "shared-cscan"), trials=1,
            n_cps=2, n_iops=1, n_disks=1, n_requests=4, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", seed=7)
        assert len(summaries) == 4  # 2 K x 2 schedulers x 1 load
        assert "shared-cscan" in text
        assert "99th-percentile" in text

    def test_scheduler_figure_sweeps_policies_and_pools(self):
        from repro.experiments.service import service_scheduler_figure

        summaries, text = service_scheduler_figure(
            loads=(100.0,), concurrencies=(2,),
            schedulers=("fcfs", "shared-sstf", "shared-cscan"),
            pool_sizes=(1, 2), trials=1,
            n_cps=2, n_iops=1, n_disks=1, n_requests=4, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", seed=7)
        # fcfs once (pool size is meaningless there), each shared policy at
        # both pool sizes: 1 + 2*2 = 5 configs.
        assert len(summaries) == 5
        assert "shared-sstf" in text
        pools = {(s.config.disk_scheduler, s.config.shared_queue_workers)
                 for s in summaries}
        assert ("shared-cscan", 1) in pools and ("shared-cscan", 2) in pools

    def test_shared_queue_workers_participates_in_cache_key(self):
        base = tiny_service_config(disk_scheduler="shared-cscan")
        wider = tiny_service_config(disk_scheduler="shared-cscan",
                                    shared_queue_workers=4)
        assert trial_cache_key(base, 7) != trial_cache_key(wider, 7)
