"""Tests for experiment configuration and trial aggregation."""

import pytest

from repro.experiments import ExperimentConfig, TrialSummary
from repro.experiments.config import MEGABYTE, PAPER_FILE_SIZE, PAPER_RECORD_SIZES


class _FakeResult:
    def __init__(self, throughput_mb, elapsed=1.0):
        self.throughput_mb = throughput_mb
        self.elapsed = elapsed


class TestExperimentConfig:
    def test_defaults_are_paper_defaults(self):
        config = ExperimentConfig()
        assert config.n_cps == 16
        assert config.n_iops == 16
        assert config.n_disks == 16
        assert config.file_size == PAPER_FILE_SIZE == 10 * MEGABYTE
        assert config.record_size in PAPER_RECORD_SIZES

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(pattern="rc", n_cps=4)
        assert config.pattern == "rc"
        assert config.n_cps == 4
        assert ExperimentConfig().pattern == "rb"

    def test_describe_mentions_key_fields(self):
        text = ExperimentConfig(method="traditional", pattern="rcc").describe()
        assert "traditional" in text
        assert "rcc" in text


class TestTrialSummary:
    def test_mean_and_stdev(self):
        summary = TrialSummary(config=ExperimentConfig())
        summary.results = [_FakeResult(10.0), _FakeResult(12.0), _FakeResult(14.0)]
        assert summary.mean_throughput_mb == pytest.approx(12.0)
        assert summary.stdev_throughput_mb == pytest.approx(2.0)
        assert summary.coefficient_of_variation == pytest.approx(2.0 / 12.0)

    def test_single_trial_has_zero_cv(self):
        summary = TrialSummary(config=ExperimentConfig())
        summary.results = [_FakeResult(5.0)]
        assert summary.stdev_throughput_mb == 0.0
        assert summary.coefficient_of_variation == 0.0

    def test_empty_summary_is_zero(self):
        summary = TrialSummary(config=ExperimentConfig())
        assert summary.mean_throughput_mb == 0.0
        assert summary.mean_elapsed == 0.0

    def test_as_row_contains_plot_fields(self):
        summary = TrialSummary(config=ExperimentConfig(label="DDIO"))
        summary.results = [_FakeResult(7.5, elapsed=2.0)]
        row = summary.as_row()
        assert row["label"] == "DDIO"
        assert row["throughput_mb"] == pytest.approx(7.5)
        assert row["trials"] == 1
