"""Tests for the parallel sweep runner and the on-disk result cache."""

import dataclasses
import json

import pytest

from repro.experiments import ExperimentConfig, ResultCache, sweep, sweep_parallel
from repro.experiments.runner import run_trials, trial_cache_key

KILOBYTE = 1024


def tiny_config(**overrides):
    """A config small enough that a trial takes a few milliseconds."""
    base = dict(method="disk-directed", pattern="rb", record_size=8192,
                layout="random", file_size=256 * KILOBYTE,
                n_cps=4, n_iops=2, n_disks=2)
    base.update(overrides)
    return ExperimentConfig(**base)


def results_as_dicts(summary):
    return [dataclasses.asdict(result) for result in summary.results]


def entry_path(directory, key):
    """Where the shared store files *key*: sharded by its first two digits."""
    return directory / key[:2] / f"{key}.json"


@pytest.fixture
def config_list():
    return [tiny_config(method=method, pattern=pattern, label=method)
            for pattern in ("rb", "rc")
            for method in ("disk-directed", "traditional")]


class TestSweepParallel:
    def test_matches_serial_sweep_exactly(self, config_list):
        serial = sweep(config_list, trials=2)
        parallel = sweep_parallel(config_list, trials=2, workers=2)
        assert len(serial) == len(parallel)
        for serial_summary, parallel_summary in zip(serial, parallel):
            assert serial_summary.config == parallel_summary.config
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(parallel_summary)

    def test_in_process_fallback_matches_serial(self, config_list):
        serial = sweep(config_list, trials=1)
        fallback = sweep_parallel(config_list, trials=1, workers=None)
        for serial_summary, fallback_summary in zip(serial, fallback):
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(fallback_summary)

    def test_progress_called_in_config_order(self, config_list):
        seen = []
        sweep_parallel(config_list, trials=1, workers=2,
                       progress=lambda i, total, s: seen.append((i, total)))
        assert seen == [(i, len(config_list)) for i in range(len(config_list))]

    def test_trial_seeds_follow_base_seed(self):
        config = tiny_config(seed=5)
        default_seeds = sweep_parallel([config], trials=2)[0]
        explicit = sweep_parallel([config], trials=2, base_seed=5)[0]
        assert results_as_dicts(default_seeds) == results_as_dicts(explicit)

    def test_zero_trials_rejected_like_serial(self):
        with pytest.raises(ValueError):
            sweep([tiny_config()], trials=0)
        with pytest.raises(ValueError):
            sweep_parallel([tiny_config()], trials=0, workers=2)
        with pytest.raises(ValueError):
            sweep_parallel([tiny_config()], trials=0)

    def test_progress_streams_before_completion(self, config_list):
        # progress for config 0 must fire before the last config's trials run;
        # with a pool the callback arrives as each config completes, so by the
        # time the call for the final index happens, earlier ones were already
        # delivered (order is asserted elsewhere; here we check staging).
        stages = []

        def progress(index, total, summary):
            stages.append(index)
            assert summary.results, "summary delivered before its trials ran"

        sweep_parallel(config_list, trials=1, workers=2, progress=progress)
        assert stages == list(range(len(config_list)))


class TestTrialCacheKey:
    def test_stable_for_equal_configs(self):
        assert trial_cache_key(tiny_config(), 3) == trial_cache_key(tiny_config(), 3)

    def test_seed_changes_key(self):
        assert trial_cache_key(tiny_config(), 3) != trial_cache_key(tiny_config(), 4)

    def test_simulation_fields_change_key(self):
        assert trial_cache_key(tiny_config(), 3) != \
            trial_cache_key(tiny_config(n_disks=1), 3)

    def test_label_is_cosmetic(self):
        assert trial_cache_key(tiny_config(label="a"), 3) == \
            trial_cache_key(tiny_config(label="b"), 3)


class TestResultCache:
    def test_round_trip_preserves_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        summary = run_trials(config, trials=1, cache=cache)
        key = trial_cache_key(config, config.seed)
        cached = cache.get(key)
        assert dataclasses.asdict(cached) == dataclasses.asdict(summary.results[0])

    def test_second_sweep_is_all_hits(self, tmp_path, config_list):
        cache = ResultCache(tmp_path)
        first = sweep_parallel(config_list, trials=1, cache=cache)
        misses_after_first = cache.misses
        second = sweep_parallel(config_list, trials=1, cache=cache)
        assert cache.misses == misses_after_first
        assert cache.hits >= len(config_list)
        for first_summary, second_summary in zip(first, second):
            assert results_as_dicts(first_summary) == \
                results_as_dicts(second_summary)

    def test_changed_config_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep_parallel([tiny_config()], trials=1, cache=cache)
        misses = cache.misses
        sweep_parallel([tiny_config(n_disks=1)], trials=1, cache=cache)
        assert cache.misses > misses  # different config -> fresh simulation

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        run_trials(config, trials=1, cache=cache)
        key = trial_cache_key(config, config.seed)
        entry_path(tmp_path, key).write_text("{not json")
        assert cache.get(key) is None

    def test_stale_schema_entry_treated_as_miss(self, tmp_path):
        # Valid JSON whose keys no longer match TransferResult's fields (e.g.
        # written before a field rename) must degrade to a miss, not crash.
        cache = ResultCache(tmp_path)
        config = tiny_config()
        run_trials(config, trials=1, cache=cache)
        key = trial_cache_key(config, config.seed)
        entry_path(tmp_path, key).write_text('{"obsolete_field": 1}')
        assert cache.get(key) is None
        summary = run_trials(config, trials=1, cache=cache)  # re-simulates
        assert summary.results

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials(tiny_config(), trials=1, cache=cache)
        assert list(tmp_path.rglob("*.json"))
        cache.clear()
        assert not list(tmp_path.rglob("*.json"))

    def test_cache_accepts_plain_path(self, tmp_path):
        directory = tmp_path / "cache-dir"
        sweep_parallel([tiny_config()], trials=1, cache=str(directory))
        assert list(directory.rglob("*.json"))

    def test_entries_are_valid_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials(tiny_config(), trials=1, cache=cache)
        for path in tmp_path.rglob("*.json"):
            data = json.loads(path.read_text())
            assert "bytes_transferred" in data


class TestTrialCostEstimate:
    """Dispatch ordering heuristic: results never depend on it, but the
    known ~100x stragglers must rank first so work stealing can help."""

    def test_small_record_traditional_ranks_above_ddio(self):
        from repro.experiments.runner import trial_cost_estimate
        tc_8byte = tiny_config(method="traditional", record_size=8)
        ddio = tiny_config(method="disk-directed", record_size=8)
        tc_8k = tiny_config(method="traditional", record_size=8192)
        assert trial_cost_estimate(tc_8byte) > trial_cost_estimate(ddio)
        assert trial_cost_estimate(tc_8byte) > trial_cost_estimate(tc_8k)

    def test_service_configs_scale_with_requests_and_record_mix(self):
        from repro.experiments.runner import trial_cost_estimate
        from repro.experiments.service import ServiceExperimentConfig
        small = ServiceExperimentConfig(method="traditional", n_requests=4)
        big = ServiceExperimentConfig(method="traditional", n_requests=32)
        mixed = ServiceExperimentConfig(method="traditional", n_requests=4,
                                        record_sizes=(8, 8192))
        assert trial_cost_estimate(big) > trial_cost_estimate(small)
        assert trial_cost_estimate(mixed) > trial_cost_estimate(small)

    def test_mixed_cost_sweep_still_matches_serial(self):
        configs = [
            tiny_config(method="traditional", pattern="rc", record_size=64,
                        file_size=64 * KILOBYTE),
            tiny_config(method="disk-directed", pattern="rb"),
            tiny_config(method="traditional", pattern="rb"),
        ]
        serial = sweep(configs, trials=1)
        parallel = sweep_parallel(configs, trials=1, workers=2)
        for serial_summary, parallel_summary in zip(serial, parallel):
            assert results_as_dicts(serial_summary) == \
                results_as_dicts(parallel_summary)
