"""Tests for the redundancy axis: parity trials, silent corruption, and the
``service-rebuild`` figure."""

import json

import pytest

from repro.experiments import (
    ServiceExperimentConfig,
    run_service_experiment,
    trial_cache_key,
)
from repro.experiments.service import (
    service_faults_configs,
    service_rebuild_configs,
    service_rebuild_figure,
)

KILOBYTE = 1024

#: Tiny-machine overrides: 4 drives (the parity minimum is 3) so one trial
#: stays in the tens of milliseconds.
TINY = dict(n_cps=2, n_iops=2, n_disks=4, n_requests=4, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", concurrency=2,
            arrival="poisson", arrival_rate=200.0, seed=7)

#: A silent range longer than the drive pins it to the full LBN span, so
#: *every* read overlaps it — detection claims become exact, not sampled.
WHOLE_DRIVE = 10 ** 9


def tiny_config(**overrides):
    base = dict(method="disk-directed", **TINY)
    base.update(overrides)
    return ServiceExperimentConfig(**base)


class TestConfigPlumbing:
    def test_redundancy_fields_participate_in_cache_key(self):
        plain = tiny_config()
        keys = {trial_cache_key(plain, 7)}
        for overrides in (dict(redundancy="parity"),
                          dict(redundancy="parity",
                               rebuild_bandwidth=1024.0 * 1024),
                          dict(checksums=True),
                          dict(fault_silent_ranges=1),
                          dict(fault_silent_ranges=1,
                               fault_silent_range_sectors=WHOLE_DRIVE)):
            keys.add(trial_cache_key(tiny_config(**overrides), 7))
        assert len(keys) == 6

    def test_silent_fields_build_a_fault_config(self):
        config = tiny_config(fault_silent_ranges=2,
                             fault_silent_range_sectors=128)
        fault_config = config.fault_config()
        assert fault_config is not None
        assert fault_config.silent_range_count == 2
        assert fault_config.silent_range_sectors == 128

    def test_rebuild_grid_is_parity_failstop_everywhere(self):
        configs = service_rebuild_configs()
        assert len(configs) == 4  # 2 devices x 2 methods
        for config in configs:
            assert config.redundancy == "parity"
            assert config.fault_fail_stop_disk == 0
            assert config.fault_fail_stop_time > 0.0
            assert config.rebuild_bandwidth > 0.0
        assert {c.device for c in configs} == {"disk", "ssd"}

    def test_faults_grid_takes_a_device(self):
        configs = service_faults_configs(device="ssd")
        assert all(config.device == "ssd" for config in configs)


class TestSilentCorruption:
    """Satellite: undetectable today, 100%-detected with checksums."""

    def silent_config(self, **overrides):
        return tiny_config(read_fraction=1.0, fault_silent_ranges=1,
                           fault_silent_range_sectors=WHOLE_DRIVE,
                           **overrides)

    def test_without_checksums_corruption_is_invisible(self):
        result = run_service_experiment(self.silent_config())
        # Every read returned flipped bytes, and nothing in the result can
        # tell: full delivery, zero failures, no scrub counter.
        assert result.conserves_bytes()
        assert result.failed_bytes == 0
        assert "scrub_errors" not in result.aggregates
        assert result.aggregates.get("bytes_moved", 0) == \
            result.aggregates.get("bytes_requested", 0)

    def test_with_checksums_every_corrupt_read_is_caught(self):
        result = run_service_experiment(
            self.silent_config(checksums=True, on_fault="degrade"))
        assert result.conserves_bytes()
        assert result.aggregates.get("scrub_errors", 0) > 0
        # No parity to repair from: 100% of the read bytes are given up
        # rather than delivered corrupt.
        assert result.failed_bytes == \
            result.aggregates.get("bytes_requested", 0)

    def test_checksums_plus_parity_repairs_everything(self):
        # One corrupt drive: survivors are clean, so every detected read is
        # reconstructed from parity and nothing is given up.
        result = run_service_experiment(
            self.silent_config(checksums=True, redundancy="parity",
                               fault_silent_disk=0))
        assert result.conserves_bytes()
        assert result.aggregates.get("scrub_errors", 0) > 0
        assert result.failed_bytes == 0
        assert result.lost_bytes == 0

    def test_corrupt_survivors_cannot_be_repaired(self):
        # Every drive corrupt everywhere: parity reconstruction XORs
        # garbage, must not claim a repair, and gives the bytes up.
        result = run_service_experiment(
            self.silent_config(checksums=True, redundancy="parity",
                               on_fault="degrade"))
        assert result.conserves_bytes()
        assert result.aggregates.get("scrub_errors", 0) > 0
        assert result.failed_bytes == \
            result.aggregates.get("bytes_requested", 0)

    def test_silent_disk_participates_in_cache_key(self):
        everywhere = self.silent_config()
        one_drive = self.silent_config(fault_silent_disk=0)
        assert trial_cache_key(everywhere, 7) != \
            trial_cache_key(one_drive, 7)


class TestParityTrials:
    def test_failstop_under_parity_loses_nothing(self):
        for method in ("disk-directed", "traditional"):
            result = run_service_experiment(tiny_config(
                method=method, redundancy="parity",
                rebuild_bandwidth=16.0 * 1024 * 1024,
                fault_fail_stop_disk=0, fault_fail_stop_time=0.01))
            assert result.conserves_bytes()
            assert result.failed_bytes == 0
            assert result.lost_bytes == 0
            assert result.aggregates.get("reconstructed_bytes", 0) > 0
            assert result.aggregates.get("rebuilt_rows", 0) > 0
            assert result.aggregates.get("rebuild_seconds", 0.0) > 0.0

    def test_healthy_parity_run_adds_no_fault_keys(self):
        result = run_service_experiment(tiny_config(redundancy="parity"))
        assert result.conserves_bytes()
        assert result.failed_bytes == 0
        assert "scrub_errors" not in result.aggregates

    def test_none_run_has_no_parity_keys(self):
        result = run_service_experiment(tiny_config())
        for key in ("reconstructed_bytes", "parity_overhead_bytes",
                    "rebuilt_rows", "rebuild_seconds"):
            assert key not in result.aggregates


class TestRebuildFigure:
    def figure(self, **kwargs):
        return service_rebuild_figure(
            devices=("disk",), trials=1, fault_fail_stop_time=0.01,
            rebuild_bandwidth=16.0 * 1024 * 1024, **{**TINY, **kwargs})

    def test_figure_reports_phases_and_zero_failures(self):
        summaries, text = self.figure()
        assert len(summaries) == 2
        assert "degraded_mb" in text
        assert "never data" in text
        for summary in summaries:
            for result in summary.results:
                assert result.failed_bytes == 0

    def test_figure_writes_the_json_artifact(self, tmp_path):
        json_path = tmp_path / "service_rebuild.json"
        self.figure(json_path=str(json_path))
        artifact = json.loads(json_path.read_text())
        assert artifact["figure"] == "service-rebuild"
        assert artifact["config"]["redundancy"] == "parity"
        rows = artifact["rows"]
        assert len(rows) == 2
        for row in rows:
            assert row["failed_mb"] == 0.0
            assert row["rebuild_s"] >= 0.0
