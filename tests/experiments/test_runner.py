"""Tests for the experiment runner."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment, run_trials, sweep

SMALL = dict(file_size=128 * 1024, n_cps=4, n_iops=4, n_disks=4)


class TestRunExperiment:
    def test_returns_transfer_result(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb", **SMALL)
        result = run_experiment(config)
        assert result.method == "disk-directed"
        assert result.throughput_mb > 0

    def test_type_checked(self):
        with pytest.raises(TypeError):
            run_experiment({"method": "ddio"})

    def test_same_seed_is_deterministic(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  layout="random", **SMALL)
        first = run_experiment(config, seed=5)
        second = run_experiment(config, seed=5)
        assert first.elapsed == pytest.approx(second.elapsed)

    def test_different_seed_changes_random_layout(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  layout="random", **SMALL)
        first = run_experiment(config, seed=1)
        second = run_experiment(config, seed=2)
        assert first.elapsed != second.elapsed

    def test_machine_shape_honoured(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  file_size=128 * 1024, n_cps=2, n_iops=1, n_disks=2)
        result = run_experiment(config)
        assert result.n_cps == 2
        assert result.n_iops == 1
        assert result.n_disks == 2


class TestRunTrials:
    def test_collects_requested_trials(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  layout="random", **SMALL)
        summary = run_trials(config, trials=3)
        assert len(summary.results) == 3
        assert summary.mean_throughput_mb > 0

    def test_trial_count_validated(self):
        with pytest.raises(ValueError):
            run_trials(ExperimentConfig(**SMALL), trials=0)

    def test_trials_use_distinct_seeds(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  layout="random", **SMALL)
        summary = run_trials(config, trials=3)
        elapsed = [result.elapsed for result in summary.results]
        assert len(set(elapsed)) > 1

    def test_replication_reduces_to_modest_cv(self):
        config = ExperimentConfig(method="disk-directed", pattern="rb",
                                  layout="random", **SMALL)
        summary = run_trials(config, trials=3)
        # The paper reports maximum cv of ~0.14; tiny files are noisier but
        # should still be in a sane range.
        assert summary.coefficient_of_variation < 0.5


class TestSweep:
    def test_runs_all_configs_and_reports_progress(self):
        configs = [
            ExperimentConfig(method=method, pattern="rb", **SMALL)
            for method in ("disk-directed", "traditional")
        ]
        seen = []
        summaries = sweep(configs, trials=1,
                          progress=lambda index, total, summary:
                          seen.append((index, total)))
        assert len(summaries) == 2
        assert seen == [(0, 2), (1, 2)]
