"""Tests for the ``service-faults`` experiment family and figure."""

import dataclasses

import pytest

from repro.experiments import (
    ServiceExperimentConfig,
    run_service_experiment,
    trial_cache_key,
)
from repro.experiments.service import (
    FAULT_SCENARIOS,
    service_faults_configs,
    service_faults_figure,
)
from repro.workload import ServiceResult

KILOBYTE = 1024

#: Tiny-machine overrides so one trial takes ~10 ms.
TINY = dict(n_cps=2, n_iops=1, n_disks=2, n_requests=4, n_files=2,
            file_size=64 * KILOBYTE, layout="contiguous", concurrency=2,
            arrival="poisson", arrival_rate=200.0, seed=7)


def tiny_fault_config(**overrides):
    base = dict(method="disk-directed", **TINY)
    base.update(overrides)
    return ServiceExperimentConfig(**base)


class TestFaultConfigPlumbing:
    def test_healthy_config_builds_no_fault_config(self):
        assert tiny_fault_config().fault_config() is None

    def test_fault_fields_build_a_fault_config(self):
        config = tiny_fault_config(fault_transient_rate=0.05)
        fault_config = config.fault_config()
        assert fault_config is not None
        assert fault_config.transient_rate == 0.05

    def test_fault_fields_participate_in_cache_key(self):
        healthy = tiny_fault_config()
        faulted = tiny_fault_config(fault_transient_rate=0.05)
        assert trial_cache_key(healthy, 7) != trial_cache_key(faulted, 7)

    def test_on_fault_participates_in_cache_key(self):
        retry = tiny_fault_config(fault_transient_rate=0.05)
        degrade = tiny_fault_config(fault_transient_rate=0.05,
                                    on_fault="degrade")
        assert trial_cache_key(retry, 7) != trial_cache_key(degrade, 7)


class TestFaultedTrials:
    def test_healthy_trial_records_no_faults(self):
        result = run_service_experiment(tiny_fault_config())
        assert isinstance(result, ServiceResult)
        assert result.fault_plans == []
        assert result.failed_bytes == 0
        assert result.total_retries == 0
        assert result.conserves_bytes()

    def test_faulted_trial_records_the_plan(self):
        result = run_service_experiment(
            tiny_fault_config(fault_transient_rate=0.3))
        assert len(result.fault_plans) == 2  # every drive draws transients
        for plan in result.fault_plans:
            assert plan["transient_rate"] == 0.3

    def test_transient_trial_conserves_bytes(self):
        result = run_service_experiment(
            tiny_fault_config(fault_transient_rate=0.3))
        assert result.total_retries > 0
        assert result.conserves_bytes()

    def test_fail_stop_trial_conserves_bytes_and_degrades(self):
        result = run_service_experiment(
            tiny_fault_config(fault_fail_stop_disk=0, fault_fail_stop_time=0.0))
        assert result.conserves_bytes()
        assert result.failed_bytes + result.lost_bytes > 0
        assert result.degraded_requests > 0
        assert result.goodput_mb <= result.throughput_mb

    def test_deterministic_fault_regression(self):
        """Same seed => identical fault schedule AND identical envelope."""
        config = tiny_fault_config(fault_transient_rate=0.3,
                                   fault_fail_stop_disk=1,
                                   fault_fail_stop_time=0.05)
        first = run_service_experiment(config)
        second = run_service_experiment(config)
        assert first.fault_plans == second.fault_plans
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_different_seed_different_schedule(self):
        config = tiny_fault_config(fault_transient_rate=0.3,
                                   fault_bad_ranges=2)
        plans_a = run_service_experiment(config, seed=1).fault_plans
        plans_b = run_service_experiment(config, seed=2).fault_plans
        assert plans_a != plans_b


class TestFaultFigure:
    def test_config_grid_covers_scenarios_and_methods(self):
        configs = service_faults_configs()
        assert len(configs) == len(FAULT_SCENARIOS) * 2
        labels = {config.label for config in configs}
        assert "healthy:disk-directed" in labels
        assert "sick-disk:traditional" in labels

    def test_grid_defaults_to_32_disks(self):
        configs = service_faults_configs()
        assert all(config.n_disks == 32 for config in configs)

    def test_figure_smoke(self):
        scenarios = (("healthy", {}),
                     ("transient", {"fault_transient_rate": 0.3}))
        summaries, text = service_faults_figure(scenarios=scenarios, **TINY)
        assert len(summaries) == 4
        assert "Fault injection" in text
        assert "goodput_mb" in text
        assert "transient" in text

    def test_figure_asserts_conservation(self):
        scenarios = (("fail-stop", {"fault_fail_stop_disk": 0,
                                    "fault_fail_stop_time": 0.0}),)
        summaries, text = service_faults_figure(scenarios=scenarios,
                                                methods=("disk-directed",),
                                                **TINY)
        assert len(summaries) == 1
        row_line = next(line for line in text.splitlines()
                        if line.startswith("fail-stop"))
        assert "disk-directed" in row_line
