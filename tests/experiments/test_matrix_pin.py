"""The zero-perturbation differential: 77 pinned trial digests.

The flash backend merged a new device axis through ``Machine``, the
experiment configs, the cache keys and the figures CLI; the redundancy PR
then merged a parity layer the same way.  None of that is allowed to move
a single bit of any existing ``device="disk"``, ``redundancy="none"``
result.  The matrix in :mod:`repro.experiments.matrix` runs 77 trials
spanning both experiment families — every pattern, both methods, both
layouts, all schedulers, faults, admission disciplines, streaming,
multiple seeds, and (appended at PR 10) parity/integrity cells — and this
suite compares their result digests against the committed pins
(``tests/data/disk_matrix_digests.json``).
"""

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.matrix import (
    DIGEST_PATH,
    compare,
    load_pinned,
    matrix_trials,
    result_digest,
    run_matrix,
)
from repro.experiments.runner import run_experiment
from repro.experiments.service import ServiceExperimentConfig


class TestMatrixShape:
    def test_exactly_77_trials(self):
        # Append-only: 68 pre-redundancy cells + 9 parity/integrity cells.
        assert len(matrix_trials()) == 77

    def test_keys_are_unique(self):
        keys = [key for key, _config, _seed in matrix_trials()]
        assert len(keys) == len(set(keys))

    def test_covers_both_experiment_families(self):
        configs = [config for _key, config, _seed in matrix_trials()]
        assert any(isinstance(config, ExperimentConfig)
                   and not isinstance(config, ServiceExperimentConfig)
                   for config in configs)
        assert any(isinstance(config, ServiceExperimentConfig)
                   for config in configs)

    def test_every_trial_runs_on_disk(self):
        """The matrix pins *disk* results; no trial may drift to flash."""
        for _key, config, _seed in matrix_trials():
            assert config.device == "disk"

    def test_multiple_seeds_are_exercised(self):
        seeds = {seed for _key, _config, seed in matrix_trials()}
        assert len(seeds) >= 2


class TestDigest:
    def test_digest_is_deterministic(self):
        _key, config, seed = matrix_trials()[0]
        result = run_experiment(config, seed=seed)
        assert result_digest(result) == result_digest(result)
        assert len(result_digest(result)) == 64  # sha256 hex

    def test_digest_distinguishes_results(self):
        _key, config, seed = matrix_trials()[0]
        first = result_digest(run_experiment(config, seed=seed))
        other = result_digest(run_experiment(config, seed=seed + 17))
        assert first != other


class TestPinnedFile:
    def test_pin_file_exists_and_is_complete(self):
        pinned = load_pinned()
        assert set(pinned) == {key for key, _c, _s in matrix_trials()}
        for digest in pinned.values():
            assert isinstance(digest, str) and len(digest) == 64

    def test_pin_file_is_plain_json(self):
        with open(DIGEST_PATH, encoding="utf-8") as handle:
            raw = json.load(handle)
        assert len(raw) == 77

    def test_compare_reports_mismatch_and_missing(self):
        pinned = {"a": "1", "b": "2"}
        diff = compare({"a": "1", "b": "changed", "c": "3"}, pinned)
        assert "digest moved: b" in diff
        assert "unpinned trial: c" in diff
        assert not any("a" in line.split() for line in diff)
        assert compare({"a": "1", "b": "2"}, pinned) == []


class TestBitIdentity:
    def test_all_77_trials_match_the_pins(self):
        """THE differential: flash and parity merged, no digest moved."""
        diff = compare(run_matrix(), load_pinned())
        assert diff == [], (
            f"{len(diff)} trial(s) diverged from the committed pins: "
            f"{sorted(diff)}")
