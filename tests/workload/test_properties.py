"""Property tests: concurrent collectives behave like serial ones.

The core invariant behind the service driver: running 2-3 collectives
*concurrently* on one machine moves exactly the same bytes per collective as
running them *serially*, and the simulated clock only moves forward.  The
interleaving changes timing (that is the point of the experiment), never
accounting.

Uses hypothesis when installed; otherwise falls back to a spread of
randomized-but-fixed seeds, so the property still gets a varied diet in
minimal CI environments.
"""

import random

import pytest

from repro.core import make_filesystem
from repro.fs import FileSystem
from repro.machine import Machine, MachineConfig
from repro.patterns import make_pattern

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in minimal CI images
    HAVE_HYPOTHESIS = False

KILOBYTE = 1024

#: (method, pattern name) choices the property draws from.
METHODS = ("disk-directed", "traditional")
PATTERNS = ("rb", "rc", "wb", "wc")


def _build(seed, n_files):
    config = MachineConfig(n_cps=2, n_iops=1, n_disks=1)
    machine = Machine(config, seed=seed)
    filesystem = FileSystem(config, layout_seed=seed)
    files = [filesystem.create_file(f"prop-{index}", 64 * KILOBYTE)
             for index in range(n_files)]
    return config, machine, files


def run_collectives(seed, method, jobs, concurrent):
    """Run (pattern_name, file_index) jobs; returns per-job accounting.

    ``concurrent=True`` starts every collective before advancing the clock;
    ``concurrent=False`` runs them one at a time on the same machine.
    """
    n_files = max(file_index for _pattern, file_index in jobs) + 1
    config, machine, files = _build(seed, n_files)
    implementation = make_filesystem(method, machine)
    patterns = [
        make_pattern(pattern_name, files[file_index].size_bytes, 8192,
                     config.n_cps)
        for pattern_name, file_index in jobs
    ]
    accounting = []
    if concurrent:
        sessions = [
            implementation.begin_transfer(pattern, files[file_index])
            for pattern, (_name, file_index) in zip(patterns, jobs)
        ]
        machine.env.run()
        for session in sessions:
            accounting.append((session.bytes_moved, session.start_time,
                               session.end_time))
    else:
        for pattern, (_name, file_index) in zip(patterns, jobs):
            result = implementation.transfer(pattern, files[file_index])
            accounting.append((result.counters["bytes_moved"],
                               result.start_time, result.end_time))
    return accounting, machine


def check_interleaving(seed, method, jobs):
    concurrent, machine_c = run_collectives(seed, method, jobs, concurrent=True)
    serial, machine_s = run_collectives(seed, method, jobs, concurrent=False)

    # Same per-collective byte totals, in job order.
    assert [bytes_moved for bytes_moved, _s, _e in concurrent] == \
        [bytes_moved for bytes_moved, _s, _e in serial]
    # And each equals what the pattern asked for (conservation).
    for (bytes_moved, _s, _e), (pattern_name, file_index) in \
            zip(concurrent, jobs):
        pattern = make_pattern(pattern_name, 64 * KILOBYTE, 8192, 2)
        assert bytes_moved == pattern.total_transfer_bytes()

    # Monotone simulated clock: sessions only run forward, and the machine
    # clock ends at/after the last completion in both schedules.
    for bytes_moved, start, end in concurrent + serial:
        assert end >= start >= 0.0
    assert machine_c.now >= max(end for _b, _s, end in concurrent)
    assert machine_s.now >= max(end for _b, _s, end in serial)


def _jobs_from_rng(rng):
    n_jobs = rng.randint(2, 3)
    return [(rng.choice(PATTERNS), rng.randint(0, n_jobs - 1))
            for _ in range(n_jobs)]


if HAVE_HYPOTHESIS:
    job_strategy = st.lists(
        st.tuples(st.sampled_from(PATTERNS), st.integers(0, 2)),
        min_size=2, max_size=3)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), method=st.sampled_from(METHODS),
           jobs=job_strategy)
    def test_interleaving_preserves_bytes_and_clock(seed, method, jobs):
        check_interleaving(seed, method, jobs)

else:  # pragma: no cover - minimal CI images without hypothesis
    @pytest.mark.parametrize("case", range(12))
    def test_interleaving_preserves_bytes_and_clock(case):
        rng = random.Random(0xD15C + case)
        check_interleaving(rng.randint(0, 2 ** 16), rng.choice(METHODS),
                           _jobs_from_rng(rng))


@pytest.mark.parametrize("method", METHODS)
def test_concurrent_sessions_genuinely_overlap(method):
    """Sanity that begin_transfer interleaves sessions rather than queueing
    them end to end: in the concurrent schedule every session's interval
    overlaps another's, while the serial schedule keeps them disjoint."""
    jobs = [("rb", 0), ("rb", 1), ("rb", 2)]
    concurrent, _machine_c = run_collectives(21, method, jobs, concurrent=True)
    serial, _machine_s = run_collectives(21, method, jobs, concurrent=False)
    starts = [start for _b, start, _e in concurrent]
    ends = [end for _b, _s, end in concurrent]
    assert max(starts) < min(ends)  # all three in flight at once
    for (_b1, _s1, end), (_b2, start, _e2) in zip(serial, serial[1:]):
        assert start >= end  # serial runs back to back


@pytest.mark.parametrize("method", METHODS)
def test_mixed_read_write_interleaving(method):
    check_interleaving(5, method, [("rb", 0), ("wb", 1), ("wc", 0)])
