"""Differential pins: the streaming driver against the retained reference.

``retain_requests=False`` must be a *representation* change, not a behaviour
change: the spawn-window open loop admits every request at the same simulated
instant as the materialised reference, and the fold-at-completion aggregates
must equal the reference's — bit-identical where the quantity is exact
(byte counters, conservation, makespan, sketches, per-method counters), and
within the sketch's documented error bound where the reference computes the
exact sorted-list percentile.  The matrix spans seed x arrival process x
fault config, because each axis changes completion *order* — the thing a
fold could accidentally depend on.
"""

import dataclasses

import pytest

from repro.disk.faults import FaultConfig
from repro.machine import MachineConfig
from repro.workload import ServiceWorkload, run_service
from repro.workload.aggregate import relative_error_bound
from repro.workload.driver import percentile

KILOBYTE = 1024

SEEDS = (0, 3)

ARRIVALS = (
    {"arrival": "poisson", "arrival_rate": 60.0},
    {"arrival": "closed", "think_time": 0.01},
)

FAULTS = (
    ("healthy", None),
    ("transient", FaultConfig(transient_rate=0.05)),
    ("fail-slow", FaultConfig(slow_disk=0, slow_factor=4.0,
                              slow_start=0.0, slow_duration=3600.0)),
)


def tiny_workload(seed, **arrival_kwargs):
    return ServiceWorkload(n_requests=24, concurrency=3, n_files=4,
                           file_size=96 * KILOBYTE, layout="random",
                           read_fraction=0.7, pattern_specs=("b", "c"),
                           record_size=8192, seed=seed, **arrival_kwargs)


def run_pair(seed, arrival_kwargs, fault_config, method="disk-directed"):
    """The same trial twice: retained reference, then streaming."""
    results = []
    for retain in (True, False):
        workload = tiny_workload(seed, **arrival_kwargs)
        results.append(run_service(
            method, workload,
            machine_config=MachineConfig(n_cps=2, n_iops=2, n_disks=4),
            seed=seed, fault_config=fault_config,
            retain_requests=retain))
    return results


def envelope(result):
    """Everything except the per-request record list (streaming has none)."""
    data = dataclasses.asdict(result)
    data.pop("requests")
    return data


@pytest.mark.parametrize("fault_name,fault_config", FAULTS,
                         ids=[name for name, _ in FAULTS])
@pytest.mark.parametrize("arrival_kwargs", ARRIVALS,
                         ids=[spec["arrival"] for spec in ARRIVALS])
@pytest.mark.parametrize("seed", SEEDS)
class TestStreamingMatchesRetained:
    def test_envelope_bit_identical(self, seed, arrival_kwargs, fault_name,
                                    fault_config):
        retained, streaming = run_pair(seed, arrival_kwargs, fault_config)
        assert envelope(streaming) == envelope(retained)
        assert streaming.requests == []
        assert len(retained.requests) == retained.n_requests

    def test_conservation_counters_identical(self, seed, arrival_kwargs,
                                             fault_name, fault_config):
        retained, streaming = run_pair(seed, arrival_kwargs, fault_config)
        for result in (retained, streaming):
            assert result.conserves_bytes()
        assert streaming.aggregates == retained.aggregates
        assert streaming.counters == retained.counters
        # The fold totals agree with summing the retained records — the
        # aggregates really are the records, compressed.
        records = retained.requests
        assert retained.aggregates["bytes_requested"] == \
            sum(record["bytes_requested"] for record in records)
        assert retained.aggregates["bytes_moved"] == \
            sum(record["bytes_moved"] for record in records)
        assert retained.aggregates["bytes_failed"] == \
            sum(record["bytes_failed"] for record in records)
        assert retained.aggregates["retries"] == \
            sum(record["retries"] for record in records)

    def test_percentiles_within_sketch_bound(self, seed, arrival_kwargs,
                                             fault_name, fault_config):
        retained, streaming = run_pair(seed, arrival_kwargs, fault_config)
        exact_times = retained.response_times
        bound = relative_error_bound()
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            exact = percentile(exact_times, fraction)
            estimate = streaming.response_percentile(fraction)
            assert abs(estimate - exact) <= bound * exact + 1e-12


class TestStreamingAcrossMethods:
    """The equivalence is a driver property, not a disk-directed one."""

    @pytest.mark.parametrize("method", ("disk-directed", "traditional"))
    def test_both_methods(self, method):
        retained, streaming = run_pair(
            1, {"arrival": "poisson", "arrival_rate": 60.0}, None,
            method=method)
        assert envelope(streaming) == envelope(retained)


def run_legacy_pair(seed, arrival_kwargs, fault_config):
    """The same trial on the pre-admission-layer Resource path and the new
    FIFO AdmissionQueue, both retained."""
    results = []
    for legacy in (True, False):
        workload = tiny_workload(seed, **arrival_kwargs)
        results.append(run_service(
            "disk-directed", workload,
            machine_config=MachineConfig(n_cps=2, n_iops=2, n_disks=4),
            seed=seed, fault_config=fault_config,
            legacy_admission=legacy))
    return results


@pytest.mark.parametrize("fault_name,fault_config", FAULTS,
                         ids=[name for name, _ in FAULTS])
@pytest.mark.parametrize("arrival_kwargs", ARRIVALS,
                         ids=[spec["arrival"] for spec in ARRIVALS])
@pytest.mark.parametrize("seed", SEEDS)
class TestFIFOMatchesLegacyResource:
    """The admission layer's FIFO policy against the counting semaphore it
    replaced — full-result bit-identity, per-request records included, across
    the same seed x arrival x fault matrix (each axis shifts grant order)."""

    def test_bit_identical_including_records(self, seed, arrival_kwargs,
                                             fault_name, fault_config):
        legacy, modern = run_legacy_pair(seed, arrival_kwargs, fault_config)
        assert dataclasses.asdict(modern) == dataclasses.asdict(legacy)
        assert modern.admission == "fifo" and modern.controller == {}

    def test_streaming_fifo_matches_legacy_envelope(self, seed,
                                                    arrival_kwargs,
                                                    fault_name, fault_config):
        legacy, _ = run_legacy_pair(seed, arrival_kwargs, fault_config)
        workload = tiny_workload(seed, **arrival_kwargs)
        streaming = run_service(
            "disk-directed", workload,
            machine_config=MachineConfig(n_cps=2, n_iops=2, n_disks=4),
            seed=seed, fault_config=fault_config, retain_requests=False)
        assert envelope(streaming) == envelope(legacy)


def stamped_workload(seed, **arrival_kwargs):
    """The differential workload with the QoS axes lit: two priority
    classes, ~0.6 s deadlines and Pareto sizes (so size-aware ordering,
    deadline drops and class sketches all engage)."""
    return ServiceWorkload(n_requests=24, concurrency=3, n_files=4,
                           file_size=96 * KILOBYTE, layout="random",
                           read_fraction=0.7, pattern_specs=("b", "c"),
                           record_size=8192, seed=seed,
                           priority_levels=2, deadline_slack=0.6,
                           size_distribution="pareto", size_alpha=1.5,
                           **arrival_kwargs)


#: Non-FIFO disciplines (and the shedding controller) whose streaming mode
#: must still reproduce the retained reference exactly.
POLICY_ROWS = (
    ("sjf", dict(admission_policy="sjf", admission_aging=0.5)),
    ("priority", dict(admission_policy="priority")),
    ("edf", dict(admission_policy="edf")),
    ("controller", dict(controller={"target_p99": 0.4, "interval": 0.1,
                                    "shed": True, "shed_age": 0.3})),
)


@pytest.mark.parametrize("fault_name,fault_config", FAULTS,
                         ids=[name for name, _ in FAULTS])
@pytest.mark.parametrize("policy_name,run_kwargs", POLICY_ROWS,
                         ids=[name for name, _ in POLICY_ROWS])
class TestPolicyStreamingMatchesRetained:
    """Streaming == retained for every admission discipline, drops and
    sheds included, with the PR 6 fault plans active — and conservation
    (moved + failed + shed == requested) holds throughout."""

    def run_policy_pair(self, run_kwargs, fault_config):
        results = []
        for retain in (True, False):
            workload = stamped_workload(0, arrival="poisson",
                                        arrival_rate=200.0)
            results.append(run_service(
                "disk-directed", workload,
                machine_config=MachineConfig(n_cps=2, n_iops=2, n_disks=4),
                seed=0, fault_config=fault_config, retain_requests=retain,
                **run_kwargs))
        return results

    def test_envelope_bit_identical(self, policy_name, run_kwargs,
                                    fault_name, fault_config):
        retained, streaming = self.run_policy_pair(run_kwargs, fault_config)
        assert envelope(streaming) == envelope(retained)
        assert streaming.controller == retained.controller
        assert streaming.class_sketches == retained.class_sketches

    def test_conservation_with_rejections(self, policy_name, run_kwargs,
                                          fault_name, fault_config):
        retained, streaming = self.run_policy_pair(run_kwargs, fault_config)
        for result in (retained, streaming):
            assert result.conserves_bytes()
            aggregates = result.aggregates
            assert aggregates["bytes_moved"] + aggregates["bytes_failed"] \
                + aggregates["bytes_shed"] == aggregates["bytes_requested"]
            assert aggregates["completed"] + result.dropped_requests \
                + result.shed_requests == retained.n_requests
        # The retained records re-derive the shed totals exactly.
        rejected = [record for record in retained.requests
                    if record.get("admitted_time") is None]
        assert len(rejected) == \
            retained.dropped_requests + retained.shed_requests
        assert sum(record["bytes_shed"] for record in rejected) == \
            retained.shed_bytes


class TestRejectionsHappenUnderOverload:
    """The drop/shed paths really fire in the matrix above (so the
    conservation pins are not vacuous)."""

    MACHINE = dict(n_cps=2, n_iops=2, n_disks=4)

    def test_edf_drops_under_overload(self):
        workload = stamped_workload(0, arrival="poisson", arrival_rate=200.0)
        result = run_service("disk-directed", workload,
                             machine_config=MachineConfig(**self.MACHINE),
                             seed=0, admission_policy="edf")
        assert result.dropped_requests > 0
        assert result.shed_requests == 0
        assert result.shed_bytes > 0

    def test_controller_sheds_under_overload(self):
        workload = stamped_workload(0, arrival="poisson", arrival_rate=200.0)
        result = run_service("disk-directed", workload,
                             machine_config=MachineConfig(**self.MACHINE),
                             seed=0,
                             controller={"target_p99": 0.4, "interval": 0.1,
                                         "shed": True, "shed_age": 0.3})
        assert result.shed_requests > 0
        assert result.dropped_requests == 0
        assert result.controller["shed"] == result.shed_requests
        assert result.controller["intervals"] > 0
        assert result.controller["observed"] == \
            result.aggregates["completed"]


class TestStreamingUnderPressure:
    def test_window_smaller_than_backlog(self):
        # More requests than the spawn window, arriving far faster than the
        # server drains them: the window must refill from the cursor without
        # perturbing admission order.  (window = max(2K, 64) = 64 < 100.)
        workload = ServiceWorkload(n_requests=100, arrival="poisson",
                                   arrival_rate=10000.0, concurrency=2,
                                   n_files=2, file_size=32 * KILOBYTE,
                                   layout="contiguous",
                                   pattern_specs=("b",), record_size=8192,
                                   seed=2)
        machine_config = MachineConfig(n_cps=2, n_iops=1, n_disks=2)
        reference = run_service("disk-directed", workload,
                                machine_config=machine_config, seed=2,
                                retain_requests=True)
        streaming = run_service("disk-directed", workload,
                                machine_config=machine_config, seed=2,
                                retain_requests=False)
        assert envelope(streaming) == envelope(reference)
        assert streaming.max_in_flight == 2
