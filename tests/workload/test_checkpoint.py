"""Checkpoint/restart determinism for the service driver.

The contract under test (see ``repro.workload.checkpoint``): resuming from a
checkpoint taken at *any* fold boundary — including with collectives in
flight mid-session — yields bit-for-bit the envelope of the uninterrupted
run, and a checkpoint that is corrupted, stale-schema, or belongs to a
different run is rejected with a clear :class:`CheckpointError`, never
silently folded in.
"""

import dataclasses
import json

import pytest

from repro.machine import MachineConfig
from repro.workload import ServiceWorkload, run_service
from repro.workload.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    IndexRanges,
    RunCheckpoint,
    run_fingerprint,
)

KILOBYTE = 1024

MACHINE = dict(n_cps=2, n_iops=2, n_disks=4)


def workload(seed=0, n_requests=30):
    return ServiceWorkload(n_requests=n_requests, arrival="poisson",
                           arrival_rate=80.0, concurrency=3, n_files=4,
                           file_size=96 * KILOBYTE, layout="random",
                           read_fraction=0.7, pattern_specs=("b", "c"),
                           record_size=8192, seed=seed)


def run_once(seed=0, **kwargs):
    return run_service("disk-directed", workload(seed),
                       machine_config=MachineConfig(**MACHINE), seed=seed,
                       retain_requests=False, **kwargs)


def envelope(result):
    return dataclasses.asdict(result)


class TestResumeDeterminism:
    @pytest.mark.parametrize("every", (1, 7, 13))
    def test_resume_reproduces_uninterrupted_envelope(self, tmp_path, every):
        # ``checkpoint_every`` counts *completions*; with K=3 admitted there
        # are almost always sessions in flight at the fold boundary, so every
        # non-trivial cadence exercises the mid-session case.
        reference = run_once()
        path = tmp_path / "run.ckpt"
        checkpointed = run_once(checkpoint_every=every, checkpoint_path=path)
        assert envelope(checkpointed) == envelope(reference)
        assert path.exists()
        resumed = run_once(resume_from=path)
        assert envelope(resumed) == envelope(reference)

    def test_resume_from_loaded_object(self, tmp_path):
        reference = run_once()
        path = tmp_path / "run.ckpt"
        run_once(checkpoint_every=11, checkpoint_path=path)
        resumed = run_once(resume_from=RunCheckpoint.load(path))
        assert envelope(resumed) == envelope(reference)

    def test_checkpoint_is_partial_state(self, tmp_path):
        # A mid-run checkpoint must hold strictly fewer folded sessions than
        # the run total — the resume test above is vacuous otherwise.
        path = tmp_path / "run.ckpt"
        run_once(checkpoint_every=13, checkpoint_path=path)
        checkpoint = RunCheckpoint.load(path)
        assert 0 < len(checkpoint.folded) < workload().n_requests
        assert len(checkpoint.folded) % 13 == 0


class TestRejection:
    def _checkpoint(self, tmp_path, seed=0):
        path = tmp_path / "run.ckpt"
        run_once(seed=seed, checkpoint_every=11, checkpoint_path=path)
        return path

    def test_corrupted_file_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"completed"', b'"comqleted"', 1))
        with pytest.raises(CheckpointError, match="integrity"):
            RunCheckpoint.load(path)

    def test_tampered_value_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        payload = json.loads(path.read_text())
        payload["aggregates"]["bytes_moved"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="integrity"):
            RunCheckpoint.load(path)

    def test_stale_schema_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        payload = json.loads(path.read_text())
        del payload["payload_hash"]
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        import hashlib
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        payload["payload_hash"] = hashlib.sha256(
            canonical.encode("utf-8")).hexdigest()
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="schema"):
            RunCheckpoint.load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "nonexistent.ckpt"
        with pytest.raises(CheckpointError, match="unreadable"):
            RunCheckpoint.load(path)
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            RunCheckpoint.load(path)

    def test_foreign_run_rejected(self, tmp_path):
        # A checkpoint from seed 0 must not seed a seed-1 run's aggregates.
        path = self._checkpoint(tmp_path, seed=0)
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_once(seed=1, resume_from=path)

    def test_checkpoint_without_path_rejected(self):
        from repro.workload.driver import ServiceDriver, build_service_machine
        machine, implementation, files = build_service_machine(workload())
        driver = ServiceDriver(machine, implementation, files, workload())
        with pytest.raises(ValueError, match="path"):
            driver.write_checkpoint()


def stamped_workload(seed=0, n_requests=30):
    """The checkpoint workload with the QoS axes lit (classes + deadlines)."""
    return ServiceWorkload(n_requests=n_requests, arrival="poisson",
                           arrival_rate=200.0, concurrency=3, n_files=4,
                           file_size=96 * KILOBYTE, layout="random",
                           read_fraction=0.7, pattern_specs=("b", "c"),
                           record_size=8192, seed=seed,
                           priority_levels=2, deadline_slack=0.5)


#: An adaptive controller that actually acts in the tiny run: sheds overdue
#: sessions every 0.1 s, so checkpoints land mid-control-interval with both
#: completions and rejections already folded.
CONTROLLER = {"target_p99": 0.4, "interval": 0.1, "min_samples": 3,
              "shed": True, "shed_age": 0.3}


def run_stamped(seed=0, **kwargs):
    return run_service("disk-directed", stamped_workload(seed),
                       machine_config=MachineConfig(**MACHINE), seed=seed,
                       retain_requests=False, **kwargs)


class TestAdmissionCheckpointing:
    """Checkpoint/resume with the admission layer engaged.

    The checkpoint deliberately does *not* restore controller state — a
    resumed replay re-runs the whole simulation and re-derives every
    observation, K change and shed decision — so the pin is the same as
    ever: the resumed envelope equals the uninterrupted one, controller
    field included.
    """

    @pytest.mark.parametrize("every", (1, 7))
    def test_resume_with_active_controller(self, tmp_path, every):
        reference = run_stamped(controller=CONTROLLER)
        assert reference.shed_requests > 0   # the shedder really folded
        path = tmp_path / "run.ckpt"
        checkpointed = run_stamped(controller=CONTROLLER,
                                   checkpoint_every=every,
                                   checkpoint_path=path)
        assert envelope(checkpointed) == envelope(reference)
        resumed = run_stamped(controller=CONTROLLER, resume_from=path)
        assert envelope(resumed) == envelope(reference)

    def test_resume_with_edf_drops(self, tmp_path):
        reference = run_stamped(admission_policy="edf")
        assert reference.dropped_requests > 0
        path = tmp_path / "run.ckpt"
        run_stamped(admission_policy="edf", checkpoint_every=7,
                    checkpoint_path=path)
        resumed = run_stamped(admission_policy="edf", resume_from=path)
        assert envelope(resumed) == envelope(reference)

    def test_checkpoint_carries_admission_state(self, tmp_path):
        path = tmp_path / "run.ckpt"
        run_stamped(controller=CONTROLLER, checkpoint_every=7,
                    checkpoint_path=path)
        checkpoint = RunCheckpoint.load(path)
        # Two priority classes were stamped, so the per-class sketches are
        # part of the fold state; the controller snapshot rides along for
        # offline inspection.
        assert set(checkpoint.class_sketches) <= {"0", "1"}
        assert checkpoint.class_sketches
        assert checkpoint.controller["target_p99"] == \
            CONTROLLER["target_p99"]
        assert checkpoint.aggregates["shed"] + \
            checkpoint.aggregates["dropped"] + \
            checkpoint.aggregates["completed"] == len(checkpoint.folded)

    def test_idle_controller_only_changes_the_controller_field(self):
        # A controller that can never act (interval past the makespan, no
        # shedding) must leave the simulation bit-identical to running
        # without one; only the result's controller snapshot differs.
        plain = run_stamped()
        idle = run_stamped(controller={"target_p99": 1000.0,
                                       "interval": 1000.0, "shed": False})
        plain_env, idle_env = envelope(plain), envelope(idle)
        assert plain_env.pop("controller") == {}
        assert idle_env.pop("controller")["k_changes"] == 0
        assert idle_env == plain_env

    def test_policy_change_rejects_foreign_checkpoint(self, tmp_path):
        # The admission discipline is part of the run's identity: a FIFO
        # checkpoint must not seed an SJF run.
        path = tmp_path / "run.ckpt"
        run_stamped(checkpoint_every=7, checkpoint_path=path)
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_stamped(admission_policy="sjf", resume_from=path)

    def test_round_trip_preserves_admission_payload(self, tmp_path):
        sketch = {"format": 1, "precision": 0.01, "zero": 0,
                  "buckets": [], "stats": {"count": 0, "total": 0.0,
                                           "min": None, "max": None}}
        saved = RunCheckpoint(
            fingerprint="f" * 64, folded=IndexRanges([[0, 4]]),
            response_sketch=dict(sketch), service_sketch=dict(sketch),
            aggregates={"completed": 4}, max_in_flight=2,
            class_sketches={"0": dict(sketch), "1": dict(sketch)},
            controller={"k": 3, "intervals": 11, "last_p99": 0.25})
        path = tmp_path / "admission.ckpt"
        saved.save(path)
        loaded = RunCheckpoint.load(path)
        assert loaded.class_sketches == saved.class_sketches
        assert loaded.controller == saved.controller


class TestRunFingerprint:
    BASE = dict(workload_dict={"n_requests": 10}, method="disk-directed",
                machine_dict={"n_disks": 4}, trial_seed=0)

    def test_stable(self):
        assert run_fingerprint(**self.BASE) == run_fingerprint(**self.BASE)

    @pytest.mark.parametrize("change", (
        {"trial_seed": 1},
        {"method": "traditional"},
        {"workload_dict": {"n_requests": 11}},
        {"machine_dict": {"n_disks": 8}},
        {"disk_scheduler": "shared-cscan"},
        {"fault_description": [{"disk": 0}]},
        {"admission": "sjf(aging=30)"},
        {"controller": {"target_p99": 2.0}},
    ))
    def test_every_axis_changes_it(self, change):
        assert run_fingerprint(**{**self.BASE, **change}) != \
            run_fingerprint(**self.BASE)

    def test_defaults_match_explicit_fifo(self):
        # The default axes spell the pre-admission-layer identity, so old
        # call sites and new ones produce the same fingerprint.
        assert run_fingerprint(**self.BASE) == run_fingerprint(
            **self.BASE, admission="fifo", controller=None)


class TestIndexRanges:
    def test_merges_contiguous_inserts(self):
        ranges = IndexRanges()
        for index in (0, 1, 2, 5, 4, 3):
            ranges.add(index)
        assert ranges.as_list() == [[0, 6]]
        assert len(ranges) == 6

    def test_out_of_order_membership(self):
        ranges = IndexRanges()
        for index in (10, 2, 7, 2, 11):
            ranges.add(index)
        assert len(ranges) == 4
        for index in (2, 7, 10, 11):
            assert index in ranges
        for index in (0, 3, 9, 12):
            assert index not in ranges

    def test_round_trip(self):
        ranges = IndexRanges()
        for index in (3, 1, 4, 1, 5, 9, 2, 6):
            ranges.add(index)
        assert IndexRanges(ranges.as_list()).as_list() == ranges.as_list()

    @pytest.mark.parametrize("bad", (
        [[5, 5]],             # empty
        [[7, 3]],             # inverted
        [[0, 4], [2, 6]],     # overlapping
        [[5, 6], [0, 2]],     # unsorted
    ))
    def test_invalid_ranges_rejected(self, bad):
        with pytest.raises(ValueError):
            IndexRanges(bad)
