"""Tests for the heavy-tailed file-size sampler."""

import statistics

import pytest

from repro.workload import ServiceWorkload
from repro.workload.sizes import (
    SIZE_DISTRIBUTIONS,
    file_size_rng,
    sample_file_size,
    sample_file_sizes,
)

KILOBYTE = 1024
MEGABYTE = 2 ** 20


class TestDeterminism:
    def test_size_is_pure_function_of_seed_and_index(self):
        for distribution in ("pareto", "lognormal"):
            first = sample_file_size(distribution, MEGABYTE, 3, 5)
            again = sample_file_size(distribution, MEGABYTE, 3, 5)
            assert first == again

    def test_independent_of_population_size(self):
        # File 2's size does not change when more files exist: each draw is
        # keyed by (seed, index), never by a shared sequential stream.
        few = sample_file_sizes("pareto", MEGABYTE, 4, 3)
        many = sample_file_sizes("pareto", MEGABYTE, 12, 3)
        assert few == many[:4]

    def test_different_seeds_and_indices_decorrelate(self):
        across_seeds = {sample_file_size("pareto", MEGABYTE, seed, 0)
                        for seed in range(20)}
        across_files = {sample_file_size("pareto", MEGABYTE, 0, index)
                        for index in range(20)}
        assert len(across_seeds) > 10
        assert len(across_files) > 10

    def test_rng_streams_are_reproducible(self):
        assert file_size_rng(1, 2).integers(1 << 30) == \
            file_size_rng(1, 2).integers(1 << 30)


class TestRoundingAndBounds:
    def test_sizes_are_record_multiples(self):
        for index in range(50):
            size = sample_file_size("pareto", MEGABYTE, 0, index,
                                    granularity=8192)
            assert size % 8192 == 0
            assert size >= 8192

    def test_cap_is_respected_and_granular(self):
        cap = 4 * MEGABYTE + 5000  # deliberately not a granularity multiple
        for index in range(200):
            size = sample_file_size("pareto", MEGABYTE, 0, index,
                                    alpha=1.1, granularity=8192, max_size=cap)
            assert size <= (cap // 8192) * 8192
            assert size % 8192 == 0

    def test_fixed_is_exact(self):
        assert sample_file_size("fixed", MEGABYTE, 0, 7) == MEGABYTE

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            sample_file_size("zipf", MEGABYTE, 0, 0)
        with pytest.raises(ValueError):
            sample_file_size("pareto", MEGABYTE, 0, 0, alpha=1.0)
        with pytest.raises(ValueError):
            sample_file_size("lognormal", MEGABYTE, 0, 0, sigma=0.0)
        with pytest.raises(ValueError):
            sample_file_size("fixed", 100, 0, 0, granularity=8192)
        with pytest.raises(ValueError):
            sample_file_size("pareto", MEGABYTE, 0, 0, max_size=100)


class TestTailShape:
    """Tail-index sanity: heavier parameters produce heavier empirical tails."""

    def _draws(self, distribution, n=2000, **kwargs):
        return sample_file_sizes(distribution, MEGABYTE, n, 11,
                                 granularity=8, max_size=10_000 * MEGABYTE,
                                 **kwargs)

    def test_mean_tracks_target_when_tail_is_light(self):
        draws = self._draws("pareto", alpha=3.0)
        assert statistics.mean(draws) == pytest.approx(MEGABYTE, rel=0.15)
        draws = self._draws("lognormal", sigma=0.5)
        assert statistics.mean(draws) == pytest.approx(MEGABYTE, rel=0.15)

    def test_smaller_alpha_is_heavier(self):
        def p99_over_median(draws):
            ordered = sorted(draws)
            return ordered[int(0.99 * len(ordered))] / statistics.median(draws)

        heavy = p99_over_median(self._draws("pareto", alpha=1.2))
        light = p99_over_median(self._draws("pareto", alpha=3.0))
        assert heavy > 3 * light

    def test_pareto_tail_index_roughly_recovered(self):
        # Hill estimator over the top 5% of a big sample should land near
        # the configured tail index (a shape check, not a precision claim).
        alpha = 1.5
        draws = sorted(self._draws("pareto", alpha=alpha))
        tail = draws[int(0.95 * len(draws)):]
        threshold = tail[0]
        import math
        hill = len(tail) / sum(math.log(x / threshold) for x in tail[1:])
        assert 1.0 < hill < 2.2

    def test_every_distribution_name_is_exercised(self):
        assert set(SIZE_DISTRIBUTIONS) == {"fixed", "pareto", "lognormal"}


class TestWorkloadIntegration:
    def test_workload_sampling_uses_record_granularity(self):
        workload = ServiceWorkload(n_files=6, file_size=256 * KILOBYTE,
                                   size_distribution="lognormal",
                                   size_sigma=1.5, record_sizes=(8, 8192))
        assert workload.size_granularity == 8192
        sizes = workload.sample_sizes(3)
        assert len(sizes) == 6
        assert all(size % 8192 == 0 for size in sizes)
        assert sizes == workload.sample_sizes(3)
        assert sizes != workload.sample_sizes(4)

    def test_default_cap_bounds_draws(self):
        workload = ServiceWorkload(n_files=64, file_size=64 * KILOBYTE,
                                   size_distribution="pareto", size_alpha=1.1)
        assert max(workload.sample_sizes(0)) <= 16 * 64 * KILOBYTE

    def test_fixed_workload_requires_granular_file_size(self):
        with pytest.raises(ValueError):
            ServiceWorkload(file_size=100_000, record_sizes=(8, 8192))

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            ServiceWorkload(size_distribution="zipf")
