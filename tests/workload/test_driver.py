"""Tests for the service driver: admission invariants, conservation, determinism."""

import dataclasses

import pytest

from repro.machine import MachineConfig
from repro.workload import (
    ServiceDriver,
    ServiceWorkload,
    build_service_machine,
    percentile,
    run_service,
)

KILOBYTE = 1024


def small_workload(**overrides):
    base = dict(n_requests=6, arrival="poisson", arrival_rate=100.0,
                concurrency=2, n_files=2, file_size=64 * KILOBYTE,
                layout="contiguous", read_fraction=0.5,
                pattern_specs=("b", "c"), seed=11)
    base.update(overrides)
    return ServiceWorkload(**base)


def small_machine():
    return MachineConfig(n_cps=2, n_iops=1, n_disks=1)


class TestWorkloadValidation:
    @pytest.mark.parametrize("bad", [
        dict(n_requests=0),
        dict(concurrency=0),
        dict(n_files=0),
        dict(read_fraction=1.5),
        dict(pattern_specs=()),
        dict(file_assignment="sticky"),
        dict(arrival="bursty"),
    ])
    def test_bad_field_rejected(self, bad):
        workload = None
        with pytest.raises(ValueError):
            workload = small_workload(**bad)
            # the arrival spec is only resolved when the process is built
            workload.make_arrival_process()


class TestAdmission:
    @pytest.mark.parametrize("concurrency", [1, 2, 3])
    def test_in_flight_never_exceeds_k(self, concurrency):
        # Saturating open-loop arrivals: all requests arrive almost at once,
        # so without the admission scheduler far more than K would overlap.
        workload = small_workload(n_requests=7, arrival_rate=100000.0,
                                  concurrency=concurrency)
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        assert result.max_in_flight <= concurrency
        assert result.concurrency == concurrency

    def test_saturating_load_reaches_k(self):
        workload = small_workload(n_requests=7, arrival_rate=100000.0,
                                  concurrency=3)
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        assert result.max_in_flight == 3

    def test_think_time_not_charged_before_first_request(self):
        # Think time separates a completion from the client's next request;
        # each client's first request is issued immediately at t=0.
        workload = small_workload(arrival="closed", concurrency=2,
                                  think_time=0.5)
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        first_wave = [record for record in result.requests
                      if record["index"] < 2]
        assert all(record["arrival_time"] == 0.0 for record in first_wave)
        later = [record for record in result.requests if record["index"] >= 2]
        assert all(record["arrival_time"] >= 0.5 for record in later)

    def test_closed_loop_population_is_k(self):
        workload = small_workload(arrival="closed", concurrency=2)
        result = run_service("traditional", workload,
                             machine_config=small_machine())
        assert result.max_in_flight <= 2
        assert len(result.requests) == workload.n_requests


class TestConservation:
    @pytest.mark.parametrize("method",
                             ["disk-directed", "traditional", "two-phase"])
    @pytest.mark.parametrize("read_fraction", [0.0, 0.5, 1.0])
    def test_bytes_requested_equals_bytes_moved(self, method, read_fraction):
        workload = small_workload(read_fraction=read_fraction)
        result = run_service(method, workload, machine_config=small_machine())
        assert result.conserves_bytes()
        for record in result.requests:
            assert record["bytes_moved"] == record["bytes_requested"] > 0
        assert result.total_bytes == sum(
            record["bytes_requested"] for record in result.requests)

    def test_every_request_is_recorded_once(self):
        workload = small_workload(n_requests=9, concurrency=3)
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        assert sorted(record["index"] for record in result.requests) == \
            list(range(9))


class TestClockAndTimes:
    def test_request_times_are_ordered(self):
        workload = small_workload()
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        for record in result.requests:
            assert record["arrival_time"] <= record["admitted_time"] \
                <= record["completed_time"]
        assert result.end_time >= result.start_time
        assert result.elapsed > 0
        assert result.throughput_mb > 0

    def test_response_time_metrics(self):
        workload = small_workload()
        result = run_service("traditional", workload,
                             machine_config=small_machine())
        times = result.response_times
        assert len(times) == workload.n_requests
        assert all(time > 0 for time in times)
        assert result.response_percentile(0.0) == pytest.approx(min(times))
        assert result.response_percentile(1.0) == pytest.approx(max(times))
        assert min(times) <= result.mean_response_time <= max(times)
        assert result.response_percentile(0.5) <= result.response_percentile(0.99)


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        workload = small_workload()
        first = run_service("disk-directed", workload,
                            machine_config=small_machine())
        second = run_service("disk-directed", workload,
                             machine_config=small_machine())
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_seed_changes_the_stream(self):
        base = run_service("disk-directed", small_workload(),
                           machine_config=small_machine())
        other = run_service("disk-directed", small_workload(seed=12),
                            machine_config=small_machine())
        assert dataclasses.asdict(base) != dataclasses.asdict(other)

    def test_plan_is_independent_of_concurrency(self):
        # Request i's file/pattern must depend only on (seed, i) — not on how
        # many collectives run at once.
        config = small_machine()
        plans = []
        for concurrency in (1, 3):
            workload = small_workload(concurrency=concurrency)
            machine, implementation, files = build_service_machine(
                workload, machine_config=config, method="disk-directed")
            driver = ServiceDriver(machine, implementation, files, workload)
            plans.append([
                (file.name, pattern.name)
                for file, pattern in (driver.plan_request(workload.seed, index)
                                      for index in range(workload.n_requests))
            ])
        assert plans[0] == plans[1]


class TestFileAssignment:
    def test_round_robin_covers_files_in_order(self):
        workload = small_workload(n_files=2, n_requests=6,
                                  file_assignment="round-robin")
        result = run_service("disk-directed", workload,
                             machine_config=small_machine())
        names = [record["file"] for record in result.requests]
        assert names == ["svc-0", "svc-1"] * 3

    def test_random_assignment_uses_request_rng(self):
        workload = small_workload(n_files=2, n_requests=12,
                                  file_assignment="random")
        first = run_service("disk-directed", workload,
                            machine_config=small_machine())
        second = run_service("disk-directed", workload,
                             machine_config=small_machine())
        assert [record["file"] for record in first.requests] == \
            [record["file"] for record in second.requests]


class TestSharedImplementation:
    def test_one_implementation_serves_the_whole_stream(self):
        # The drivers' point: a single re-entrant file system instance, not
        # one per request.
        workload = small_workload()
        machine, implementation, files = build_service_machine(
            workload, machine_config=small_machine(), method="disk-directed")
        driver = ServiceDriver(machine, implementation, files, workload)
        result = driver.run(workload.seed)
        assert result.counters["bytes_moved"] == result.total_bytes
        assert not implementation.active_sessions  # all sessions retired
        # Per-session completion tags must not accumulate: a long stream
        # would otherwise leak one dead mailbox queue per collective.
        for cp_node in machine.cps:
            dead_tags = [tag for tag in cp_node.mailbox._queues
                         if isinstance(tag, tuple) and tag[0] == "ddio-done"]
            assert dead_tags == []


class TestPercentileHelper:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([4.0], 0.99) == 4.0

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 0.5) == pytest.approx(0.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.25) == pytest.approx(1.75)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
