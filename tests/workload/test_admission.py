"""The admission layer: policy orderings, drops, aging and the controller.

Three layers of pinning, per the determinism contract of
``repro.workload.admission``:

* **Queue mechanics** — the :class:`AdmissionQueue` grant order under each
  policy matches an independent pure-Python expression of the same spec
  (property-tested with hypothesis when installed), FIFO matches the
  counting-semaphore :class:`Resource` it replaces grant-for-grant, and EDF
  drops exactly the sessions whose deadlines are unmeetable at grant time.
* **Starvation** — the size-aware policy's aging bound really does bound the
  admission wait of a Pareto-tail giant under sustained overload; pure SJF
  (the bound disabled) demonstrably starves it longer.
* **Controller** — AIMD K adaptation, the min-samples gate, load shedding
  and the serialisable state snapshot.
"""

import math

import pytest

from repro.machine import MachineConfig
from repro.sim import Environment, Resource
from repro.workload import ServiceWorkload, run_service
from repro.workload.admission import (
    ADMITTED,
    DEFAULT_AGING_BOUND,
    DROPPED,
    SHED,
    AdaptiveConcurrencyController,
    AdmissionQueue,
    AdmissionTicket,
    ControllerConfig,
    EDFPolicy,
    FIFOPolicy,
    PriorityPolicy,
    SJFPolicy,
    make_admission_policy,
)

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in minimal CI images
    HAVE_HYPOTHESIS = False

KILOBYTE = 1024


def ticket(index, size=KILOBYTE, priority=0, deadline=None, enqueue=0.0,
           arrival=None):
    return AdmissionTicket(index=index,
                           arrival_time=enqueue if arrival is None
                           else arrival,
                           enqueue_time=enqueue, size_bytes=size,
                           priority=priority, deadline=deadline)


def drain_schedule(policy, tickets):
    """Feed *tickets* through a 1-slot queue; return (admit order, drops).

    A blocker holds the single slot while every ticket enqueues, then the
    slot is released repeatedly — each release hands it to the policy's next
    choice (dropping unmeetable sessions on the way), so the recovered admit
    order is exactly the policy's total order over the backlog.  Time never
    advances: everything happens at now == 0.
    """
    env = Environment()
    queue = AdmissionQueue(env, capacity=1, policy=policy)
    blocker = queue.request(ticket(-1))
    assert blocker.admitted
    grants = [queue.request(t) for t in tickets]
    admitted = []
    queue.release(blocker)
    while queue.count:
        current = queue._users[0]
        admitted.append(current.ticket.index)
        queue.release(current)
    dropped = {grant.ticket.index for grant in grants
               if grant.outcome == DROPPED}
    assert all(grant.outcome in (ADMITTED, DROPPED) for grant in grants)
    return admitted, dropped


def reference_schedule(policy_name, tickets, now=0.0):
    """An independent pure-Python model of each policy's total order."""
    if policy_name == "fifo":
        return [t.index for t in tickets], set()
    if policy_name == "sjf":
        return [t.index for t in
                sorted(tickets, key=lambda t: (t.size_bytes, t.index))], set()
    if policy_name == "priority":
        order = sorted(range(len(tickets)),
                       key=lambda i: (tickets[i].priority, i))
        return [tickets[i].index for i in order], set()
    if policy_name == "edf":
        waiting = list(tickets)
        admitted, dropped = [], set()
        while waiting:
            head = min(waiting, key=lambda t: (
                math.inf if t.deadline is None else t.deadline, t.index))
            waiting.remove(head)
            if head.deadline is not None and now > head.deadline:
                dropped.add(head.index)
            else:
                admitted.append(head.index)
        return admitted, dropped
    raise AssertionError(policy_name)


def make_tickets(rows):
    """rows: (size, priority, deadline) triples -> distinct-index tickets."""
    return [ticket(index, size=size, priority=priority, deadline=deadline)
            for index, (size, priority, deadline) in enumerate(rows)]


POLICIES = {
    "fifo": FIFOPolicy,
    "sjf": lambda: SJFPolicy(aging_bound=math.inf),
    "priority": PriorityPolicy,
    "edf": EDFPolicy,
}

EXAMPLE_ROWS = [
    (8192, 1, None),
    (512, 0, 3.0),
    (65536, 2, -1.0),
    (512, 1, 0.5),
    (4096, 0, None),
    (1024, 2, -0.5),
]


class TestPolicyOrderings:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_example_matches_reference(self, name):
        tickets = make_tickets(EXAMPLE_ROWS)
        admitted, dropped = drain_schedule(POLICIES[name](), tickets)
        expect_admitted, expect_dropped = reference_schedule(name, tickets)
        assert admitted == expect_admitted
        assert dropped == expect_dropped

    if HAVE_HYPOTHESIS:
        @given(rows=st.lists(
            st.tuples(st.integers(min_value=1, max_value=2 ** 20),
                      st.integers(min_value=0, max_value=3),
                      st.one_of(st.none(),
                                st.floats(min_value=-5.0, max_value=5.0,
                                          allow_nan=False))),
            min_size=1, max_size=24),
            name=st.sampled_from(sorted(POLICIES)))
        @settings(max_examples=120, deadline=None)
        def test_property_matches_reference(self, rows, name):
            tickets = make_tickets(rows)
            admitted, dropped = drain_schedule(POLICIES[name](), tickets)
            expect_admitted, expect_dropped = reference_schedule(name, tickets)
            assert admitted == expect_admitted
            assert dropped == expect_dropped

    def test_edf_drops_exactly_the_unmeetable(self):
        # At grant time now == 0: deadlines < 0 are unmeetable, everything
        # else (including no-deadline sessions) must be admitted.
        tickets = make_tickets([(1, 0, -2.0), (1, 0, 1.0), (1, 0, None),
                                (1, 0, -0.001), (1, 0, 0.0)])
        admitted, dropped = drain_schedule(EDFPolicy(), tickets)
        assert dropped == {0, 3}
        assert set(admitted) == {1, 2, 4}

    def test_edf_service_rate_tightens_meetability(self):
        # With a rate estimate, a session whose transfer cannot finish by
        # its deadline is dropped even though the deadline has not passed.
        policy = EDFPolicy(service_rate=1000.0)
        assert policy.unmeetable(ticket(0, size=2000, deadline=1.0), now=0.0)
        assert not policy.unmeetable(ticket(0, size=500, deadline=1.0),
                                     now=0.0)
        assert not policy.unmeetable(ticket(0, size=10 ** 9, deadline=None),
                                     now=0.0)

    def test_edf_checks_meetability_at_grant_time(self):
        # The drop decision happens when the slot frees, not at enqueue: a
        # deadline that was meetable at arrival but expires while queued
        # must be dropped at its grant instant.
        env = Environment()
        queue = AdmissionQueue(env, capacity=1, policy=EDFPolicy())
        blocker = queue.request(ticket(-1))
        grant = queue.request(ticket(0, deadline=1.0))
        done = []

        def holder(env):
            yield env.timeout(2.0)   # past the waiter's deadline
            queue.release(blocker)
            done.append(env.now)

        env.process(holder(env))
        env.run()
        assert done and grant.outcome == DROPPED
        assert queue.dropped == 1


class TestFIFOQueueMatchesResource:
    """The new queue's grant mechanics, pinned against the Resource spec."""

    @staticmethod
    def _sequence(make, request, release):
        """Drive one K=2 scenario; return the observable grant sequence."""
        handle = make()
        events = []
        grants = [request(handle, index) for index in range(5)]
        events.append([bool(grant.triggered) for grant in grants])
        release(handle, grants[0])
        events.append([bool(grant.triggered) for grant in grants])
        release(handle, grants[1])
        release(handle, grants[2])
        events.append([bool(grant.triggered) for grant in grants])
        return events

    def test_grant_sequence_identical(self):
        resource_events = self._sequence(
            lambda: Resource(Environment(), capacity=2),
            lambda resource, index: resource.request(),
            lambda resource, grant: resource.release(grant))
        queue_events = self._sequence(
            lambda: AdmissionQueue(Environment(), capacity=2,
                                   policy=FIFOPolicy()),
            lambda queue, index: queue.request(ticket(index)),
            lambda queue, grant: queue.release(grant))
        assert queue_events == resource_events

    def test_immediate_grant_is_synchronous(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=1)
        grant = queue.request(ticket(0))
        assert grant.triggered and grant.admitted
        assert queue.count == 1 and queue.queue_length == 0

    def test_release_of_unknown_grant_raises(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=1)
        queue.request(ticket(0))
        other = AdmissionQueue(env, capacity=1).request(ticket(1))
        with pytest.raises(ValueError):
            queue.release(other)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(Environment(), capacity=0)


class TestQueueControls:
    def test_set_capacity_growth_admits_now(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=1)
        first = queue.request(ticket(0))
        second = queue.request(ticket(1))
        assert first.admitted and not second.triggered
        queue.set_capacity(3)
        assert second.admitted
        queue.set_capacity(1)          # shrink drains naturally
        assert queue.count == 2        # slots are never revoked
        with pytest.raises(ValueError):
            queue.set_capacity(0)

    def test_shed_older_than_drops_by_arrival_age(self):
        env = Environment()
        queue = AdmissionQueue(env, capacity=1)
        queue.request(ticket(0))
        old = queue.request(ticket(1, enqueue=0.0, arrival=0.0))
        fresh = queue.request(ticket(2, enqueue=0.0, arrival=4.0))

        def clock(env):
            yield env.timeout(5.0)

        env.process(clock(env))
        env.run()
        shed = queue.shed_older_than(3.0, now=env.now)
        assert shed == 1 and queue.shed == 1
        assert old.outcome == SHED and not fresh.triggered
        assert queue.queue_length == 1


class TestAgingBoundsStarvation:
    """Satellite: SJF must not starve large sessions indefinitely."""

    # Seed 0 draws one 272 KB giant into a 24 KB-median stream, arriving at
    # index 8 — after the overload backlog has formed, so pure SJF keeps
    # jumping smaller jobs ahead of it.
    WORKLOAD = dict(n_requests=36, arrival="poisson", arrival_rate=400.0,
                    concurrency=2, n_files=6, file_size=64 * KILOBYTE,
                    layout="random", pattern_specs=("b",), record_size=8192,
                    size_distribution="pareto", size_alpha=1.1, seed=0)
    MACHINE = dict(n_cps=2, n_iops=2, n_disks=4)

    @staticmethod
    def _waits(result):
        records = [record for record in result.requests
                   if record.get("admitted_time") is not None]
        giant = max(records, key=lambda record: record["bytes_requested"])
        max_wait = max(record["admitted_time"] - record["arrival_time"]
                       for record in records)
        max_service = max(record["completed_time"] - record["admitted_time"]
                          for record in records)
        return (giant["admitted_time"] - giant["arrival_time"],
                max_wait, max_service)

    def test_aging_bounds_giant_wait_under_pareto_overload(self):
        bound = 0.4
        workload = ServiceWorkload(**self.WORKLOAD)
        machine = MachineConfig(**self.MACHINE)
        aged = run_service("disk-directed", workload, machine_config=machine,
                           admission_policy="sjf", admission_aging=bound)
        pure = run_service("disk-directed", workload, machine_config=machine,
                           admission_policy=SJFPolicy(
                               aging_bound=math.inf))
        aged_giant, aged_max, aged_service = self._waits(aged)
        pure_giant, pure_max, _ = self._waits(pure)
        # Pure SJF starves the giant behind every smaller job (its wait is
        # several times the aging bound); once overdue under the bounded
        # policy it jumps the size order and is admitted within one service
        # completion of aging out.
        assert pure_giant > 2 * aged_giant
        assert aged_giant <= bound + aged_service + 1e-9
        assert aged_max < pure_max
        assert aged.conserves_bytes() and pure.conserves_bytes()

    def test_default_bound_applies_when_unset(self):
        policy = make_admission_policy("sjf")
        assert policy.aging_bound == DEFAULT_AGING_BOUND
        assert make_admission_policy("sjf", aging_bound=2.5).aging_bound == 2.5

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            SJFPolicy(aging_bound=0.0)


class TestMakeAdmissionPolicy:
    def test_names_and_instances(self):
        assert isinstance(make_admission_policy("fifo"), FIFOPolicy)
        assert isinstance(make_admission_policy("priority"), PriorityPolicy)
        edf = make_admission_policy("edf", service_rate=100.0)
        assert isinstance(edf, EDFPolicy) and edf.service_rate == 100.0
        original = SJFPolicy(aging_bound=1.0)
        assert make_admission_policy(original) is original

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission_policy("lifo")

    def test_describe_is_stable_identity(self):
        assert make_admission_policy("fifo").describe() == "fifo"
        assert SJFPolicy(aging_bound=30.0).describe() == "sjf(aging=30)"
        assert EDFPolicy(service_rate=8.0).describe() == "edf(rate=8)"


class TestController:
    def _controller(self, capacity=4, max_k=16, **config):
        config.setdefault("target_p99", 1.0)
        env = Environment()
        queue = AdmissionQueue(env, capacity=capacity)
        controller = AdaptiveConcurrencyController(
            ControllerConfig(**config), queue, max_k=max_k)
        return env, queue, controller

    def test_backs_off_multiplicatively_over_target(self):
        env, queue, controller = self._controller(capacity=8)
        for _ in range(6):
            controller.observe(5.0)     # way over the 1.0 s target
        controller.tick(now=0.5)
        assert controller.k == 4 and queue.capacity == 4
        assert controller.k_changes == 1 and controller.k_min_seen == 4

    def test_grows_additively_under_headroom(self):
        env, queue, controller = self._controller(capacity=4)
        for _ in range(6):
            controller.observe(0.1)     # well under headroom * target
        controller.tick(now=0.5)
        assert controller.k == 5 and queue.capacity == 5
        assert controller.k_max_seen == 5

    def test_holds_inside_the_deadband(self):
        env, queue, controller = self._controller(capacity=4, headroom=0.7)
        for _ in range(6):
            controller.observe(0.9)     # between headroom and target
        controller.tick(now=0.5)
        assert controller.k == 4 and controller.k_changes == 0

    def test_min_samples_gates_action(self):
        env, queue, controller = self._controller(capacity=8, min_samples=5)
        for _ in range(4):
            controller.observe(5.0)
        controller.tick(now=0.5)
        assert controller.k == 8 and controller.last_p99 is None

    def test_respects_bounds(self):
        env, queue, controller = self._controller(capacity=1, max_k=2)
        for _ in range(6):
            controller.observe(5.0)
        controller.tick(now=0.5)
        assert controller.k == 1        # min_k floor
        for _ in range(6):
            controller.observe(0.01)
        controller.tick(now=1.0)
        for _ in range(6):
            controller.observe(0.01)
        controller.tick(now=1.5)
        assert controller.k == 2        # max_k ceiling

    def test_shed_mode_drops_overdue_waiters(self):
        env, queue, controller = self._controller(
            capacity=1, shed=True, shed_age=1.0)
        queue.request(ticket(0))
        waiter = queue.request(ticket(1, arrival=0.0))

        def clock(env):
            yield env.timeout(2.0)

        env.process(clock(env))
        env.run()
        controller.tick(now=env.now)
        assert waiter.outcome == SHED and controller.shed_total == 1

    def test_exhausted_after_idle_limit(self):
        env, queue, controller = self._controller(idle_limit=3)
        for _ in range(3):
            controller.tick(now=0.0)
        assert controller.exhausted
        controller.observe(0.5)
        controller.tick(now=0.0)
        assert not controller.exhausted

    def test_state_snapshot_is_serialisable(self):
        import json

        env, queue, controller = self._controller(capacity=8)
        for _ in range(6):
            controller.observe(5.0)
        controller.tick(now=0.5)
        state = controller.state()
        assert json.loads(json.dumps(state)) == state
        assert state["k"] == 4 and state["intervals"] == 1
        assert state["observed"] == 6 and state["target_p99"] == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(target_p99=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(target_p99=1.0, interval=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(target_p99=1.0, backoff=1.0)
        with pytest.raises(ValueError):
            ControllerConfig(target_p99=1.0, min_k=0)


class TestDriverIntegration:
    """Driver-level wiring that belongs to this module's contract."""

    WORKLOAD = dict(n_requests=16, arrival="poisson", arrival_rate=300.0,
                    concurrency=2, n_files=3, file_size=64 * KILOBYTE,
                    layout="random", pattern_specs=("b",), record_size=8192,
                    seed=2)
    MACHINE = dict(n_cps=2, n_iops=2, n_disks=4)

    def test_legacy_path_is_fifo_only(self):
        from repro.workload.driver import ServiceDriver, build_service_machine

        workload = ServiceWorkload(**self.WORKLOAD)
        machine, implementation, files = build_service_machine(
            workload, machine_config=MachineConfig(**self.MACHINE))
        with pytest.raises(ValueError, match="FIFO-only"):
            ServiceDriver(machine, implementation, files, workload,
                          admission_policy="sjf", legacy_admission=True)
        with pytest.raises(ValueError, match="no controller"):
            ServiceDriver(machine, implementation, files, workload,
                          controller={"target_p99": 1.0},
                          legacy_admission=True)

    def test_dropped_sessions_never_enter_response_sketch(self):
        workload = ServiceWorkload(deadline_slack=0.01,
                                   **{**self.WORKLOAD, "concurrency": 1})
        result = run_service("disk-directed", workload,
                             machine_config=MachineConfig(**self.MACHINE),
                             admission_policy="edf")
        assert result.dropped_requests > 0
        completed = result.aggregates["completed"]
        assert completed + result.dropped_requests == workload.n_requests
        assert len(result.response_times) == completed
        assert result.conserves_bytes()
        dropped = [record for record in result.requests
                   if record.get("admitted_time") is None]
        assert len(dropped) == result.dropped_requests
        assert all(record["outcome"] == DROPPED and
                   record["bytes_shed"] == record["bytes_requested"]
                   for record in dropped)

    def test_priority_classes_get_per_class_sketches(self):
        workload = ServiceWorkload(priority_levels=3, **self.WORKLOAD)
        result = run_service("disk-directed", workload,
                             machine_config=MachineConfig(**self.MACHINE),
                             admission_policy="priority")
        assert set(result.class_sketches) <= {"0", "1", "2"}
        assert len(result.class_sketches) > 1
        total = sum(sketch["stats"]["count"]
                    for sketch in result.class_sketches.values())
        assert total == workload.n_requests

    def test_single_class_runs_keep_class_sketches_empty(self):
        workload = ServiceWorkload(**self.WORKLOAD)
        result = run_service("disk-directed", workload,
                             machine_config=MachineConfig(**self.MACHINE))
        assert result.class_sketches == {}
