"""Tests for arrival processes: determinism, per-(seed, index) derivation."""

import pytest

from repro.workload.arrival import (
    ClosedLoopArrivals,
    PoissonArrivals,
    make_arrival,
    request_rng,
)


class TestRequestRng:
    def test_pure_function_of_seed_and_index(self):
        first = request_rng(7, 3).random()
        again = request_rng(7, 3).random()
        assert first == again

    def test_independent_of_draw_order(self):
        # Drawing index 5 before index 0 must not change either stream: this
        # is the property that keeps parallel sweeps bit-identical to serial.
        late_first = request_rng(7, 5).random()
        early = request_rng(7, 0).random()
        late_again = request_rng(7, 5).random()
        assert late_first == late_again
        assert early != late_first

    def test_seed_and_index_both_matter(self):
        assert request_rng(1, 0).random() != request_rng(2, 0).random()
        assert request_rng(1, 0).random() != request_rng(1, 1).random()

    def test_pinned_values(self):
        # Pin the derivation: a refactor that silently changes how per-request
        # seeds are derived must fail here, because it would invalidate every
        # cached service result without a schema bump.
        draws = [round(request_rng(0, index).random(), 12) for index in range(3)]
        assert draws == [0.247866117633, 0.084262043696, 0.21298393996]

    def test_purposes_are_independent_streams(self):
        # The arrival gap and the request plan draw from different streams:
        # adding a draw to one consumer can never perturb the other.
        from repro.workload.arrival import PURPOSE_ARRIVAL, PURPOSE_PLAN
        arrival_draw = request_rng(3, 0, purpose=PURPOSE_ARRIVAL).random()
        plan_draw = request_rng(3, 0, purpose=PURPOSE_PLAN).random()
        assert arrival_draw != plan_draw
        assert request_rng(3, 0).random() == plan_draw  # plan is the default


class TestPoissonArrivals:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_times_are_strictly_increasing(self):
        times = PoissonArrivals(100.0).arrival_times(20, trial_seed=1)
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 0

    def test_deterministic_under_fixed_seed(self):
        process = PoissonArrivals(50.0)
        assert process.arrival_times(10, trial_seed=4) == \
            process.arrival_times(10, trial_seed=4)
        assert process.arrival_times(10, trial_seed=4) != \
            process.arrival_times(10, trial_seed=5)

    def test_gap_depends_only_on_seed_and_index(self):
        # The 7th gap is the same whether or not the first 6 were computed.
        process = PoissonArrivals(50.0)
        alone = process.interarrival(9, 7)
        within = process.arrival_times(8, trial_seed=9)
        assert within[7] - within[6] == pytest.approx(alone)

    def test_mean_gap_tracks_rate(self):
        times = PoissonArrivals(200.0).arrival_times(400, trial_seed=0)
        mean_gap = times[-1] / len(times)
        assert 0.5 / 200.0 < mean_gap < 2.0 / 200.0

    def test_describe_names_rate(self):
        assert "poisson" in PoissonArrivals(8.0).describe()


class TestClosedLoopArrivals:
    def test_negative_think_rejected(self):
        with pytest.raises(ValueError):
            ClosedLoopArrivals(think_time=-1.0)

    def test_zero_think_is_free(self):
        assert ClosedLoopArrivals().think_time_for(0, 0) == 0.0

    def test_fixed_think_is_constant(self):
        process = ClosedLoopArrivals(think_time=0.25)
        assert [process.think_time_for(3, index) for index in range(4)] == \
            [0.25] * 4

    def test_exponential_think_is_deterministic_per_index(self):
        process = ClosedLoopArrivals(think_time=0.1, exponential_think=True)
        draws = [process.think_time_for(3, index) for index in range(4)]
        assert draws == [process.think_time_for(3, index) for index in range(4)]
        assert len(set(draws)) > 1
        assert all(draw > 0 for draw in draws)


class TestFactory:
    def test_aliases(self):
        assert make_arrival("closed").closed_loop
        assert make_arrival("closed-loop").closed_loop
        assert not make_arrival("poisson").closed_loop
        assert not make_arrival("open").closed_loop

    def test_parameters_forwarded(self):
        poisson = make_arrival("poisson", arrival_rate=12.5)
        assert poisson.rate == 12.5
        closed = make_arrival("closed", think_time=0.5, exponential_think=True)
        assert closed.think_time == 0.5
        assert closed.exponential_think

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_arrival("bursty")
