"""Property tests for the mergeable quantile sketch.

The streaming driver's correctness rests on two claims made in
``repro.workload.aggregate``: the merge is an exact monoid operation
(associative, commutative, empty-sketch identity — so fold order,
checkpoint/restart and multi-host shard merges can never change an answer),
and every quantile estimate is within the documented relative error bound of
the exact sorted-list answer, for *any* input distribution.  This module
pins both, under hypothesis when installed and over a fixed spread of
seeded distributions (uniform, Pareto, lognormal, adversarial) either way.
"""

import math
import random

import pytest

from repro.workload.aggregate import (
    DEFAULT_PRECISION,
    QuantileSketch,
    RunningStats,
    relative_error_bound,
)

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in minimal CI images
    HAVE_HYPOTHESIS = False

#: Quantiles every distribution is checked at, the headline p50/p99 included.
QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def exact_quantile(values, fraction):
    """The sorted-list reference (numpy linear-interpolation convention)."""
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    frac = position - low
    if frac == 0.0:
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def sketch_of(values, precision=DEFAULT_PRECISION):
    sketch = QuantileSketch(precision)
    for value in values:
        sketch.add(value)
    return sketch


def sample(distribution, n, seed):
    """Deterministic draws from the named distribution, including the
    adversarial shapes the error bound must survive."""
    rng = random.Random(seed)
    if distribution == "uniform":
        return [rng.uniform(0.0, 10.0) for _ in range(n)]
    if distribution == "pareto":
        return [rng.paretovariate(1.5) for _ in range(n)]
    if distribution == "lognormal":
        return [rng.lognormvariate(0.0, 2.0) for _ in range(n)]
    if distribution == "sorted":
        return sorted(rng.expovariate(1.0) for _ in range(n))
    if distribution == "reversed":
        return sorted((rng.expovariate(1.0) for _ in range(n)), reverse=True)
    if distribution == "constant":
        return [3.14159] * n
    if distribution == "zero-heavy":
        return [0.0] * (n // 2) + [rng.uniform(0.0, 1.0)
                                   for _ in range(n - n // 2)]
    if distribution == "wide-range":
        return [rng.choice((1e-9, 1e-3, 1.0, 1e3, 1e9)) for _ in range(n)]
    raise ValueError(distribution)


DISTRIBUTIONS = ("uniform", "pareto", "lognormal", "sorted", "reversed",
                 "constant", "zero-heavy", "wide-range")


class TestErrorBound:
    """p50/p99 (and the rest of QUANTILES) vs the sorted reference."""

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_within_stated_relative_error(self, distribution, seed):
        values = sample(distribution, 2000, seed)
        sketch = sketch_of(values)
        bound = relative_error_bound(sketch.precision)
        for fraction in QUANTILES:
            exact = exact_quantile(values, fraction)
            estimate = sketch.quantile(fraction)
            assert abs(estimate - exact) <= bound * exact + 1e-12, \
                f"{distribution} p{fraction * 100:g}: " \
                f"{estimate} vs exact {exact}"

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_quantiles_monotone_in_fraction(self, distribution):
        sketch = sketch_of(sample(distribution, 500, seed=7))
        fractions = [index / 200.0 for index in range(201)]
        estimates = [sketch.quantile(fraction) for fraction in fractions]
        assert all(first <= second + 1e-12 for first, second
                   in zip(estimates, estimates[1:]))

    def test_extremes_are_exact(self):
        values = sample("pareto", 300, seed=3)
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    def test_tightening_precision_tightens_the_bound(self):
        values = sample("lognormal", 2000, seed=5)
        for precision in (3, 5, 7, 9):
            sketch = sketch_of(values, precision=precision)
            bound = relative_error_bound(precision)
            exact = exact_quantile(values, 0.99)
            assert abs(sketch.quantile(0.99) - exact) <= bound * exact + 1e-12


class TestMergeLaws:
    """The monoid laws the streaming fold and shard merge rely on."""

    def _parts(self, seed):
        rng = random.Random(seed)
        distributions = [rng.choice(DISTRIBUTIONS) for _ in range(3)]
        return [sketch_of(sample(distribution, rng.randrange(0, 400),
                                 seed + offset))
                for offset, distribution in enumerate(distributions)]

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_associative(self, seed):
        a, b, c = self._parts(seed)
        left = a.copy().merge(b.copy().merge(c))
        right = a.copy().merge(b).merge(c)
        assert left == right

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_commutative(self, seed):
        a, b, _ = self._parts(seed)
        assert a.copy().merge(b) == b.copy().merge(a)

    @pytest.mark.parametrize("seed", range(5))
    def test_empty_sketch_is_identity(self, seed):
        a, _, _ = self._parts(seed)
        assert a.copy().merge(QuantileSketch()) == a
        assert QuantileSketch().merge(a.copy()) == a

    def test_merge_equals_bulk_add(self):
        first = sample("uniform", 300, seed=11)
        second = sample("pareto", 300, seed=12)
        merged = sketch_of(first).merge(sketch_of(second))
        assert merged == sketch_of(first + second)

    def test_precision_mismatch_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            QuantileSketch(7).merge(QuantileSketch(8))

    def test_merge_rejects_non_sketch(self):
        with pytest.raises(TypeError):
            QuantileSketch().merge([1.0, 2.0])


class TestDomainAndSerialisation:
    def test_rejects_negative_nan_and_inf(self):
        sketch = QuantileSketch()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                sketch.add(bad)

    def test_weighted_add_matches_repetition(self):
        weighted = QuantileSketch()
        weighted.add(2.5, count=5)
        repeated = sketch_of([2.5] * 5)
        assert weighted == repeated

    def test_empty_sketch_answers_zero(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.count == 0

    def test_dict_round_trip(self):
        sketch = sketch_of(sample("wide-range", 200, seed=9))
        restored = QuantileSketch.from_dict(sketch.as_dict())
        assert restored == sketch
        assert restored.quantile(0.99) == sketch.quantile(0.99)

    def test_from_dict_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict({"format": 999})
        with pytest.raises(ValueError):
            QuantileSketch.from_dict("not a sketch")

    def test_running_stats_round_trip(self):
        stats = RunningStats()
        for value in sample("uniform", 50, seed=2):
            stats.add(value)
        restored = RunningStats.from_dict(stats.as_dict())
        assert restored == stats


if HAVE_HYPOTHESIS:
    finite_values = st.lists(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=200)

    class TestHypothesisProperties:
        @given(values=finite_values,
               fraction=st.floats(min_value=0.0, max_value=1.0))
        @settings(max_examples=200, deadline=None)
        def test_any_quantile_within_bound(self, values, fraction):
            sketch = sketch_of(values)
            exact = exact_quantile(values, fraction)
            bound = relative_error_bound(sketch.precision)
            assert abs(sketch.quantile(fraction) - exact) \
                <= bound * exact + 1e-12

        @given(first=finite_values, second=finite_values,
               third=finite_values)
        @settings(max_examples=100, deadline=None)
        def test_merge_monoid_laws(self, first, second, third):
            a, b, c = (sketch_of(part) for part in (first, second, third))
            assert a.copy().merge(b.copy().merge(c.copy())) == \
                a.copy().merge(b.copy()).merge(c.copy())
            assert a.copy().merge(b.copy()) == b.copy().merge(a.copy())
            assert a.copy().merge(QuantileSketch()) == a

        @given(values=finite_values)
        @settings(max_examples=100, deadline=None)
        def test_quantile_monotone(self, values):
            sketch = sketch_of(values)
            fractions = [index / 50.0 for index in range(51)]
            estimates = [sketch.quantile(fraction) for fraction in fractions]
            assert all(low <= high + 1e-12 for low, high
                       in zip(estimates, estimates[1:]))

        @given(values=finite_values)
        @settings(max_examples=100, deadline=None)
        def test_serialisation_round_trip(self, values):
            sketch = sketch_of(values)
            assert QuantileSketch.from_dict(sketch.as_dict()) == sketch
