"""Tests for access patterns: Figure 2 semantics, chunks and pieces."""

import numpy as np
import pytest

from repro.patterns import AllPattern, make_pattern

BLOCK = 8192


class TestFigure2Examples:
    """The worked examples of Figure 2: an 8x8 matrix / 1x8 vector on 4 CPs."""

    FILE = 64 * 8      # 64 records of 8 bytes
    RECORD = 8
    CPS = 4

    def chunk_size(self, name, matrix_dims=None):
        pattern = make_pattern(name, self.FILE, self.RECORD, self.CPS,
                               matrix_dims=matrix_dims)
        first_chunk = next(iter(pattern.chunks_for_cp(0)))
        return first_chunk[1] // self.RECORD

    def test_1d_chunk_sizes(self):
        # rn: the whole vector lands on one CP in a single chunk.
        assert self.chunk_size("rn") == self.FILE // self.RECORD
        # For the figure's 1x8 vector over 4 CPs: rb chunks of 2, rc chunks of 1.
        assert make_pattern("rb", 8 * 8, 8, 4).chunk_count_for_cp(0) == 1
        assert next(iter(make_pattern("rb", 8 * 8, 8, 4).chunks_for_cp(0)))[1] == 16
        assert next(iter(make_pattern("rc", 8 * 8, 8, 4).chunks_for_cp(0)))[1] == 8

    @pytest.mark.parametrize("name,expected_cs", [
        ("rnb", 2), ("rbb", 4), ("rcb", 4), ("rbc", 1), ("rcc", 1), ("rcn", 8),
    ])
    def test_2d_chunk_sizes(self, name, expected_cs):
        assert self.chunk_size(name, matrix_dims=(8, 8)) == expected_cs

    @pytest.mark.parametrize("name,grid", [
        ("rnb", (1, 4)), ("rbb", (2, 2)), ("rcb", (2, 2)),
        ("rbc", (2, 2)), ("rcc", (2, 2)), ("rcn", (4, 1)),
    ])
    def test_cp_grids(self, name, grid):
        pattern = make_pattern(name, self.FILE, self.RECORD, self.CPS,
                               matrix_dims=(8, 8))
        assert (pattern.grid_rows, pattern.grid_cols) == grid

    def test_every_cp_gets_equal_share(self):
        for name in ("rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn"):
            pattern = make_pattern(name, self.FILE, self.RECORD, self.CPS,
                                   matrix_dims=(8, 8))
            shares = {pattern.bytes_for_cp(cp) for cp in range(self.CPS)}
            assert shares == {self.FILE // self.CPS}

    def test_rn_gives_everything_to_cp0(self):
        pattern = make_pattern("rn", self.FILE, self.RECORD, self.CPS)
        assert pattern.bytes_for_cp(0) == self.FILE
        assert pattern.bytes_for_cp(1) == 0
        assert pattern.participating_cps() == [0]


class TestAllPattern:
    def test_every_cp_reads_whole_file(self):
        pattern = make_pattern("ra", 16 * BLOCK, BLOCK, 4)
        assert isinstance(pattern, AllPattern)
        for cp in range(4):
            assert pattern.bytes_for_cp(cp) == 16 * BLOCK
            assert list(pattern.chunks_for_cp(cp)) == [(0, 16 * BLOCK)]
        assert pattern.total_transfer_bytes() == 4 * 16 * BLOCK

    def test_pieces_give_full_block_to_every_cp(self):
        pattern = make_pattern("ra", 16 * BLOCK, BLOCK, 4)
        pieces = pattern.pieces_in_block(3, BLOCK)
        assert len(pieces) == 4
        assert all(piece.n_bytes == BLOCK and piece.n_pieces == 1 for piece in pieces)

    def test_owners_undefined(self):
        pattern = make_pattern("ra", 16 * BLOCK, BLOCK, 4)
        with pytest.raises(ValueError):
            pattern.owners_of(np.arange(4))

    def test_write_all_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("wa", 16 * BLOCK, BLOCK, 4)


class TestChunks:
    def test_chunks_are_sorted_and_disjoint(self):
        pattern = make_pattern("rcb", 2 ** 18, 8, 16)
        for cp in (0, 5, 15):
            last_end = -1
            for offset, length in pattern.chunks_for_cp(cp):
                assert offset > last_end
                assert length > 0
                last_end = offset + length - 1

    def test_chunks_cover_exactly_the_cps_bytes(self):
        pattern = make_pattern("rbc", 2 ** 18, 8, 16)
        for cp in range(16):
            total = sum(length for _offset, length in pattern.chunks_for_cp(cp))
            assert total == pattern.bytes_for_cp(cp)

    def test_chunks_merge_across_batches(self):
        # rb gives each CP one single huge contiguous chunk even when the
        # record count exceeds the internal batching granularity.
        pattern = make_pattern("rb", 2 ** 20, 8, 16)
        chunks = list(pattern.chunks_for_cp(3))
        assert len(chunks) == 1
        assert chunks[0][1] == 2 ** 20 // 16

    def test_write_patterns_mirror_read_patterns(self):
        read = make_pattern("rcb", 2 ** 16, 8, 16)
        write = make_pattern("wcb", 2 ** 16, 8, 16)
        assert read.is_read and write.is_write
        for cp in (0, 7):
            assert list(read.chunks_for_cp(cp)) == list(write.chunks_for_cp(cp))


class TestPieces:
    @pytest.mark.parametrize("record_size", [8, 1024, 8192])
    def test_pieces_partition_each_block(self, record_size):
        file_size = 64 * BLOCK
        pattern = make_pattern("rcc", file_size, record_size, 16)
        for block in (0, 7, 63):
            pieces = pattern.pieces_in_block(block, BLOCK)
            assert sum(piece.n_bytes for piece in pieces) == BLOCK
            assert all(piece.n_pieces >= 1 for piece in pieces)

    def test_block_beyond_file_is_empty(self):
        pattern = make_pattern("rb", 4 * BLOCK, BLOCK, 4)
        assert pattern.pieces_in_block(100, BLOCK) == []

    def test_cyclic_small_records_have_many_pieces(self):
        pattern = make_pattern("rc", 2 ** 16, 8, 16)
        pieces = pattern.pieces_in_block(0, BLOCK)
        # 1024 records in a block, dealt over 16 CPs -> 64 single-record pieces each.
        assert len(pieces) == 16
        assert all(piece.n_pieces == 64 for piece in pieces)
        assert all(piece.n_bytes == 512 for piece in pieces)

    def test_block_records_have_single_piece(self):
        pattern = make_pattern("rb", 2 ** 16, 8, 4)
        pieces = pattern.pieces_in_block(0, BLOCK)
        assert len(pieces) == 1
        assert pieces[0].n_pieces == 1
        assert pieces[0].n_bytes == BLOCK

    def test_consistency_between_pieces_and_owners(self):
        pattern = make_pattern("rcb", 2 ** 17, 8, 16)
        block = 5
        records = np.arange(block * 1024, (block + 1) * 1024)
        owners = pattern.owners_of(records)
        pieces = {piece.cp: piece for piece in pattern.pieces_in_block(block, BLOCK)}
        for cp in range(16):
            expected_bytes = int((owners == cp).sum()) * 8
            if expected_bytes:
                assert pieces[cp].n_bytes == expected_bytes
            else:
                assert cp not in pieces


class TestValidation:
    def test_bad_mode_letter(self):
        with pytest.raises(ValueError):
            make_pattern("xb", BLOCK, 8, 4)

    def test_too_many_letters(self):
        with pytest.raises(ValueError):
            make_pattern("rbbb", BLOCK, 8, 4)

    def test_record_size_must_divide_file(self):
        with pytest.raises(ValueError):
            make_pattern("rb", 1000, 8192, 4)

    def test_describe_mentions_name(self):
        pattern = make_pattern("rbb", 2 ** 16, 8, 16)
        assert "rbb" in pattern.describe()
        assert "rbb" in repr(pattern)
