"""Tests for pattern names, matrix sizing and CP-grid selection."""

import pytest

from repro.patterns import (
    PATTERN_NAMES,
    READ_PATTERN_NAMES,
    WRITE_PATTERN_NAMES,
    Distribution,
    choose_cp_grid,
    choose_matrix_dims,
    make_pattern,
)


class TestNameLists:
    def test_paper_read_patterns_present(self):
        assert set(READ_PATTERN_NAMES) == {
            "ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn"}

    def test_paper_write_patterns_present(self):
        assert set(WRITE_PATTERN_NAMES) == {
            "wn", "wb", "wc", "wnb", "wbb", "wcb", "wbc", "wcc", "wcn"}

    def test_no_write_all_pattern(self):
        assert "wa" not in PATTERN_NAMES

    def test_all_names_construct(self):
        for name in PATTERN_NAMES:
            pattern = make_pattern(name, 2 ** 16, 8, 16)
            assert pattern.name == name

    def test_redundant_names_still_work(self):
        # The paper drops rnn/rnc/rbn as redundant; they are still accepted.
        for name, equivalent in (("rnn", "rn"), ("rnc", "rc"), ("rbn", "rb")):
            redundant = make_pattern(name, 2 ** 16, 8, 16)
            canonical = make_pattern(equivalent, 2 ** 16, 8, 16)
            assert [redundant.bytes_for_cp(cp) for cp in range(16)] == \
                [canonical.bytes_for_cp(cp) for cp in range(16)]


class TestMatrixDims:
    def test_perfect_square(self):
        assert choose_matrix_dims(1024) == (32, 32)

    def test_near_square(self):
        rows, cols = choose_matrix_dims(1280)
        assert rows * cols == 1280
        assert rows <= cols
        assert rows == 32 and cols == 40

    def test_prime_count_degrades_to_vector(self):
        assert choose_matrix_dims(17) == (1, 17)

    def test_one_record(self):
        assert choose_matrix_dims(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            choose_matrix_dims(0)


class TestCpGrid:
    def test_both_distributed_is_near_square(self):
        assert choose_cp_grid(16, Distribution.BLOCK, Distribution.BLOCK) == (4, 4)
        assert choose_cp_grid(8, Distribution.CYCLIC, Distribution.BLOCK) == (2, 4)

    def test_none_row_collapses_grid(self):
        assert choose_cp_grid(16, Distribution.NONE, Distribution.BLOCK) == (1, 16)

    def test_none_col_collapses_grid(self):
        assert choose_cp_grid(16, Distribution.CYCLIC, Distribution.NONE) == (16, 1)

    def test_both_none(self):
        assert choose_cp_grid(16, Distribution.NONE, Distribution.NONE) == (1, 1)

    def test_explicit_matrix_dims_respected(self):
        pattern = make_pattern("rbb", 64 * 8, 8, 4, matrix_dims=(4, 16))
        assert (pattern.rows, pattern.cols) == (4, 16)

    def test_mismatched_matrix_dims_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("rbb", 64 * 8, 8, 4, matrix_dims=(5, 5))
