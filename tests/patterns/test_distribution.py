"""Tests for the NONE/BLOCK/CYCLIC dimension distributions."""

import numpy as np
import pytest

from repro.patterns import Distribution


class TestParsing:
    def test_letters(self):
        assert Distribution.from_letter("n") is Distribution.NONE
        assert Distribution.from_letter("b") is Distribution.BLOCK
        assert Distribution.from_letter("c") is Distribution.CYCLIC

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            Distribution.from_letter("x")


class TestGridIndex:
    def test_none_maps_everything_to_zero(self):
        owners = Distribution.NONE.grid_index_of(np.arange(10), extent=10, grid_size=4)
        assert (owners == 0).all()

    def test_block_splits_contiguously(self):
        owners = Distribution.BLOCK.grid_index_of(np.arange(8), extent=8, grid_size=4)
        assert owners.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_with_uneven_extent(self):
        owners = Distribution.BLOCK.grid_index_of(np.arange(10), extent=10, grid_size=4)
        # ceil(10/4) = 3 per grid position, last one short.
        assert owners.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_cyclic_deals_round_robin(self):
        owners = Distribution.CYCLIC.grid_index_of(np.arange(8), extent=8, grid_size=4)
        assert owners.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_grid_position_gets_everything(self):
        for dist in Distribution:
            owners = dist.grid_index_of(np.arange(6), extent=6, grid_size=1)
            assert (owners == 0).all()

    def test_block_never_exceeds_grid(self):
        owners = Distribution.BLOCK.grid_index_of(np.arange(100), extent=100, grid_size=7)
        assert owners.max() == 6


class TestOwnedCount:
    @pytest.mark.parametrize("dist", list(Distribution))
    def test_counts_sum_to_extent(self, dist):
        extent, grid = 37, 5
        total = sum(dist.owned_count(extent, grid, g) for g in range(grid))
        assert total == extent

    def test_none_gives_all_to_position_zero(self):
        assert Distribution.NONE.owned_count(50, 4, 0) == 50
        assert Distribution.NONE.owned_count(50, 4, 1) == 0

    def test_cyclic_spreads_remainder(self):
        assert Distribution.CYCLIC.owned_count(10, 4, 0) == 3
        assert Distribution.CYCLIC.owned_count(10, 4, 3) == 2

    def test_counts_match_grid_index_of(self):
        extent, grid = 29, 4
        for dist in Distribution:
            owners = dist.grid_index_of(np.arange(extent), extent, grid)
            for g in range(grid):
                assert dist.owned_count(extent, grid, g) == int((owners == g).sum())
