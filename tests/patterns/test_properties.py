"""Property-based tests (hypothesis) for the workload generator's invariants.

These are the invariants the file-system implementations rely on:

* every byte of the file is owned by exactly one CP (except ``ra``);
* the per-CP chunk lists and the per-block piece lists describe the same
  mapping (they are just two different slicings of it);
* chunk lists are sorted, disjoint and non-empty.
"""

from hypothesis import given, settings, strategies as st

from repro.patterns import PATTERN_NAMES, make_pattern

BLOCK = 8192

partition_names = st.sampled_from([name for name in PATTERN_NAMES if name != "ra"])
record_sizes = st.sampled_from([8, 64, 1024, 8192])
cp_counts = st.sampled_from([1, 2, 4, 8, 16])
n_blocks = st.integers(min_value=1, max_value=24)


@st.composite
def pattern_cases(draw):
    name = draw(partition_names)
    record_size = draw(record_sizes)
    blocks = draw(n_blocks)
    file_size = blocks * BLOCK
    cps = draw(cp_counts)
    return name, file_size, record_size, cps


@given(pattern_cases())
@settings(max_examples=60, deadline=None)
def test_bytes_partition_the_file(case):
    name, file_size, record_size, cps = case
    pattern = make_pattern(name, file_size, record_size, cps)
    total = sum(pattern.bytes_for_cp(cp) for cp in range(cps))
    assert total == file_size


@given(pattern_cases())
@settings(max_examples=60, deadline=None)
def test_pieces_partition_every_block(case):
    name, file_size, record_size, cps = case
    pattern = make_pattern(name, file_size, record_size, cps)
    n_file_blocks = file_size // BLOCK
    for block in {0, n_file_blocks // 2, n_file_blocks - 1}:
        pieces = pattern.pieces_in_block(block, BLOCK)
        assert sum(piece.n_bytes for piece in pieces) == BLOCK
        assert all(piece.n_pieces >= 1 for piece in pieces)
        assert len({piece.cp for piece in pieces}) == len(pieces)


@given(pattern_cases())
@settings(max_examples=40, deadline=None)
def test_chunks_match_bytes_per_cp(case):
    name, file_size, record_size, cps = case
    pattern = make_pattern(name, file_size, record_size, cps)
    for cp in range(cps):
        chunk_bytes = sum(length for _offset, length in pattern.chunks_for_cp(cp))
        assert chunk_bytes == pattern.bytes_for_cp(cp)


@given(pattern_cases())
@settings(max_examples=40, deadline=None)
def test_chunks_are_sorted_disjoint_and_in_bounds(case):
    name, file_size, record_size, cps = case
    pattern = make_pattern(name, file_size, record_size, cps)
    for cp in range(min(cps, 4)):
        previous_end = 0
        for offset, length in pattern.chunks_for_cp(cp):
            assert length > 0
            assert offset >= previous_end
            previous_end = offset + length
        assert previous_end <= file_size


@given(pattern_cases())
@settings(max_examples=30, deadline=None)
def test_chunks_and_pieces_agree_on_block_zero(case):
    name, file_size, record_size, cps = case
    pattern = make_pattern(name, file_size, record_size, cps)
    pieces = {piece.cp: piece.n_bytes for piece in pattern.pieces_in_block(0, BLOCK)}
    overlap_per_cp = {}
    for cp in range(cps):
        overlap = 0
        for offset, length in pattern.chunks_for_cp(cp):
            if offset >= BLOCK:
                break
            overlap += min(offset + length, BLOCK) - offset
        if overlap:
            overlap_per_cp[cp] = overlap
    assert overlap_per_cp == pieces


@given(st.integers(min_value=1, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_matrix_dims_always_factor_exactly(n_records):
    from repro.patterns import choose_matrix_dims
    rows, cols = choose_matrix_dims(n_records)
    assert rows * cols == n_records
    assert rows <= cols
