"""Tests for the shared collective-file-system plumbing and the factory."""

import pytest

from repro import (
    DiskDirectedFS,
    FileSystem,
    Machine,
    TraditionalCachingFS,
    TwoPhaseFS,
    make_filesystem,
    make_pattern,
)
from repro.core.base import CollectiveFileSystem
from tests.conftest import KILOBYTE


@pytest.fixture
def machine_and_file(small_config):
    machine = Machine(small_config, seed=1)
    striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
    return machine, striped


class TestFactory:
    @pytest.mark.parametrize("alias,expected", [
        ("traditional", TraditionalCachingFS),
        ("tc", TraditionalCachingFS),
        ("caching", TraditionalCachingFS),
        ("disk-directed", DiskDirectedFS),
        ("ddio", DiskDirectedFS),
        ("ddio-nosort", DiskDirectedFS),
        ("two-phase", TwoPhaseFS),
        ("2p", TwoPhaseFS),
    ])
    def test_aliases(self, machine_and_file, alias, expected):
        machine, striped = machine_and_file
        assert isinstance(make_filesystem(alias, machine, striped), expected)

    def test_nosort_alias_disables_presort(self, machine_and_file):
        machine, striped = machine_and_file
        assert make_filesystem("ddio-nosort", machine, striped).presort is False
        machine2 = Machine(machine.config, seed=1)
        assert make_filesystem("ddio", machine2, striped).presort is True

    def test_unknown_method_rejected(self, machine_and_file):
        machine, striped = machine_and_file
        with pytest.raises(ValueError):
            make_filesystem("nfs", machine, striped)


class TestBaseBehaviour:
    def test_abstract_transfer_not_implemented(self, machine_and_file):
        machine, striped = machine_and_file
        base = CollectiveFileSystem(machine, striped)
        pattern = make_pattern("rb", striped.size_bytes, 8192, machine.config.n_cps)
        with pytest.raises(NotImplementedError):
            base.transfer(pattern)

    def test_result_counters_include_disk_stats(self, machine_and_file):
        machine, striped = machine_and_file
        fs = make_filesystem("ddio", machine, striped)
        pattern = make_pattern("rb", striped.size_bytes, 8192, machine.config.n_cps)
        result = fs.transfer(pattern)
        assert "reads" in result.counters
        assert "bus_busy_fraction" in result.counters
        assert 0.0 <= result.counters["bus_busy_fraction"] <= 1.0

    def test_result_identifies_configuration(self, machine_and_file):
        machine, striped = machine_and_file
        fs = make_filesystem("ddio", machine, striped)
        pattern = make_pattern("rcb", striped.size_bytes, 8, machine.config.n_cps)
        result = fs.transfer(pattern)
        assert result.pattern_name == "rcb"
        assert result.layout_name == "contiguous"
        assert result.n_cps == machine.config.n_cps
        assert result.record_size == 8


class TestPerSessionCounters:
    def test_message_wire_bytes_scoped_per_session(self, machine_and_file):
        machine, striped = machine_and_file
        fs = make_filesystem("ddio", machine, striped)
        pattern = make_pattern("rb", striped.size_bytes, 8192, machine.config.n_cps)
        first = fs.transfer(pattern)
        second = fs.transfer(pattern)
        # Identical collectives see identical per-session message traffic —
        # the count does not accumulate across sessions.
        assert first.counters["message_wire_bytes"] > 0
        assert second.counters["message_wire_bytes"] == \
            first.counters["message_wire_bytes"]
        # Accounting is released at completion.
        assert machine.network.session_message_bytes == {}

    def test_disk_and_bus_stats_scoped_per_session(self, machine_and_file):
        machine, striped = machine_and_file
        fs = make_filesystem("ddio", machine, striped)
        pattern = make_pattern("rb", striped.size_bytes, 8192, machine.config.n_cps)
        first = fs.transfer(pattern)
        second = fs.transfer(pattern)
        # Machine-cumulative stats doubled; per-session counters did not.
        assert machine.total_disk_stats()["reads"] == 2 * first.counters["reads"]
        assert second.counters["reads"] == first.counters["reads"]
        for disk in machine.disks:
            assert disk.session_stats == {}
