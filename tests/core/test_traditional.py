"""Tests for the traditional-caching file system."""

import pytest

from repro import MachineConfig
from tests.conftest import KILOBYTE, run_transfer


class TestReads:
    def test_read_moves_every_byte(self):
        result, machine, _fs = run_transfer("traditional", "rb",
                                            file_size=256 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_read"] >= 256 * KILOBYTE
        assert result.elapsed > 0
        assert result.counters["cp_requests"] == 32  # 32 blocks, 1 per block

    def test_each_block_read_once_thanks_to_cache(self):
        # rc with block-sized records: each block is requested by exactly one
        # CP, but with 8-byte records all CPs share each block via the cache.
        result, machine, fs = run_transfer("traditional", "rc", record_size=8,
                                           file_size=64 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["reads"] == 8 + stats["cache_misses"] - stats["cache_misses"] \
            or stats["reads"] >= 8
        total_lookups = sum(cache.stats.lookups for cache in fs.caches)
        total_misses = sum(cache.stats.misses for cache in fs.caches)
        assert total_lookups > total_misses  # interprocess locality hits

    def test_prefetching_happens_on_reads(self):
        _result, _machine, fs = run_transfer("traditional", "rn",
                                             file_size=256 * KILOBYTE)
        issued = sum(cache.stats.prefetches_issued for cache in fs.caches)
        assert issued > 0

    def test_ra_reads_file_once_per_cp_from_cache(self):
        config = MachineConfig(n_cps=4, n_iops=2, n_disks=2)
        result, machine, fs = run_transfer("traditional", "ra", config=config,
                                           file_size=128 * KILOBYTE)
        # All CPs read everything, but each block hits the disk roughly once.
        stats = machine.total_disk_stats()
        assert stats["reads"] <= 2 * (128 // 8)
        assert result.bytes_transferred == 4 * 128 * KILOBYTE

    def test_non_participating_cps_do_not_issue_requests(self):
        result, _machine, _fs = run_transfer("traditional", "rn",
                                             file_size=128 * KILOBYTE)
        # rn: only CP 0 reads; one request per block.
        assert result.counters["cp_requests"] == 16


class TestRequestBatching:
    """The per-(CP, block) simulator batching of per-record request streams."""

    def _run(self, pattern_name, batch_requests, record_size=8):
        from repro.core import make_filesystem
        from repro.fs import FileSystem
        from repro.machine import Machine
        from repro.patterns import make_pattern

        config = MachineConfig(n_cps=4, n_iops=2, n_disks=2)
        machine = Machine(config, seed=1)
        filesystem = FileSystem(config, layout_seed=1)
        striped = filesystem.create_file("batch-file", 64 * KILOBYTE)
        pattern = make_pattern(pattern_name, 64 * KILOBYTE, record_size,
                               config.n_cps)
        implementation = make_filesystem("traditional", machine, striped,
                                         batch_requests=batch_requests)
        return implementation.transfer(pattern), machine

    @pytest.mark.parametrize("pattern_name", ["rc", "wc"])
    def test_batched_accounting_matches_unbatched(self, pattern_name):
        batched, machine_b = self._run(pattern_name, True)
        reference, machine_r = self._run(pattern_name, False)
        # The modeled protocol is identical: same requests, same messages,
        # same bytes — only the simulator event count differs.
        for counter in ("cp_requests", "iop_messages", "bytes_moved"):
            assert batched.counters[counter] == reference.counters[counter]
        assert machine_b.total_disk_stats() == machine_r.total_disk_stats()
        assert machine_b.network.bytes_sent.value == \
            machine_r.network.bytes_sent.value
        assert machine_b.network.messages_sent.value == \
            machine_r.network.messages_sent.value

    def test_batched_time_stays_close_to_unbatched(self):
        # Collapsing the per-record event round-trips removes their
        # pipelining slack, so the batched model runs a little *faster* in
        # simulated time; pin the drift to a modest band so the substitution
        # stays honest.
        batched, _ = self._run("rc", True)
        reference, _ = self._run("rc", False)
        assert batched.elapsed <= reference.elapsed
        assert batched.elapsed >= 0.55 * reference.elapsed

    def test_block_sized_records_unaffected_by_batching(self):
        # One request per block: nothing to coalesce, identical simulation.
        batched, _ = self._run("rc", True, record_size=8192)
        reference, _ = self._run("rc", False, record_size=8192)
        assert batched.elapsed == reference.elapsed


class TestWrites:
    def test_write_moves_every_byte_to_disk(self):
        result, machine, _fs = run_transfer("traditional", "wb",
                                            file_size=256 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_written"] == 256 * KILOBYTE
        assert result.elapsed > 0

    def test_write_behind_flushes_everything(self):
        _result, machine, fs = run_transfer("traditional", "wcc", record_size=8,
                                            file_size=64 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_written"] == 64 * KILOBYTE
        for cache in fs.caches:
            assert cache.dirty_blocks == []

    def test_small_writes_use_one_memory_copy_per_request(self):
        result, _machine, _fs = run_transfer("traditional", "wc", record_size=8,
                                             file_size=16 * KILOBYTE)
        # 16 KB / 8 B = 2048 requests.
        assert result.counters["cp_requests"] == 2048


class TestBehaviourVsPatterns:
    def test_small_records_are_much_slower_than_block_records(self):
        small, _machine, _fs = run_transfer("traditional", "rc", record_size=8,
                                            file_size=64 * KILOBYTE)
        large, _machine, _fs = run_transfer("traditional", "rc", record_size=8192,
                                            file_size=64 * KILOBYTE)
        assert small.throughput < large.throughput / 3

    def test_throughput_reported_in_sane_range(self):
        result, _machine, _fs = run_transfer("traditional", "rb",
                                             file_size=256 * KILOBYTE)
        assert 0.1 < result.throughput_mb < 40.0

    def test_outstanding_limit_validated(self):
        from repro import FileSystem, Machine, TraditionalCachingFS
        config = MachineConfig(n_cps=2, n_iops=2, n_disks=2)
        machine = Machine(config, seed=1)
        striped = FileSystem(config).create_file("f", 64 * KILOBYTE)
        with pytest.raises(ValueError):
            TraditionalCachingFS(machine, striped, outstanding_per_disk=0)


class TestConfigurationKnobs:
    def test_cache_size_knob_changes_capacity(self, small_config):
        from repro import FileSystem, Machine, TraditionalCachingFS, make_pattern
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 256 * KILOBYTE)
        fs = TraditionalCachingFS(machine, striped, cache_blocks_per_cp_per_disk=1)
        assert all(cache.capacity == 1 * small_config.n_cps for cache in fs.caches)

    def test_prefetch_can_be_disabled(self, small_config):
        from repro import FileSystem, Machine, TraditionalCachingFS, make_pattern
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        fs = TraditionalCachingFS(machine, striped, prefetch_blocks=0)
        pattern = make_pattern("rb", 128 * KILOBYTE, 8192, small_config.n_cps)
        fs.transfer(pattern)
        assert sum(cache.stats.prefetches_issued for cache in fs.caches) == 0


class TestPerSessionFlushIndependence:
    """A collective's completion drains only its OWN write-behind.

    Before per-session dirty tracking, a write collective's completion
    waited on a machine-wide cache + disk flush, coupling it to every
    concurrent collective's dirty volume.
    """

    @staticmethod
    def _run_pair(big_kb):
        from repro import FileSystem, Machine, MachineConfig, make_filesystem
        from repro.sim.events import AllOf
        from tests.conftest import KILOBYTE

        config = MachineConfig(n_cps=4, n_iops=2, n_disks=2)
        machine = Machine(config, seed=1)
        filesystem = FileSystem(config, layout_seed=1)
        small = filesystem.create_file("small", 64 * KILOBYTE)
        big = filesystem.create_file("big", big_kb * KILOBYTE)
        fs = make_filesystem("traditional", machine)
        from repro import make_pattern
        big_session = fs.begin_transfer(
            make_pattern("wb", big.size_bytes, 8192, 4), big)
        small_session = fs.begin_transfer(
            make_pattern("wb", small.size_bytes, 8192, 4), small)
        machine.env.run(AllOf(machine.env, [big_session.done,
                                            small_session.done]))
        return small_session, big_session

    def test_small_collective_unaffected_by_neighbours_dirty_volume(self):
        small_vs_128, big_128 = self._run_pair(128)
        small_vs_2048, big_2048 = self._run_pair(2048)
        # The big session's drain grows with its volume...
        assert big_2048.elapsed > 3 * big_128.elapsed
        # ...but the small session's completion does not: it drains its own
        # write-behind only, so a 16x larger neighbour moves it by < 2%.
        assert small_vs_2048.elapsed == pytest.approx(
            small_vs_128.elapsed, rel=0.02)

    def test_small_collective_finishes_long_before_the_big_one(self):
        small, big = self._run_pair(2048)
        assert small.end_time < 0.5 * big.end_time
        # Both moved exactly their requested bytes despite the interleaving.
        assert small.bytes_moved == small.bytes_requested
        assert big.bytes_moved == big.bytes_requested


class TestPrefetchAttribution:
    def test_prefetch_reads_stay_untagged(self):
        # Speculative prefetches are the IOP's own work: no per-session
        # drive accounting may survive (or be recreated) after completion.
        _result, machine, fs = run_transfer("traditional", "rn",
                                            file_size=256 * KILOBYTE)
        assert sum(cache.stats.prefetches_issued for cache in fs.caches) > 0
        machine.env.run()  # let any straggler prefetch reach the drive
        for disk in machine.disks:
            assert disk.session_stats == {}
        for iop in machine.iops:
            assert iop.bus.session_busy == {}
