"""Tests for the traditional-caching IOP block cache."""

import pytest

from repro.core.iop_cache import IOPCache
from repro.disk import Disk, HP97560_SPEC
from repro.disk.drive import BusPort
from repro.fs import ContiguousLayout, StripedFile
from repro.sim import Environment, Resource

BLOCK = 8192
SECTORS = BLOCK // 512


@pytest.fixture
def setup():
    env = Environment()
    bus = Resource(env, capacity=1)
    disk = Disk(env, HP97560_SPEC, BusPort(bus, 10e6), name="d0")
    layout = ContiguousLayout(HP97560_SPEC, BLOCK)
    striped = StripedFile("f", 64 * BLOCK, BLOCK, 1, layout)
    cache = IOPCache(env, iop=None, striped_file=striped,
                     disk_lookup=lambda index: disk,
                     capacity_blocks=8, sectors_per_block=SECTORS)
    return env, disk, cache


def run(env, generator):
    return env.run(env.process(generator))


class TestReadPath:
    def test_miss_then_hit(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(3)
            first_time = env.now
            yield cache.acquire_for_read(3)
            return first_time, env.now

        first_time, second_time = run(env, client(env))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert second_time == first_time  # hit costs no simulated time here
        assert disk.stats.reads == 1

    def test_concurrent_misses_coalesce_to_one_disk_read(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(5)

        procs = [env.process(client(env)) for _ in range(6)]
        env.run(env.all_of(procs))
        assert disk.stats.reads == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 5

    def test_eviction_when_capacity_exceeded(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(12):  # capacity is 8
                yield cache.acquire_for_read(block)

        run(env, client(env))
        assert len(cache) <= 8
        assert cache.stats.evictions >= 4
        assert disk.stats.reads == 12

    def test_lru_keeps_recent_blocks(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(8):
                yield cache.acquire_for_read(block)
            # Touch block 0 so it becomes most-recently used, then overflow.
            yield cache.acquire_for_read(0)
            yield cache.acquire_for_read(8)

        run(env, client(env))
        assert 0 in cache
        assert 1 not in cache

    def test_prefetch_skipped_when_full(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(8):
                yield cache.acquire_for_read(block)

        run(env, client(env))
        assert cache.try_prefetch(20) is False

    def test_prefetch_counts_and_usage(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(0)
            assert cache.try_prefetch(1) is True
            yield env.timeout(0.1)
            yield cache.acquire_for_read(1)

        run(env, client(env))
        assert cache.stats.prefetches_issued == 1
        assert cache.stats.prefetches_used == 1

    def test_prefetch_out_of_range_is_noop(self, setup):
        _env, _disk, cache = setup
        assert cache.try_prefetch(-1) is False
        assert cache.try_prefetch(10_000) is False


class TestWritePath:
    def test_write_accumulates_until_full(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(2)
            full_at = []
            for _ in range(4):
                full_at.append(cache.record_write(2, BLOCK // 4, BLOCK))
            return full_at

        full_flags = run(env, client(env))
        assert full_flags == [False, False, False, True]

    def test_flush_block_writes_to_disk(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(2)
            cache.record_write(2, BLOCK, BLOCK)
            yield cache.flush_block(2)
            yield disk.flush()

        run(env, client(env))
        assert disk.stats.writes == 1
        assert cache.dirty_blocks == []

    def test_flush_all_covers_every_dirty_block(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(4):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK // 2, BLOCK)
            yield cache.flush_all()
            yield disk.flush()

        run(env, client(env))
        assert disk.stats.writes == 4
        assert cache.dirty_blocks == []

    def test_flush_clean_cache_is_immediate(self, setup):
        env, _disk, cache = setup

        def client(env):
            yield cache.flush_all()
            return env.now

        assert run(env, client(env)) == 0.0

    def test_record_write_on_missing_block_is_tolerated(self, setup):
        _env, _disk, cache = setup
        assert cache.record_write(40, 100, BLOCK) is False

    def test_dirty_eviction_forces_writeback(self, setup):
        env, disk, cache = setup

        def client(env):
            # Fill the cache with partially written (dirty, never full) blocks.
            for block in range(10):
                yield cache.acquire_for_write(block)
                cache.record_write(block, 100, BLOCK)
            yield cache.flush_all()
            yield disk.flush()

        run(env, client(env))
        # 10 blocks passed through an 8-block cache: at least two writebacks
        # happened because of eviction before the final flush.
        assert disk.stats.writes == 10

    def test_pinned_victim_survives_its_own_writeback(self, setup):
        # A writer can pin a dirty victim *while its eviction writeback is in
        # flight*; the post-writeback guard must then keep the entry resident
        # (evicting it would drop the bytes the writer is about to record).
        env, disk, cache = setup

        def writer(env):
            yield cache.acquire_for_write(2)
            cache.record_write(2, 100, BLOCK)  # dirty, never full

        def evictor(env):
            # Fill the rest of the cache, then demand one more buffer so the
            # allocation must evict block 2 (the only unpinned victim left
            # is dirty, forcing a writeback first).
            for block in range(3, 3 + 7):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK, BLOCK)
                yield cache.flush_block(block)
            yield cache.acquire_for_read(20)

        def pinner(env):
            # Pin block 2 exactly while its eviction writeback is in flight
            # (poll until the entry is marked flushing, then pin).
            key = cache._key(2, cache.file)
            while True:
                entry = cache._entries.get(key)
                if entry is not None and entry.flushing:
                    break
                yield env.timeout(1e-4)
            assert cache.pin(2) is True

        env.process(writer(env))
        env.process(evictor(env))
        pin_proc = env.process(pinner(env))
        env.run(pin_proc)
        env.run(env.timeout(0.5))
        # Still pinned => still resident, not evicted out from under the pin.
        assert 2 in cache
        cache.unpin(2)
        env.run()

    def test_capacity_validation(self, setup):
        env, disk, _cache = setup
        from repro.fs import ContiguousLayout, StripedFile
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        striped = StripedFile("g", 4 * BLOCK, BLOCK, 1, layout)
        with pytest.raises(ValueError):
            IOPCache(env, None, striped, lambda index: disk,
                     capacity_blocks=0, sectors_per_block=SECTORS)


class TestPerSessionDirtyTracking:
    def test_record_write_tracks_sessions(self, setup):
        env, _disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(0)
            cache.record_write(0, BLOCK // 2, BLOCK, session_id="a")
            cache.record_write(0, BLOCK // 2, BLOCK, session_id="b")

        run(env, client(env))
        entry = cache._entries[cache._key(0, cache.file)]
        assert entry.dirty_by_session == {"a": BLOCK // 2, "b": BLOCK // 2}

    def test_flush_session_drains_own_blocks_only(self, setup):
        env, disk, cache = setup

        def client(env):
            # Session "a" dirties blocks 0-1; session "b" dirties blocks 2-5.
            for block in (0, 1):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK // 2, BLOCK, session_id="a")
            for block in (2, 3, 4, 5):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK // 2, BLOCK, session_id="b")
            yield cache.flush_session("a")

        run(env, client(env))
        # Only a's two buffers were written back; b's four are still dirty.
        assert disk.stats.writes == 2
        assert len(cache.dirty_blocks) == 4

    def test_flush_session_reaches_the_media(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(0)
            cache.record_write(0, BLOCK, BLOCK, session_id="s")
            yield cache.flush_session("s")

        run(env, client(env))
        # Media-level drain: nothing left in the drive's write buffer.
        assert disk._writes_outstanding == 0
        assert disk.stats.bytes_written == BLOCK

    def test_flush_session_covers_full_buffer_flushes_issued_earlier(self, setup):
        env, disk, cache = setup

        def client(env):
            # The block fills mid-run and is flushed immediately (write-behind);
            # the later flush_session must still wait for that write's media.
            yield cache.acquire_for_write(7)
            full = cache.record_write(7, BLOCK, BLOCK, session_id="s")
            assert full
            cache.flush_block(7)
            yield cache.flush_session("s")

        run(env, client(env))
        assert disk._writes_outstanding == 0
        assert disk.stats.writes == 1

    def test_flush_session_with_no_writes_completes_immediately(self, setup):
        env, _disk, cache = setup

        def client(env):
            start = env.now
            yield cache.flush_session("nobody")
            return env.now - start

        assert run(env, client(env)) == 0

    def test_shared_block_flush_credits_both_sessions(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(0)
            cache.record_write(0, BLOCK // 2, BLOCK, session_id="a")
            cache.record_write(0, BLOCK // 2, BLOCK, session_id="b")
            t0 = env.now
            yield cache.flush_session("a")
            a_done = env.now
            yield cache.flush_session("b")
            return t0, a_done, env.now

        t0, a_done, b_done = run(env, client(env))
        # One write-back serves both sessions; b's flush found it already done.
        assert disk.stats.writes == 1
        assert a_done > t0
        assert b_done == a_done

    def test_bytes_recorded_during_writeback_survive_and_drain(self, setup):
        # Session A's full buffer starts a write-back; while it is in
        # flight, session B records more bytes into the same buffer.  B's
        # bytes must stay dirty (not be wiped when the write-back lands),
        # and B's flush_session must drain them with a second disk write.
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(0)
            cache.record_write(0, BLOCK, BLOCK, session_id="a")
            cache.flush_block(0)                  # write-back now in flight
            yield env.timeout(1e-4)               # mid-flight (writes take ms)
            entry = cache._entries[cache._key(0, cache.file)]
            assert entry.flushing
            cache.record_write(0, BLOCK // 2, BLOCK, session_id="b")
            yield cache.flush_session("b")
            assert "b" not in cache._session_media  # b fully drained
            yield cache.flush_session("a")

        run(env, client(env))
        assert disk.stats.writes == 2             # A's write-back + B's
        entry = cache._entries[cache._key(0, cache.file)]
        assert entry.dirty_bytes == 0
        assert entry.dirty_by_session == {}
        assert cache._session_media == {}         # nothing leaked
