"""Tests for the traditional-caching IOP block cache."""

import pytest

from repro.core.iop_cache import IOPCache
from repro.disk import Disk, HP97560_SPEC
from repro.disk.drive import BusPort
from repro.fs import ContiguousLayout, StripedFile
from repro.sim import Environment, Resource

BLOCK = 8192
SECTORS = BLOCK // 512


@pytest.fixture
def setup():
    env = Environment()
    bus = Resource(env, capacity=1)
    disk = Disk(env, HP97560_SPEC, BusPort(bus, 10e6), name="d0")
    layout = ContiguousLayout(HP97560_SPEC, BLOCK)
    striped = StripedFile("f", 64 * BLOCK, BLOCK, 1, layout)
    cache = IOPCache(env, iop=None, striped_file=striped,
                     disk_lookup=lambda index: disk,
                     capacity_blocks=8, sectors_per_block=SECTORS)
    return env, disk, cache


def run(env, generator):
    return env.run(env.process(generator))


class TestReadPath:
    def test_miss_then_hit(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(3)
            first_time = env.now
            yield cache.acquire_for_read(3)
            return first_time, env.now

        first_time, second_time = run(env, client(env))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert second_time == first_time  # hit costs no simulated time here
        assert disk.stats.reads == 1

    def test_concurrent_misses_coalesce_to_one_disk_read(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(5)

        procs = [env.process(client(env)) for _ in range(6)]
        env.run(env.all_of(procs))
        assert disk.stats.reads == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 5

    def test_eviction_when_capacity_exceeded(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(12):  # capacity is 8
                yield cache.acquire_for_read(block)

        run(env, client(env))
        assert len(cache) <= 8
        assert cache.stats.evictions >= 4
        assert disk.stats.reads == 12

    def test_lru_keeps_recent_blocks(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(8):
                yield cache.acquire_for_read(block)
            # Touch block 0 so it becomes most-recently used, then overflow.
            yield cache.acquire_for_read(0)
            yield cache.acquire_for_read(8)

        run(env, client(env))
        assert 0 in cache
        assert 1 not in cache

    def test_prefetch_skipped_when_full(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(8):
                yield cache.acquire_for_read(block)

        run(env, client(env))
        assert cache.try_prefetch(20) is False

    def test_prefetch_counts_and_usage(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_read(0)
            assert cache.try_prefetch(1) is True
            yield env.timeout(0.1)
            yield cache.acquire_for_read(1)

        run(env, client(env))
        assert cache.stats.prefetches_issued == 1
        assert cache.stats.prefetches_used == 1

    def test_prefetch_out_of_range_is_noop(self, setup):
        _env, _disk, cache = setup
        assert cache.try_prefetch(-1) is False
        assert cache.try_prefetch(10_000) is False


class TestWritePath:
    def test_write_accumulates_until_full(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(2)
            full_at = []
            for _ in range(4):
                full_at.append(cache.record_write(2, BLOCK // 4, BLOCK))
            return full_at

        full_flags = run(env, client(env))
        assert full_flags == [False, False, False, True]

    def test_flush_block_writes_to_disk(self, setup):
        env, disk, cache = setup

        def client(env):
            yield cache.acquire_for_write(2)
            cache.record_write(2, BLOCK, BLOCK)
            yield cache.flush_block(2)
            yield disk.flush()

        run(env, client(env))
        assert disk.stats.writes == 1
        assert cache.dirty_blocks == []

    def test_flush_all_covers_every_dirty_block(self, setup):
        env, disk, cache = setup

        def client(env):
            for block in range(4):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK // 2, BLOCK)
            yield cache.flush_all()
            yield disk.flush()

        run(env, client(env))
        assert disk.stats.writes == 4
        assert cache.dirty_blocks == []

    def test_flush_clean_cache_is_immediate(self, setup):
        env, _disk, cache = setup

        def client(env):
            yield cache.flush_all()
            return env.now

        assert run(env, client(env)) == 0.0

    def test_record_write_on_missing_block_is_tolerated(self, setup):
        _env, _disk, cache = setup
        assert cache.record_write(40, 100, BLOCK) is False

    def test_dirty_eviction_forces_writeback(self, setup):
        env, disk, cache = setup

        def client(env):
            # Fill the cache with partially written (dirty, never full) blocks.
            for block in range(10):
                yield cache.acquire_for_write(block)
                cache.record_write(block, 100, BLOCK)
            yield cache.flush_all()
            yield disk.flush()

        run(env, client(env))
        # 10 blocks passed through an 8-block cache: at least two writebacks
        # happened because of eviction before the final flush.
        assert disk.stats.writes == 10

    def test_pinned_victim_survives_its_own_writeback(self, setup):
        # A writer can pin a dirty victim *while its eviction writeback is in
        # flight*; the post-writeback guard must then keep the entry resident
        # (evicting it would drop the bytes the writer is about to record).
        env, disk, cache = setup

        def writer(env):
            yield cache.acquire_for_write(2)
            cache.record_write(2, 100, BLOCK)  # dirty, never full

        def evictor(env):
            # Fill the rest of the cache, then demand one more buffer so the
            # allocation must evict block 2 (the only unpinned victim left
            # is dirty, forcing a writeback first).
            for block in range(3, 3 + 7):
                yield cache.acquire_for_write(block)
                cache.record_write(block, BLOCK, BLOCK)
                yield cache.flush_block(block)
            yield cache.acquire_for_read(20)

        def pinner(env):
            # Pin block 2 exactly while its eviction writeback is in flight
            # (poll until the entry is marked flushing, then pin).
            key = cache._key(2, cache.file)
            while True:
                entry = cache._entries.get(key)
                if entry is not None and entry.flushing:
                    break
                yield env.timeout(1e-4)
            assert cache.pin(2) is True

        env.process(writer(env))
        env.process(evictor(env))
        pin_proc = env.process(pinner(env))
        env.run(pin_proc)
        env.run(env.timeout(0.5))
        # Still pinned => still resident, not evicted out from under the pin.
        assert 2 in cache
        cache.unpin(2)
        env.run()

    def test_capacity_validation(self, setup):
        env, disk, _cache = setup
        from repro.fs import ContiguousLayout, StripedFile
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        striped = StripedFile("g", 4 * BLOCK, BLOCK, 1, layout)
        with pytest.raises(ValueError):
            IOPCache(env, None, striped, lambda index: disk,
                     capacity_blocks=0, sectors_per_block=SECTORS)
