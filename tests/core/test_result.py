"""Tests for TransferResult arithmetic."""

import pytest

from repro.core.result import MEGABYTE, TransferResult


def make_result(**overrides):
    defaults = dict(
        method="disk-directed", pattern_name="rb", layout_name="contiguous",
        file_size=int(2 * MEGABYTE), record_size=8192, n_cps=16, n_iops=16,
        n_disks=16, start_time=1.0, end_time=2.0,
        bytes_transferred=int(2 * MEGABYTE), counters={"cp_requests": 3},
    )
    defaults.update(overrides)
    return TransferResult(**defaults)


class TestTransferResult:
    def test_elapsed(self):
        assert make_result().elapsed == pytest.approx(1.0)

    def test_throughput_normalised_by_file_size(self):
        result = make_result()
        assert result.throughput_mb == pytest.approx(2.0)

    def test_ra_normalisation(self):
        # ra moves n_cps copies; normalised throughput still uses one file size.
        result = make_result(pattern_name="ra",
                             bytes_transferred=int(16 * 2 * MEGABYTE))
        assert result.throughput_mb == pytest.approx(2.0)
        assert result.aggregate_throughput_mb == pytest.approx(32.0)

    def test_zero_elapsed_gives_zero_throughput(self):
        result = make_result(end_time=1.0)
        assert result.throughput == 0.0
        assert result.aggregate_throughput == 0.0

    def test_summary_mentions_method_and_pattern(self):
        text = make_result().summary()
        assert "disk-directed" in text
        assert "rb" in text

    def test_as_dict_flattens_counters(self):
        data = make_result().as_dict()
        assert data["counter_cp_requests"] == 3
        assert data["method"] == "disk-directed"
        assert data["throughput_mb"] == pytest.approx(2.0)
