"""Failure-aware client behaviour: retry, degrade, abort, conservation.

Each test builds a machine with an injected :class:`FaultConfig` and checks
the session-level accounting contract: every requested byte is either
delivered (``bytes_moved``) or explicitly given up (``failed_bytes``), retries
are counted, and a degraded session says so exactly once.
"""

import pytest

from repro import FileSystem, Machine, MachineConfig, make_filesystem, make_pattern
from repro.disk.faults import FaultAbort, FaultConfig, FaultPolicy

KILOBYTE = 1024


def run_faulted_transfer(method, pattern_name, fault_config, policy, *,
                         record_size=8192, layout="contiguous",
                         file_size=256 * KILOBYTE, seed=1, config=None):
    config = config or MachineConfig(n_cps=4, n_iops=4, n_disks=4)
    machine = Machine(config, seed=seed, fault_config=fault_config)
    filesystem = FileSystem(config, layout_seed=seed)
    striped = filesystem.create_file("test-file", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    implementation = make_filesystem(method, machine, striped,
                                     fault_policy=policy)
    result = implementation.transfer(pattern)
    return result, machine


def assert_read_conservation(result):
    assert result.counters["bytes_moved"] + result.counters["failed_bytes"] \
        == result.bytes_transferred


ALL_METHODS = ("disk-directed", "traditional", "two-phase")


class TestHealthyBaseline:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_fault_policy_without_faults_changes_nothing(self, method):
        healthy, _machine = run_faulted_transfer(method, "rb", None, None)
        policed, _machine = run_faulted_transfer(
            method, "rb", None, FaultPolicy())
        assert policed.elapsed == healthy.elapsed
        assert policed.counters["bytes_moved"] == healthy.counters["bytes_moved"]
        assert policed.counters["retries"] == 0
        assert policed.counters["failed_bytes"] == 0
        assert policed.counters["degraded"] == 0


class TestRetry:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_moderate_transients_retried_to_full_delivery(self, method):
        """With a 20% transient rate and 4 attempts, retries recover every
        block (deterministic for this seed: the fault draws are a pure
        function of the seed and request order)."""
        result, _machine = run_faulted_transfer(
            method, "rb", FaultConfig(transient_rate=0.2), FaultPolicy())
        assert result.counters["retries"] > 0
        assert result.counters["failed_bytes"] == 0
        assert result.counters["bytes_moved"] == result.bytes_transferred
        assert result.counters["degraded"] == 0

    @pytest.mark.parametrize("method", ("disk-directed", "traditional"))
    def test_certain_transients_exhaust_retries_and_degrade(self, method):
        """rate=1.0 defeats every retry: all blocks fail, none delivered."""
        result, _machine = run_faulted_transfer(
            method, "rb", FaultConfig(transient_rate=1.0), FaultPolicy())
        assert result.counters["bytes_moved"] == 0
        assert result.counters["failed_bytes"] == result.bytes_transferred
        assert result.counters["degraded"] == 1
        assert result.counters["failed_blocks"] > 0
        assert_read_conservation(result)

    def test_retries_bounded_by_max_attempts(self):
        result, _machine = run_faulted_transfer(
            "disk-directed", "rb", FaultConfig(transient_rate=1.0),
            FaultPolicy(max_attempts=3))
        blocks = result.counters["failed_blocks"]
        # Every block made exactly (max_attempts - 1) retries.
        assert result.counters["retries"] <= blocks * 2

    def test_deadline_cuts_retries_short(self):
        """A deadline shorter than the first backoff forbids all retries."""
        result, _machine = run_faulted_transfer(
            "disk-directed", "rb", FaultConfig(transient_rate=1.0),
            FaultPolicy(backoff_base=0.01, deadline=0.001))
        assert result.counters["retries"] == 0
        assert result.counters["failed_bytes"] == result.bytes_transferred

    def test_retry_slower_than_healthy_run(self):
        healthy, _machine = run_faulted_transfer("disk-directed", "rb",
                                                 None, None)
        faulted, _machine = run_faulted_transfer(
            "disk-directed", "rb", FaultConfig(transient_rate=0.2),
            FaultPolicy())
        assert faulted.elapsed > healthy.elapsed


class TestDegrade:
    @pytest.mark.parametrize("method", ("disk-directed", "traditional"))
    def test_degrade_mode_never_retries(self, method):
        result, _machine = run_faulted_transfer(
            method, "rb", FaultConfig(transient_rate=1.0),
            FaultPolicy(on_fault="degrade"))
        assert result.counters["retries"] == 0
        assert result.counters["failed_bytes"] == result.bytes_transferred
        assert result.counters["degraded"] == 1
        assert_read_conservation(result)

    def test_degraded_flag_is_zero_or_one(self):
        """Many failed blocks still mark the session degraded exactly once."""
        result, _machine = run_faulted_transfer(
            "disk-directed", "rb", FaultConfig(transient_rate=1.0),
            FaultPolicy(on_fault="degrade"), file_size=512 * KILOBYTE)
        assert result.counters["failed_blocks"] > 1
        assert result.counters["degraded"] == 1


class TestAbort:
    def test_abort_raises_fault_abort(self):
        with pytest.raises(FaultAbort):
            run_faulted_transfer(
                "disk-directed", "rb", FaultConfig(transient_rate=1.0),
                FaultPolicy(on_fault="abort"))


class TestFailStop:
    @pytest.mark.parametrize("method", ("disk-directed", "traditional"))
    def test_dead_drive_fails_its_share_of_blocks(self, method):
        """One drive of four dead from t=0: ~1/4 of a striped read fails,
        the rest is delivered; conservation holds throughout."""
        result, machine = run_faulted_transfer(
            method, "rb",
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), FaultPolicy())
        assert result.counters["failed_bytes"] > 0
        assert result.counters["bytes_moved"] > 0
        assert result.counters["degraded"] == 1
        assert_read_conservation(result)
        # Permanent errors are never retried.
        assert result.counters["retries"] == 0

    def test_write_to_dead_drive_counts_lost_bytes(self):
        result, _machine = run_faulted_transfer(
            "disk-directed", "wb",
            FaultConfig(fail_stop_disk=0, fail_stop_time=0.0), FaultPolicy())
        assert result.counters["lost_bytes"] > 0
        assert result.counters["degraded"] == 1


class TestFailSlow:
    def test_slow_drive_stretches_the_collective(self):
        healthy, _machine = run_faulted_transfer("disk-directed", "rb",
                                                 None, None)
        slowed, _machine = run_faulted_transfer(
            "disk-directed", "rb",
            FaultConfig(slow_disk=0, slow_factor=8.0, slow_start=0.0,
                        slow_duration=1000.0), FaultPolicy())
        assert slowed.elapsed > healthy.elapsed
        # No errors: everything is delivered, just late.
        assert slowed.counters["failed_bytes"] == 0
        assert slowed.counters["bytes_moved"] == slowed.bytes_transferred


class TestSharedQueueFaults:
    def test_retry_works_through_the_shared_disk_queue(self):
        config = MachineConfig(n_cps=4, n_iops=4, n_disks=4)
        machine = Machine(config, seed=1, disk_scheduler="shared-cscan",
                          fault_config=FaultConfig(transient_rate=0.2))
        filesystem = FileSystem(config, layout_seed=1)
        striped = filesystem.create_file("qf", 256 * KILOBYTE,
                                         layout="contiguous")
        pattern = make_pattern("rb", 256 * KILOBYTE, 8192, config.n_cps)
        implementation = make_filesystem("disk-directed", machine, striped,
                                         fault_policy=FaultPolicy())
        result = implementation.transfer(pattern)
        assert result.counters["retries"] > 0
        assert result.counters["bytes_moved"] \
            + result.counters["failed_bytes"] == result.bytes_transferred
