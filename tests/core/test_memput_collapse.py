"""Pin: the single-piece Memput collapse is bit-identical to the spawn path.

``DiskDirectedFS._deliver_to_cps`` / ``_gather_from_cps`` used to spawn a
``Process`` + ``AllOf`` even when a block maps to exactly one CP piece (the
common case for block-aligned patterns).  The collapse runs the single
``_memput`` fragment inline — same yields, same instants, one less process
and join event per block.  These tests pin the equivalence empirically:
every timing and counter must match with the collapse forced off.
"""

import pytest

from repro import DiskDirectedFS, FileSystem, Machine, MachineConfig, make_pattern

KILOBYTE = 1024


def run_ddio(pattern_name, *, collapse, record_size=8192, layout="random",
             file_size=256 * KILOBYTE, seed=1, config=None):
    config = config or MachineConfig(n_cps=4, n_iops=4, n_disks=4)
    machine = Machine(config, seed=seed)
    filesystem = FileSystem(config, layout_seed=seed)
    striped = filesystem.create_file("pin-file", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    implementation = DiskDirectedFS(machine, striped,
                                    collapse_single_piece=collapse)
    return implementation.transfer(pattern)


#: Pattern/record-size mix covering single-piece blocks (rb/wb at 8 KB),
#: many-piece blocks (cyclic 8-byte records — the collapse must not fire)
#: and the broadcast pattern.
CASES = [
    ("rb", 8192),
    ("wb", 8192),
    ("rc", 8192),
    ("rcc", 8),
    ("wcc", 8),
    ("ra", 8192),
]


class TestCollapseEquivalence:
    @pytest.mark.parametrize("pattern_name,record_size", CASES)
    def test_bit_identical_timing_and_counters(self, pattern_name, record_size):
        collapsed = run_ddio(pattern_name, collapse=True,
                             record_size=record_size)
        spawned = run_ddio(pattern_name, collapse=False,
                           record_size=record_size)
        assert collapsed.elapsed == spawned.elapsed  # bit-identical, no approx
        assert collapsed.counters == spawned.counters

    def test_collapse_is_the_default(self):
        config = MachineConfig(n_cps=2, n_iops=1, n_disks=1)
        machine = Machine(config, seed=1)
        implementation = DiskDirectedFS(machine)
        assert implementation.collapse_single_piece is True

    def test_equivalence_holds_on_contiguous_layout_too(self):
        collapsed = run_ddio("rb", collapse=True, layout="contiguous")
        spawned = run_ddio("rb", collapse=False, layout="contiguous")
        assert collapsed.elapsed == spawned.elapsed
        assert collapsed.counters == spawned.counters
