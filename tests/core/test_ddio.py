"""Tests for disk-directed I/O."""

import pytest

from repro import DiskDirectedFS, FileSystem, Machine, MachineConfig, make_pattern
from tests.conftest import KILOBYTE, run_transfer


class TestReads:
    def test_read_moves_every_byte(self):
        result, machine, _fs = run_transfer("disk-directed", "rb",
                                            file_size=256 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_read"] == 256 * KILOBYTE
        assert result.throughput_mb > 0

    def test_each_block_read_exactly_once(self):
        _result, machine, _fs = run_transfer("disk-directed", "rcc", record_size=8,
                                             file_size=128 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["reads"] == 128 // 8

    def test_one_collective_request_per_iop(self):
        result, _machine, _fs = run_transfer("disk-directed", "rb",
                                             file_size=256 * KILOBYTE)
        assert result.counters["cp_requests"] == 4   # one per IOP (4 IOPs)
        assert result.counters["iop_messages"] == 4

    def test_ra_delivers_every_block_to_every_cp(self):
        result, _machine, _fs = run_transfer("disk-directed", "ra",
                                             file_size=128 * KILOBYTE)
        assert result.counters["bytes_moved"] == 4 * 128 * KILOBYTE

    def test_throughput_insensitive_to_pattern(self):
        throughputs = []
        for pattern in ("rb", "rc", "rcb", "rcn"):
            result, _machine, _fs = run_transfer("disk-directed", pattern,
                                                 file_size=256 * KILOBYTE)
            throughputs.append(result.throughput_mb)
        spread = (max(throughputs) - min(throughputs)) / max(throughputs)
        assert spread < 0.25


class TestWrites:
    def test_write_moves_every_byte_to_disk(self):
        result, machine, _fs = run_transfer("disk-directed", "wb",
                                            file_size=256 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_written"] == 256 * KILOBYTE

    def test_write_includes_destage_in_elapsed_time(self):
        result, machine, _fs = run_transfer("disk-directed", "wb",
                                            file_size=128 * KILOBYTE)
        for disk in machine.disks:
            assert disk._writes_outstanding == 0

    def test_small_record_writes_gather_from_all_cps(self):
        result, machine, _fs = run_transfer("disk-directed", "wcc", record_size=8,
                                            file_size=64 * KILOBYTE)
        stats = machine.total_disk_stats()
        assert stats["bytes_written"] == 64 * KILOBYTE
        assert result.counters["bytes_moved"] == 64 * KILOBYTE


class TestPresort:
    def test_presort_helps_on_random_layout(self):
        sorted_result, _machine, _fs = run_transfer(
            "disk-directed", "rb", layout="random", file_size=512 * KILOBYTE)
        unsorted_result, _machine, _fs = run_transfer(
            "ddio-nosort", "rb", layout="random", file_size=512 * KILOBYTE)
        assert sorted_result.throughput > unsorted_result.throughput

    def test_presort_irrelevant_on_contiguous_layout(self):
        sorted_result, _machine, _fs = run_transfer(
            "disk-directed", "rb", layout="contiguous", file_size=512 * KILOBYTE)
        unsorted_result, _machine, _fs = run_transfer(
            "ddio-nosort", "rb", layout="contiguous", file_size=512 * KILOBYTE)
        assert sorted_result.throughput == pytest.approx(
            unsorted_result.throughput, rel=0.05)

    def test_method_name_reflects_presort(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        assert DiskDirectedFS(machine, striped, presort=True).method_name == \
            "disk-directed"
        machine2 = Machine(small_config, seed=1)
        striped2 = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        assert DiskDirectedFS(machine2, striped2, presort=False).method_name == \
            "disk-directed-nosort"


class TestBufferConfiguration:
    def test_at_least_one_buffer_required(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        with pytest.raises(ValueError):
            DiskDirectedFS(machine, striped, buffers_per_disk=0)

    def test_double_buffering_never_hurts(self, small_config):
        """Two buffers per disk (the paper's choice) must be at least as fast.

        The gain can be tiny when per-block network time is dwarfed by disk
        time (rotational slack absorbs the idle gap), so this asserts
        non-regression; the ablation benchmark explores the magnitude.
        """
        def run_with(buffers, pattern_name="ra"):
            machine = Machine(small_config, seed=1)
            striped = FileSystem(small_config, layout_seed=1).create_file(
                "f", 512 * KILOBYTE, layout="random")
            fs = DiskDirectedFS(machine, striped, buffers_per_disk=buffers)
            pattern = make_pattern(pattern_name, 512 * KILOBYTE, 8192,
                                   small_config.n_cps)
            return fs.transfer(pattern).throughput

        assert run_with(2) >= run_with(1) * 0.999

    def test_mismatched_pattern_rejected(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        fs = DiskDirectedFS(machine, striped)
        wrong_size = make_pattern("rb", 64 * KILOBYTE, 8192, small_config.n_cps)
        with pytest.raises(ValueError):
            fs.transfer(wrong_size)
        wrong_cps = make_pattern("rb", 128 * KILOBYTE, 8192, small_config.n_cps * 2)
        with pytest.raises(ValueError):
            fs.transfer(wrong_cps)


class TestRepeatedTransfers:
    def test_multiple_collectives_on_one_machine(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 128 * KILOBYTE)
        fs = DiskDirectedFS(machine, striped)
        read = make_pattern("rb", 128 * KILOBYTE, 8192, small_config.n_cps)
        write = make_pattern("wb", 128 * KILOBYTE, 8192, small_config.n_cps)
        first = fs.transfer(read)
        second = fs.transfer(write)
        third = fs.transfer(read)
        assert first.end_time <= second.start_time <= third.start_time
        assert third.elapsed > 0


class TestSharedQueueMode:
    """DDIO under cross-collective IOP scheduling (disk_scheduler="shared-cscan")."""

    @staticmethod
    def _machine_and_files(n_files=2, file_kb=128, seed=2):
        from repro import FileSystem, Machine, MachineConfig
        from tests.conftest import KILOBYTE

        config = MachineConfig(n_cps=4, n_iops=2, n_disks=2)
        machine = Machine(config, seed=seed, disk_scheduler="shared-cscan")
        filesystem = FileSystem(config, layout_seed=seed)
        files = [filesystem.create_file(f"f{i}", file_kb * KILOBYTE,
                                        layout="random")
                 for i in range(n_files)]
        return machine, files

    def test_single_collective_moves_every_byte(self):
        from repro import make_filesystem, make_pattern

        machine, files = self._machine_and_files(n_files=1)
        fs = make_filesystem("ddio", machine, files[0])
        assert fs.use_shared_queues
        result = fs.transfer(make_pattern("rb", files[0].size_bytes, 8192, 4))
        assert result.counters["bytes_moved"] == result.bytes_transferred
        assert result.counters["reads"] == files[0].size_bytes // 8192

    def test_concurrent_collectives_conserve_bytes(self):
        from repro import make_filesystem, make_pattern
        from repro.sim.events import AllOf

        machine, files = self._machine_and_files(n_files=2)
        fs = make_filesystem("ddio", machine)
        sessions = [
            fs.begin_transfer(
                make_pattern("rb", files[0].size_bytes, 8192, 4), files[0]),
            fs.begin_transfer(
                make_pattern("wb", files[1].size_bytes, 8192, 4), files[1]),
        ]
        machine.env.run(AllOf(machine.env, [s.done for s in sessions]))
        for session in sessions:
            assert session.bytes_moved == session.bytes_requested
            # Per-session disk attribution: each collective saw exactly its
            # own blocks.
            counters = session.result.counters
            n_blocks = session.file.size_bytes // 8192
            if session.pattern.is_read:
                assert counters["reads"] == n_blocks
                assert counters["writes"] == 0
            else:
                assert counters["writes"] == n_blocks
                assert counters["reads"] == 0

    def test_shared_mode_skips_presort_cost_but_not_block_cost(self):
        from repro import make_filesystem

        machine, files = self._machine_and_files(n_files=1)
        fs = make_filesystem("ddio", machine, files[0])
        # presort stays True as a config flag, but shared queues disable the
        # per-session sort (the elevator orders dispatch instead).
        assert fs.presort
        assert fs.use_shared_queues

    def test_writes_drain_own_write_behind(self):
        from repro import make_filesystem, make_pattern

        machine, files = self._machine_and_files(n_files=1)
        fs = make_filesystem("ddio", machine, files[0])
        result = fs.transfer(make_pattern("wb", files[0].size_bytes, 8192, 4))
        for disk in machine.disks:
            assert disk._writes_outstanding == 0
        assert result.counters["bytes_written"] == files[0].size_bytes
