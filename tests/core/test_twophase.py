"""Tests for the two-phase I/O extension."""

import numpy as np
import pytest

from repro import FileSystem, Machine, TwoPhaseFS, make_pattern
from tests.conftest import KILOBYTE, run_transfer


class TestConformingDistribution:
    def test_ranges_cover_file_without_overlap(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 257 * KILOBYTE)
        fs = TwoPhaseFS(machine, striped)
        covered = 0
        previous_end = 0
        for cp in range(small_config.n_cps):
            start, length = fs.conforming_range(cp)
            if length == 0:
                continue
            assert start == previous_end
            previous_end = start + length
            covered += length
        assert covered == striped.size_bytes

    def test_ranges_are_block_aligned(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 256 * KILOBYTE)
        fs = TwoPhaseFS(machine, striped)
        for cp in range(small_config.n_cps):
            start, _length = fs.conforming_range(cp)
            assert start % striped.block_size == 0


class TestPermutationMatrix:
    def test_row_sums_equal_conforming_ranges(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 256 * KILOBYTE)
        fs = TwoPhaseFS(machine, striped)
        pattern = make_pattern("rcb", 256 * KILOBYTE, 8, small_config.n_cps)
        matrix = fs._permutation_matrix(pattern)
        for cp in range(small_config.n_cps):
            _start, length = fs.conforming_range(cp)
            assert matrix[cp].sum() == length

    def test_column_sums_equal_pattern_ownership(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 256 * KILOBYTE)
        fs = TwoPhaseFS(machine, striped)
        pattern = make_pattern("rbc", 256 * KILOBYTE, 8, small_config.n_cps)
        matrix = fs._permutation_matrix(pattern)
        for cp in range(small_config.n_cps):
            assert matrix[:, cp].sum() == pattern.bytes_for_cp(cp)

    def test_block_pattern_needs_no_permutation_between_distinct_cps(self, small_config):
        machine = Machine(small_config, seed=1)
        striped = FileSystem(small_config).create_file("f", 256 * KILOBYTE)
        fs = TwoPhaseFS(machine, striped)
        pattern = make_pattern("rb", 256 * KILOBYTE, 8192, small_config.n_cps)
        matrix = fs._permutation_matrix(pattern)
        off_diagonal = matrix.sum() - np.trace(matrix)
        assert off_diagonal == 0


class TestTransfers:
    def test_read_moves_every_byte(self):
        result, machine, _fs = run_transfer("two-phase", "rcb", record_size=8,
                                            file_size=128 * KILOBYTE)
        assert machine.total_disk_stats()["bytes_read"] >= 128 * KILOBYTE
        assert result.method == "two-phase"

    def test_write_moves_every_byte(self):
        result, machine, _fs = run_transfer("two-phase", "wcb", record_size=8,
                                            file_size=128 * KILOBYTE)
        assert machine.total_disk_stats()["bytes_written"] == 128 * KILOBYTE

    def test_two_phase_beats_traditional_on_small_cyclic_records(self):
        two_phase, _machine, _fs = run_transfer("two-phase", "rc", record_size=8,
                                                file_size=64 * KILOBYTE)
        traditional, _machine, _fs = run_transfer("traditional", "rc", record_size=8,
                                                  file_size=64 * KILOBYTE)
        assert two_phase.throughput > traditional.throughput

    def test_ddio_beats_two_phase(self):
        # Section 7.1: disk-directed I/O should outperform two-phase I/O.
        two_phase, _machine, _fs = run_transfer("two-phase", "rc", record_size=8,
                                                file_size=128 * KILOBYTE)
        ddio, _machine, _fs = run_transfer("disk-directed", "rc", record_size=8,
                                           file_size=128 * KILOBYTE)
        assert ddio.throughput >= two_phase.throughput
