"""Shared fixtures: small machines and helpers that keep simulations fast."""

import pytest

from repro import FileSystem, Machine, MachineConfig, make_filesystem, make_pattern
from repro.sim import Environment

MEGABYTE = 2 ** 20
KILOBYTE = 1024


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def small_config():
    """A small machine (4 CPs, 4 IOPs, 4 disks) for quick end-to-end tests."""
    return MachineConfig(n_cps=4, n_iops=4, n_disks=4)


@pytest.fixture
def tiny_config():
    """The smallest sensible machine (2 CPs, 1 IOP, 1 disk)."""
    return MachineConfig(n_cps=2, n_iops=1, n_disks=1)


@pytest.fixture
def paper_config():
    """The paper's Table-1 machine (16 CPs, 16 IOPs, 16 disks)."""
    return MachineConfig()


def run_transfer(method, pattern_name, *, config=None, record_size=8192,
                 layout="contiguous", file_size=256 * KILOBYTE, seed=1,
                 device="disk"):
    """Build a machine + file + pattern, run one transfer, return the result."""
    config = config or MachineConfig(n_cps=4, n_iops=4, n_disks=4)
    machine = Machine(config, seed=seed, device=device)
    filesystem = FileSystem(config, layout_seed=seed)
    striped = filesystem.create_file("test-file", file_size, layout=layout)
    pattern = make_pattern(pattern_name, file_size, record_size, config.n_cps)
    implementation = make_filesystem(method, machine, striped)
    result = implementation.transfer(pattern)
    return result, machine, implementation


@pytest.fixture
def transfer_runner():
    """Expose :func:`run_transfer` to tests as a fixture."""
    return run_transfer
