"""Tests for MachineConfig (Table 1) and the cost model."""

import pytest

from repro.machine import CostModel, MachineConfig

MEGABYTE = 2 ** 20


class TestDefaultsMatchTable1:
    def test_processor_counts(self, paper_config):
        assert paper_config.n_cps == 16
        assert paper_config.n_iops == 16
        assert paper_config.n_disks == 16

    def test_block_size(self, paper_config):
        assert paper_config.block_size == 8 * 1024

    def test_bus_bandwidth(self, paper_config):
        assert paper_config.bus_bandwidth == 10e6

    def test_interconnect(self, paper_config):
        assert paper_config.interconnect_bandwidth == 200e6
        assert paper_config.router_latency == 20e-9

    def test_cpu_clock(self, paper_config):
        assert paper_config.cpu_mhz == 50.0

    def test_peak_disk_bandwidth_is_37_5_mb(self, paper_config):
        assert paper_config.peak_disk_bandwidth / MEGABYTE == pytest.approx(37.5, abs=0.3)

    def test_peak_bus_bandwidth(self, paper_config):
        assert paper_config.peak_bus_bandwidth == 160e6


class TestValidation:
    def test_rejects_zero_cps(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cps=0)

    def test_rejects_zero_iops(self):
        with pytest.raises(ValueError):
            MachineConfig(n_iops=0)

    def test_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            MachineConfig(n_disks=0)

    def test_rejects_non_sector_multiple_block(self):
        with pytest.raises(ValueError):
            MachineConfig(block_size=1000)


class TestDiskToIopMapping:
    def test_round_robin_assignment(self):
        config = MachineConfig(n_iops=4, n_disks=8)
        assert config.disks_on_iop(0) == [0, 4]
        assert config.disks_on_iop(3) == [3, 7]
        assert config.iop_of_disk(5) == 1

    def test_more_iops_than_disks(self):
        config = MachineConfig(n_iops=8, n_disks=4)
        assert config.disks_on_iop(6) == []
        assert config.iop_of_disk(2) == 2

    def test_disks_per_iop_rounds_up(self):
        assert MachineConfig(n_iops=4, n_disks=6).disks_per_iop == 2
        assert MachineConfig(n_iops=4, n_disks=8).disks_per_iop == 2
        assert MachineConfig(n_iops=16, n_disks=16).disks_per_iop == 1

    def test_invalid_disk_index_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig().iop_of_disk(16)


class TestNodeIds:
    def test_cps_come_first(self, paper_config):
        assert paper_config.cp_node_id(0) == 0
        assert paper_config.cp_node_id(15) == 15
        assert paper_config.iop_node_id(0) == 16
        assert paper_config.iop_node_id(15) == 31
        assert paper_config.n_nodes == 32

    def test_out_of_range_rejected(self, paper_config):
        with pytest.raises(ValueError):
            paper_config.cp_node_id(16)
        with pytest.raises(ValueError):
            paper_config.iop_node_id(16)


class TestOverrides:
    def test_with_overrides_returns_new_config(self, paper_config):
        varied = paper_config.with_overrides(n_cps=4)
        assert varied.n_cps == 4
        assert paper_config.n_cps == 16

    def test_sectors_per_block(self, paper_config):
        assert paper_config.sectors_per_block == 16

    def test_cost_model_is_replaceable(self):
        costs = CostModel(message_overhead=1e-3)
        config = MachineConfig(costs=costs)
        assert config.costs.message_overhead == 1e-3

    def test_cost_model_defaults_are_positive(self):
        costs = CostModel()
        assert costs.message_overhead > 0
        assert costs.cache_lookup_overhead > 0
        assert costs.per_piece_overhead > 0
        assert costs.memory_copy_bandwidth > 0
