"""Tests for the machine builder, nodes and SCSI busses."""

import pytest

from repro.machine import Machine, MachineConfig, ScsiBus
from repro.sim import Environment


class TestMachineConstruction:
    def test_builds_requested_topology(self, small_config):
        machine = Machine(small_config, seed=0)
        assert len(machine.cps) == 4
        assert len(machine.iops) == 4
        assert len(machine.disks) == 4

    def test_each_iop_has_bus_and_disk(self, small_config):
        machine = Machine(small_config, seed=0)
        for iop in machine.iops:
            assert iop.bus is not None
            assert len(iop.disks) == 1

    def test_multiple_disks_per_iop(self):
        config = MachineConfig(n_cps=2, n_iops=1, n_disks=4)
        machine = Machine(config, seed=0)
        assert len(machine.iops[0].disks) == 4
        # All four drives share the single IOP's bus resource.
        resources = {disk.bus_port.resource for disk in machine.disks}
        assert len(resources) == 1

    def test_node_lookup_by_id(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.node(0) is machine.cps[0]
        assert machine.node(small_config.n_cps) is machine.iops[0]

    def test_iop_for_disk(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.iop_for_disk(2) is machine.iops[2]

    def test_local_disk_lookup(self):
        config = MachineConfig(n_cps=2, n_iops=2, n_disks=4)
        machine = Machine(config, seed=0)
        iop0 = machine.iops[0]
        assert iop0.local_disk(0) is machine.disks[0]
        assert iop0.local_disk(2) is machine.disks[2]
        with pytest.raises(KeyError):
            iop0.local_disk(1)

    def test_seed_controls_rotational_positions(self, small_config):
        first = Machine(small_config, seed=1)
        second = Machine(small_config, seed=1)
        third = Machine(small_config, seed=2)
        first_angles = [d.mechanics.rotation.initial_angle_fraction for d in first.disks]
        second_angles = [d.mechanics.rotation.initial_angle_fraction for d in second.disks]
        third_angles = [d.mechanics.rotation.initial_angle_fraction for d in third.disks]
        assert first_angles == second_angles
        assert first_angles != third_angles

    def test_run_and_now_delegate_to_environment(self, small_config):
        machine = Machine(small_config, seed=0)
        machine.run(until=1.5)
        assert machine.now == 1.5

    def test_total_disk_stats_aggregates(self, small_config):
        machine = Machine(small_config, seed=0)
        stats = machine.total_disk_stats()
        assert stats["reads"] == 0
        assert set(stats) >= {"reads", "writes", "bytes_read", "bytes_written"}

    def test_external_environment_can_be_supplied(self, small_config):
        env = Environment()
        machine = Machine(small_config, seed=0, env=env)
        assert machine.env is env


class TestScsiBus:
    def test_busy_fraction_tracks_usage(self):
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=0.0)
        port = bus.port()

        def user(env):
            yield from port.transfer(env, 5_000_000)  # 0.5 s on a 10 MB/s bus
            yield env.timeout(0.5)

        env.run(env.process(user(env)))
        assert bus.busy_fraction() == pytest.approx(0.5, rel=0.05)
        assert bus.bytes_transferred.value == 5_000_000

    def test_transfer_overhead_added(self):
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=1e-3)
        port = bus.port()
        assert port.transfer_time(10_000) == pytest.approx(1e-3 + 1e-3)


class TestNodes:
    def test_compute_charges_cpu(self, small_config):
        machine = Machine(small_config, seed=0)
        cp = machine.cps[0]

        def worker(env):
            yield from cp.compute(0.25)
            return env.now

        assert machine.env.run(machine.env.process(worker(machine.env))) == 0.25

    def test_compute_zero_duration_is_free(self, small_config):
        machine = Machine(small_config, seed=0)
        cp = machine.cps[0]

        def worker(env):
            yield from cp.compute(0.0)
            return env.now

        assert machine.env.run(machine.env.process(worker(machine.env))) == 0.0

    def test_node_names(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.cps[0].name == "cp0"
        assert machine.iops[3].name == "iop3"
