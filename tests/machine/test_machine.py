"""Tests for the machine builder, nodes and SCSI busses."""

import pytest

from repro.machine import Machine, MachineConfig, ScsiBus
from repro.sim import Environment


class TestMachineConstruction:
    def test_builds_requested_topology(self, small_config):
        machine = Machine(small_config, seed=0)
        assert len(machine.cps) == 4
        assert len(machine.iops) == 4
        assert len(machine.disks) == 4

    def test_each_iop_has_bus_and_disk(self, small_config):
        machine = Machine(small_config, seed=0)
        for iop in machine.iops:
            assert iop.bus is not None
            assert len(iop.disks) == 1

    def test_multiple_disks_per_iop(self):
        config = MachineConfig(n_cps=2, n_iops=1, n_disks=4)
        machine = Machine(config, seed=0)
        assert len(machine.iops[0].disks) == 4
        # All four drives share the single IOP's bus resource.
        resources = {disk.bus_port.resource for disk in machine.disks}
        assert len(resources) == 1

    def test_node_lookup_by_id(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.node(0) is machine.cps[0]
        assert machine.node(small_config.n_cps) is machine.iops[0]

    def test_iop_for_disk(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.iop_for_disk(2) is machine.iops[2]

    def test_local_disk_lookup(self):
        config = MachineConfig(n_cps=2, n_iops=2, n_disks=4)
        machine = Machine(config, seed=0)
        iop0 = machine.iops[0]
        assert iop0.local_disk(0) is machine.disks[0]
        assert iop0.local_disk(2) is machine.disks[2]
        with pytest.raises(KeyError):
            iop0.local_disk(1)

    def test_seed_controls_rotational_positions(self, small_config):
        first = Machine(small_config, seed=1)
        second = Machine(small_config, seed=1)
        third = Machine(small_config, seed=2)
        first_angles = [d.mechanics.rotation.initial_angle_fraction for d in first.disks]
        second_angles = [d.mechanics.rotation.initial_angle_fraction for d in second.disks]
        third_angles = [d.mechanics.rotation.initial_angle_fraction for d in third.disks]
        assert first_angles == second_angles
        assert first_angles != third_angles

    def test_run_and_now_delegate_to_environment(self, small_config):
        machine = Machine(small_config, seed=0)
        machine.run(until=1.5)
        assert machine.now == 1.5

    def test_total_disk_stats_aggregates(self, small_config):
        machine = Machine(small_config, seed=0)
        stats = machine.total_disk_stats()
        assert stats["reads"] == 0
        assert set(stats) >= {"reads", "writes", "bytes_read", "bytes_written"}

    def test_external_environment_can_be_supplied(self, small_config):
        env = Environment()
        machine = Machine(small_config, seed=0, env=env)
        assert machine.env is env


class TestScsiBus:
    def test_busy_fraction_tracks_usage(self):
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=0.0)
        port = bus.port()

        def user(env):
            yield from port.transfer(env, 5_000_000)  # 0.5 s on a 10 MB/s bus
            yield env.timeout(0.5)

        env.run(env.process(user(env)))
        assert bus.busy_fraction() == pytest.approx(0.5, rel=0.05)
        assert bus.bytes_transferred.value == 5_000_000

    def test_transfer_overhead_added(self):
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=1e-3)
        port = bus.port()
        assert port.transfer_time(10_000) == pytest.approx(1e-3 + 1e-3)

    def test_transfer_event_fast_path_accounts_like_transfer(self):
        # The uncontended single-event path must record the same byte count
        # and per-session occupancy as the generator path, at transfer end.
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=0.0)
        port = bus.port()
        checkpoints = []

        def fast_user(env):
            event = port.transfer_event(env, 5_000_000, session_id="s1")
            assert event is not None
            checkpoints.append(("before", bus.bytes_transferred.value))
            yield event
            checkpoints.append(("after", bus.bytes_transferred.value))

        def generator_user(env):
            yield env.timeout(1.0)
            yield from port.transfer(env, 5_000_000, session_id="s1")

        env.process(fast_user(env))
        env.process(generator_user(env))
        env.run()
        assert checkpoints == [("before", 0), ("after", 5_000_000)]
        assert bus.bytes_transferred.value == 10_000_000
        assert bus.session_busy_seconds("s1") == pytest.approx(1.0)

    def test_transfer_event_none_on_contended_bus(self):
        env = Environment()
        bus = ScsiBus(env, bandwidth=10e6, transfer_overhead=0.0)
        port = bus.port()
        observed = []

        def holder(env):
            yield from port.transfer(env, 10_000_000)

        def prober(env):
            yield env.timeout(0.5)
            observed.append(port.transfer_event(env, 8192))

        env.process(holder(env))
        env.process(prober(env))
        env.run()
        assert observed == [None]


class TestNodes:
    def test_compute_charges_cpu(self, small_config):
        machine = Machine(small_config, seed=0)
        cp = machine.cps[0]

        def worker(env):
            yield from cp.compute(0.25)
            return env.now

        assert machine.env.run(machine.env.process(worker(machine.env))) == 0.25

    def test_compute_zero_duration_is_free(self, small_config):
        machine = Machine(small_config, seed=0)
        cp = machine.cps[0]

        def worker(env):
            yield from cp.compute(0.0)
            return env.now

        assert machine.env.run(machine.env.process(worker(machine.env))) == 0.0

    def test_node_names(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.cps[0].name == "cp0"
        assert machine.iops[3].name == "iop3"


class TestSharedSchedulerWiring:
    def test_default_machine_has_no_shared_queues(self, small_config):
        machine = Machine(small_config, seed=0)
        assert machine.iop_scheduling is None
        assert machine.shared_queues == [None] * small_config.n_disks
        assert machine.disk_handle(0) is machine.disks[0]

    def test_shared_cscan_builds_one_queue_per_disk(self, small_config):
        from repro.disk import SharedDiskQueue

        machine = Machine(small_config, seed=0, disk_scheduler="shared-cscan")
        assert machine.iop_scheduling == "cscan"
        for index, queue in enumerate(machine.shared_queues):
            assert isinstance(queue, SharedDiskQueue)
            assert queue.disk is machine.disks[index]
            assert machine.disk_handle(index) is queue
            # The drive under a shared queue stays FCFS.
            assert machine.disks[index].scheduler.name == "fcfs"
        # IOPs hand out the queue as the local disk handle.
        iop = machine.iops[0]
        global_index = iop.disk_indices[0]
        assert iop.local_disk_handle(global_index) \
            is machine.disk_handle(global_index)
        assert iop.local_disk(global_index) is machine.disks[global_index]

    def test_plain_policy_configures_the_drive_queue(self, small_config):
        machine = Machine(small_config, seed=0, disk_scheduler="cscan")
        assert machine.iop_scheduling is None
        assert all(disk.scheduler.name == "cscan" for disk in machine.disks)

    def test_unknown_shared_policy_rejected(self, small_config):
        with pytest.raises(ValueError):
            Machine(small_config, seed=0, disk_scheduler="shared-zigzag")

    def test_session_stats_roundtrip(self, small_config):
        machine = Machine(small_config, seed=0)
        disk = machine.disks[0]
        disk.session(9).reads = 3
        disk.session(9).service_time = 0.5
        stats = machine.session_disk_stats(9)
        assert stats["reads"] == 3
        assert stats["disk_service_time"] == 0.5
        machine.release_session(9)
        assert machine.session_disk_stats(9)["reads"] == 0

    def test_policy_object_accepted_for_drive_queue(self, small_config):
        from repro.disk import SstfScheduler

        policy = SstfScheduler()
        machine = Machine(small_config, seed=0, disk_scheduler=policy)
        assert machine.iop_scheduling is None
        assert all(disk.scheduler is policy for disk in machine.disks)

    def test_shared_queue_workers_sizes_the_pool(self, small_config):
        machine = Machine(small_config, seed=0, disk_scheduler="shared-cscan",
                          shared_queue_workers=4)
        assert all(queue.workers == 4 for queue in machine.shared_queues)
        default = Machine(small_config, seed=0, disk_scheduler="shared-cscan")
        assert all(queue.workers == 2 for queue in default.shared_queues)
