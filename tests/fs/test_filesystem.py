"""Tests for the FileSystem metadata manager."""

import pytest

from repro.fs import FileSystem
from repro.machine import MachineConfig


class TestFileSystem:
    def test_create_and_open(self, small_config):
        filesystem = FileSystem(small_config)
        created = filesystem.create_file("data", 1 << 20)
        assert filesystem.open("data") is created
        assert created.n_disks == small_config.n_disks
        assert created.block_size == small_config.block_size

    def test_duplicate_name_rejected(self, small_config):
        filesystem = FileSystem(small_config)
        filesystem.create_file("data", 1 << 20)
        with pytest.raises(ValueError):
            filesystem.create_file("data", 1 << 20)

    def test_open_missing_file(self, small_config):
        with pytest.raises(FileNotFoundError):
            FileSystem(small_config).open("ghost")

    def test_remove(self, small_config):
        filesystem = FileSystem(small_config)
        filesystem.create_file("data", 1 << 20)
        filesystem.remove("data")
        with pytest.raises(FileNotFoundError):
            filesystem.open("data")
        with pytest.raises(FileNotFoundError):
            filesystem.remove("data")

    def test_layout_selection(self, small_config):
        filesystem = FileSystem(small_config)
        contiguous = filesystem.create_file("a", 1 << 20, layout="contiguous")
        scattered = filesystem.create_file("b", 1 << 20, layout="random")
        assert contiguous.layout.name == "contiguous"
        assert scattered.layout.name == "random"

    def test_layout_seed_override(self, small_config):
        filesystem = FileSystem(small_config, layout_seed=1)
        first = filesystem.create_file("a", 1 << 20, layout="random")
        second = filesystem.create_file("b", 1 << 20, layout="random", layout_seed=2)
        assert first.layout.seed == 1
        assert second.layout.seed == 2

    def test_file_too_large_for_disks_rejected(self):
        config = MachineConfig(n_cps=1, n_iops=1, n_disks=1)
        filesystem = FileSystem(config)
        with pytest.raises(ValueError):
            filesystem.create_file("huge", 2 * config.disk_spec.capacity_bytes)
