"""Tests for physical disk layouts."""

import numpy as np
import pytest

from repro.disk import HP97560_SPEC
from repro.fs import ContiguousLayout, RandomBlocksLayout, make_layout
from repro.fs.layout import _PartialPermutation

BLOCK = 8192
SECTORS_PER_BLOCK = BLOCK // 512


class TestContiguousLayout:
    def test_blocks_are_adjacent(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        assert layout.lbn_of(0, 0) == 0
        assert layout.lbn_of(0, 1) == SECTORS_PER_BLOCK
        assert layout.lbn_of(0, 10) == 10 * SECTORS_PER_BLOCK

    def test_same_mapping_on_every_disk(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        assert layout.lbn_of(0, 7) == layout.lbn_of(5, 7)

    def test_start_block_offset(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK, start_block=100)
        assert layout.lbn_of(0, 0) == 100 * SECTORS_PER_BLOCK

    def test_bad_start_block_rejected(self):
        with pytest.raises(ValueError):
            ContiguousLayout(HP97560_SPEC, BLOCK, start_block=-1)

    def test_overflow_rejected(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        with pytest.raises(ValueError):
            layout.lbn_of(0, layout.blocks_per_disk)

    def test_block_size_must_divide_sectors(self):
        with pytest.raises(ValueError):
            ContiguousLayout(HP97560_SPEC, 1000)

    def test_capacity_check(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        layout.check_capacity(layout.blocks_per_disk)
        with pytest.raises(ValueError):
            layout.check_capacity(layout.blocks_per_disk + 1)


class TestRandomBlocksLayout:
    def test_placement_is_a_permutation(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=3)
        lbns = {layout.lbn_of(0, i) for i in range(200)}
        assert len(lbns) == 200
        assert all(lbn % SECTORS_PER_BLOCK == 0 for lbn in lbns)

    def test_same_seed_same_placement(self):
        first = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=11)
        second = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=11)
        assert [first.lbn_of(0, i) for i in range(50)] == \
            [second.lbn_of(0, i) for i in range(50)]

    def test_different_seeds_differ(self):
        first = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=1)
        second = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=2)
        assert [first.lbn_of(0, i) for i in range(50)] != \
            [second.lbn_of(0, i) for i in range(50)]

    def test_disks_have_independent_placements(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=5)
        assert [layout.lbn_of(0, i) for i in range(50)] != \
            [layout.lbn_of(1, i) for i in range(50)]

    def test_placement_is_scattered(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=7)
        lbns = [layout.lbn_of(0, i) for i in range(64)]
        gaps = [abs(b - a) for a, b in zip(lbns, lbns[1:])]
        # Random placement means mostly large jumps between consecutive blocks.
        assert sum(gap > SECTORS_PER_BLOCK for gap in gaps) > len(gaps) // 2

    def test_index_past_capacity_rejected(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=1)
        with pytest.raises(ValueError):
            layout.lbn_of(0, layout.blocks_per_disk + 10)


class TestPartialPermutation:
    """The lazily-grown Fisher-Yates behind RandomBlocksLayout."""

    def _fresh(self, seed=7, n=10000):
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0]))
        return _PartialPermutation(rng, n)

    def test_prefix_independent_of_growth_order(self):
        grown_in_steps = self._fresh()
        all_at_once = self._fresh()
        stepwise = [grown_in_steps.get(i) for i in range(1500)]
        all_at_once.get(1499)  # jump straight to the deep index
        jumped = [all_at_once.get(i) for i in range(1500)]
        assert stepwise == jumped

    def test_growing_never_rewrites_existing_entries(self):
        perm = self._fresh()
        prefix = [perm.get(i) for i in range(100)]
        perm.get(5000)
        assert [perm.get(i) for i in range(100)] == prefix

    def test_full_draw_is_a_permutation(self):
        n = 997  # deliberately not a chunk multiple
        perm = _PartialPermutation(np.random.default_rng(3), n)
        values = [perm.get(i) for i in range(n)]
        assert sorted(values) == list(range(n))

    def test_values_stay_in_range(self):
        perm = self._fresh(n=300)
        assert all(0 <= perm.get(i) < 300 for i in range(300))


class TestRandomBlocksLayoutDeterminism:
    """Placement determinism guarantees across access patterns and instances."""

    def test_placement_independent_of_query_order(self):
        forward = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=13)
        backward = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=13)
        n = 300
        forward_lbns = [forward.lbn_of(0, i) for i in range(n)]
        backward_lbns = [backward.lbn_of(0, i) for i in reversed(range(n))]
        assert forward_lbns == list(reversed(backward_lbns))

    def test_small_file_prefix_matches_larger_file(self):
        # A 10-block file and a 1000-block file on the same (seed, disk) must
        # place their common prefix identically: the placement of block i is a
        # pure function of (seed, disk, i).
        small = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=21)
        large = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=21)
        small_lbns = [small.lbn_of(2, i) for i in range(10)]
        large_lbns = [large.lbn_of(2, i) for i in range(1000)]
        assert large_lbns[:10] == small_lbns

    def test_lazy_draw_touches_only_needed_prefix(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=2)
        layout.lbn_of(0, 5)
        placement = layout._placement_for(0)
        assert len(placement._drawn) < layout.blocks_per_disk // 100


class TestFactory:
    def test_names_and_aliases(self):
        assert isinstance(make_layout("contiguous", HP97560_SPEC, BLOCK),
                          ContiguousLayout)
        assert isinstance(make_layout("random", HP97560_SPEC, BLOCK),
                          RandomBlocksLayout)
        assert isinstance(make_layout("random-blocks", HP97560_SPEC, BLOCK),
                          RandomBlocksLayout)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            make_layout("raid5", HP97560_SPEC, BLOCK)

    def test_seed_forwarded_to_random_layout(self):
        layout = make_layout("random", HP97560_SPEC, BLOCK, seed=99)
        assert layout.seed == 99
