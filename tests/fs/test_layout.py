"""Tests for physical disk layouts."""

import pytest

from repro.disk import HP97560_SPEC
from repro.fs import ContiguousLayout, RandomBlocksLayout, make_layout

BLOCK = 8192
SECTORS_PER_BLOCK = BLOCK // 512


class TestContiguousLayout:
    def test_blocks_are_adjacent(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        assert layout.lbn_of(0, 0) == 0
        assert layout.lbn_of(0, 1) == SECTORS_PER_BLOCK
        assert layout.lbn_of(0, 10) == 10 * SECTORS_PER_BLOCK

    def test_same_mapping_on_every_disk(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        assert layout.lbn_of(0, 7) == layout.lbn_of(5, 7)

    def test_start_block_offset(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK, start_block=100)
        assert layout.lbn_of(0, 0) == 100 * SECTORS_PER_BLOCK

    def test_bad_start_block_rejected(self):
        with pytest.raises(ValueError):
            ContiguousLayout(HP97560_SPEC, BLOCK, start_block=-1)

    def test_overflow_rejected(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        with pytest.raises(ValueError):
            layout.lbn_of(0, layout.blocks_per_disk)

    def test_block_size_must_divide_sectors(self):
        with pytest.raises(ValueError):
            ContiguousLayout(HP97560_SPEC, 1000)

    def test_capacity_check(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        layout.check_capacity(layout.blocks_per_disk)
        with pytest.raises(ValueError):
            layout.check_capacity(layout.blocks_per_disk + 1)


class TestRandomBlocksLayout:
    def test_placement_is_a_permutation(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=3)
        lbns = {layout.lbn_of(0, i) for i in range(200)}
        assert len(lbns) == 200
        assert all(lbn % SECTORS_PER_BLOCK == 0 for lbn in lbns)

    def test_same_seed_same_placement(self):
        first = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=11)
        second = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=11)
        assert [first.lbn_of(0, i) for i in range(50)] == \
            [second.lbn_of(0, i) for i in range(50)]

    def test_different_seeds_differ(self):
        first = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=1)
        second = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=2)
        assert [first.lbn_of(0, i) for i in range(50)] != \
            [second.lbn_of(0, i) for i in range(50)]

    def test_disks_have_independent_placements(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=5)
        assert [layout.lbn_of(0, i) for i in range(50)] != \
            [layout.lbn_of(1, i) for i in range(50)]

    def test_placement_is_scattered(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=7)
        lbns = [layout.lbn_of(0, i) for i in range(64)]
        gaps = [abs(b - a) for a, b in zip(lbns, lbns[1:])]
        # Random placement means mostly large jumps between consecutive blocks.
        assert sum(gap > SECTORS_PER_BLOCK for gap in gaps) > len(gaps) // 2

    def test_index_past_capacity_rejected(self):
        layout = RandomBlocksLayout(HP97560_SPEC, BLOCK, seed=1)
        with pytest.raises(ValueError):
            layout.lbn_of(0, layout.blocks_per_disk + 10)


class TestFactory:
    def test_names_and_aliases(self):
        assert isinstance(make_layout("contiguous", HP97560_SPEC, BLOCK),
                          ContiguousLayout)
        assert isinstance(make_layout("random", HP97560_SPEC, BLOCK),
                          RandomBlocksLayout)
        assert isinstance(make_layout("random-blocks", HP97560_SPEC, BLOCK),
                          RandomBlocksLayout)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            make_layout("raid5", HP97560_SPEC, BLOCK)

    def test_seed_forwarded_to_random_layout(self):
        layout = make_layout("random", HP97560_SPEC, BLOCK, seed=99)
        assert layout.seed == 99
