"""Tests for striped files."""

import pytest

from repro.disk import HP97560_SPEC
from repro.fs import ContiguousLayout, StripedFile

BLOCK = 8192


def make_file(size_bytes=32 * BLOCK, n_disks=4):
    layout = ContiguousLayout(HP97560_SPEC, BLOCK)
    return StripedFile("f", size_bytes, BLOCK, n_disks, layout)


class TestStriping:
    def test_block_count(self):
        assert make_file(32 * BLOCK).n_blocks == 32

    def test_partial_last_block_rounds_up(self):
        assert make_file(32 * BLOCK + 1).n_blocks == 33

    def test_round_robin_disks(self):
        striped = make_file()
        assert [striped.disk_of_block(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_local_index_increments_per_disk(self):
        striped = make_file()
        assert striped.local_index_of_block(0) == 0
        assert striped.local_index_of_block(4) == 1
        assert striped.local_index_of_block(9) == 2

    def test_location_combines_striping_and_layout(self):
        striped = make_file()
        location = striped.location(5)
        assert location.disk_index == 1
        assert location.local_index == 1
        assert location.lbn == 1 * (BLOCK // 512)

    def test_blocks_on_disk(self):
        striped = make_file(size_bytes=10 * BLOCK, n_disks=4)
        assert striped.blocks_on_disk(0) == [0, 4, 8]
        assert striped.blocks_on_disk(3) == [3, 7]

    def test_every_block_appears_on_exactly_one_disk(self):
        striped = make_file(size_bytes=21 * BLOCK, n_disks=4)
        seen = [block for disk in range(4) for block in striped.blocks_on_disk(disk)]
        assert sorted(seen) == list(range(21))

    def test_invalid_block_rejected(self):
        striped = make_file()
        with pytest.raises(ValueError):
            striped.location(32)
        with pytest.raises(ValueError):
            striped.disk_of_block(-1)

    def test_invalid_sizes_rejected(self):
        layout = ContiguousLayout(HP97560_SPEC, BLOCK)
        with pytest.raises(ValueError):
            StripedFile("f", 0, BLOCK, 4, layout)
        with pytest.raises(ValueError):
            StripedFile("f", BLOCK, BLOCK, 0, layout)


class TestByteRanges:
    def test_block_of_offset(self):
        striped = make_file()
        assert striped.block_of_offset(0) == 0
        assert striped.block_of_offset(BLOCK) == 1
        assert striped.block_of_offset(BLOCK - 1) == 0

    def test_offset_outside_file_rejected(self):
        striped = make_file()
        with pytest.raises(ValueError):
            striped.block_of_offset(striped.size_bytes)

    def test_block_pieces_within_one_block(self):
        striped = make_file()
        pieces = list(striped.block_pieces(100, 200))
        assert pieces == [(0, 100, 200)]

    def test_block_pieces_spanning_blocks(self):
        striped = make_file()
        pieces = list(striped.block_pieces(BLOCK - 100, 300))
        assert pieces == [(0, BLOCK - 100, 100), (1, 0, 200)]

    def test_block_pieces_cover_whole_range(self):
        striped = make_file()
        offset, length = 1234, 5 * BLOCK + 17
        pieces = list(striped.block_pieces(offset, length))
        assert sum(piece for _b, _o, piece in pieces) == length
        # Pieces are in file order and contiguous.
        position = offset
        for block, offset_in_block, piece in pieces:
            assert block * BLOCK + offset_in_block == position
            position += piece

    def test_block_pieces_zero_length(self):
        assert list(make_file().block_pieces(10, 0)) == []

    def test_block_pieces_out_of_range_rejected(self):
        striped = make_file()
        with pytest.raises(ValueError):
            list(striped.block_pieces(striped.size_bytes - 10, 20))
