#!/usr/bin/env python
"""Fail when documentation contains dead links or stale code references.

Two layers of guard over ``README.md`` and ``docs/*.md``:

**Dead links.**  Scans Markdown for inline links and image references, and
checks that every *relative* target exists on disk, resolved against the file
containing the link.  External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are not checked — this
is a repository-consistency guard, not a crawler.  Anchored file links
(``architecture.md#the-layers``) are checked for file existence only.

**Staleness.**  Documentation rots in ways a link checker cannot see: a
renamed module, a dropped CLI flag, a retired experiment family.  The
staleness pass grep-checks three kinds of inline-code references against the
tree (no imports, so it runs in a bare CI image):

* *tree paths* — code spans that look like repository paths
  (``src/repro/sim/engine.py``, ``tools/check_schema_bump.py``,
  ``benchmarks/``, a pytest node id) must exist on disk;
* *module paths* — dotted ``repro.*`` references (``repro.workload.driver``)
  must resolve to a module under ``src/``, allowing one trailing attribute
  segment (``repro.experiments.runner.CACHE_SCHEMA_VERSION``);
* *CLI flags and figure names* — every ``--flag`` mentioned in the docs must
  appear verbatim in some Python source under ``src/``, ``tools/``,
  ``benchmarks/`` or ``examples/`` (or be a known external-tool flag), and
  every ``ddio-figures NAME`` command must name a key of the ``FIGURES``
  registry (parsed textually from ``src/repro/experiments/figures.py``).

**Quoted numbers.**  Markdown tables that quote measured results carry a
``doctable`` marker tying them to their ``docs/data/*.json`` artifact::

    <!-- doctable source=data/service_sched.json select=policy_grid
         row={K}|{scheduler}|{load_req_s:g}|{throughput_mb:.2f}|{p99_ms:.0f} -->

At check time every data row of the table that follows is re-rendered from
the JSON via the ``row`` template (``str.format`` specs per cell, cells
joined with ``|``); a doc row that matches no JSON record fails the check —
so editing the model without regenerating the artifact, or hand-tweaking a
quoted number, is caught in CI.  The doc may quote a *subset* of the
records (rows are matched set-wise, ``**bold**`` and whitespace ignored).
Pivoted tables (one doc row spanning several JSON records) declare
``group=<field> pivot=<field>``: records are grouped by the ``group`` field
and each group member's fields are exposed to the template as
``{<pivot-value>__<field>}`` with ``-`` mapped to ``_`` (e.g.
``{disk_directed__throughput_mb:.2f}``).

CI runs this on every pull request::

    python tools/check_doc_links.py

Exit status 0 when everything resolves, 1 otherwise (each failure is
reported as ``file:line: kind -> reference``).
"""

import argparse
import json
import re
import sys
from pathlib import Path

#: Inline Markdown links/images: [text](target) / ![alt](target).
#: Reference-style definitions ([name]: target) are rare here and skipped.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: Inline code spans (single-backtick; fenced blocks are handled separately).
_CODE_SPAN_RE = re.compile(r"`([^`]+)`")

#: A code span that looks like a repository path.  Top-level trees only, so
#: prose like `a/b` never false-positives.
_TREE_PATH_RE = re.compile(
    r"^(?:src|tools|benchmarks|examples|tests|docs)/[\w./-]*$")

#: A dotted module reference into the package.
_MODULE_RE = re.compile(r"^repro(?:\.\w+)+$")

#: A CLI long flag.
_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")

#: ``ddio-figures NAME`` commands (however invoked).
_FIGURE_CMD_RE = re.compile(r"ddio-figures\s+([a-z][a-z0-9-]*)")

#: Flags that belong to external tools the docs legitimately mention.
_EXTERNAL_FLAGS = frozenset({
    "--benchmark-columns", "--benchmark-json", "--cov", "--cov-fail-under",
    "--cov-report", "--import-mode", "--upgrade",
})

#: Where project CLI flags are defined.
_FLAG_SOURCE_DIRS = ("src", "tools", "benchmarks", "examples")

#: The figure registry, parsed textually (CI's docs job has no numpy).
_FIGURES_SOURCE = "src/repro/experiments/figures.py"

#: CLI pseudo-figures accepted beside the registry keys.
_FIGURE_EXTRAS = frozenset({"all", "claims"})


def iter_links(text):
    """Yield ``(line_number, target)`` for every inline link in *text*."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            yield line_number, match.group(1)


def is_checkable(target):
    """Whether *target* is a relative path this guard should verify."""
    if target.startswith(_EXTERNAL):
        return False
    if target.startswith("#"):
        return False  # in-page anchor
    if target.startswith("/"):
        return False  # site-absolute: nothing sensible to resolve against
    return True


def dead_links(markdown_path, repo_root=None):
    """The list of ``(line, target)`` links in *markdown_path* that do not resolve."""
    markdown_path = Path(markdown_path)
    del repo_root  # relative links resolve against the containing file only
    missing = []
    text = markdown_path.read_text(encoding="utf-8")
    for line_number, target in iter_links(text):
        if not is_checkable(target):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_path.parent / path_part)
        if not resolved.exists():
            missing.append((line_number, target))
    return missing


# -- staleness checks --------------------------------------------------------------

def iter_code_references(text):
    """Yield ``(line_number, text)`` for inline spans and fenced-block lines."""
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            yield line_number, stripped
        else:
            for match in _CODE_SPAN_RE.finditer(line):
                yield line_number, match.group(1)


def tree_path_exists(reference, root):
    """Whether a path-looking code span resolves in the repository."""
    path = reference.split("::", 1)[0]  # strip a pytest node id
    return (Path(root) / path).exists()


def module_resolves(reference, root):
    """Whether a dotted ``repro.*`` span resolves under ``src/``.

    The full dotted path may name a module or a package; one trailing
    segment may instead be an attribute (class, function, constant) of the
    resolved module — existence of the attribute itself is not checked
    (that would require importing the tree), only the module prefix.  The
    attribute fallback needs a prefix of at least two segments: otherwise
    every ``repro.<typo>`` would pass via the top-level package.
    """
    src = Path(root) / "src"
    parts = reference.split(".")
    candidates = [parts]
    if len(parts) > 2:
        candidates.append(parts[:-1])
    for candidate in candidates:
        base = src.joinpath(*candidate)
        if base.with_suffix(".py").exists() or (base / "__init__.py").exists():
            return True
    return False


def known_flags(root):
    """Every ``--flag`` literal appearing in project Python sources."""
    flags = set(_EXTERNAL_FLAGS)
    for tree in _FLAG_SOURCE_DIRS:
        for source in (Path(root) / tree).rglob("*.py"):
            try:
                flags.update(_FLAG_RE.findall(source.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError):
                continue
    return flags


def figure_names(root):
    """Keys of the FIGURES registry, parsed from the source text."""
    source_path = Path(root) / _FIGURES_SOURCE
    try:
        source = source_path.read_text(encoding="utf-8")
    except OSError:
        return set()
    match = re.search(r"^FIGURES\s*=\s*\{(.*?)^\}", source,
                      re.MULTILINE | re.DOTALL)
    if match is None:
        return set()
    return set(re.findall(r"[\"']([a-z][a-z0-9-]*)[\"']\s*:", match.group(1)))


def stale_references(markdown_path, root=".", flags=None, figures=None):
    """``(line, kind, reference)`` doc references that no longer match the tree.

    *flags* and *figures* may be precomputed (via :func:`known_flags` /
    :func:`figure_names`) so a multi-file run scans the Python tree once,
    not once per document.
    """
    markdown_path = Path(markdown_path)
    text = markdown_path.read_text(encoding="utf-8")
    if flags is None:
        flags = known_flags(root)
    if figures is None:
        figures = figure_names(root) | _FIGURE_EXTRAS
    stale = []
    for line_number, reference in iter_code_references(text):
        if _TREE_PATH_RE.match(reference.split("::", 1)[0]):
            if not tree_path_exists(reference, root):
                stale.append((line_number, "path", reference))
            continue
        if _MODULE_RE.match(reference):
            if not module_resolves(reference, root):
                stale.append((line_number, "module", reference))
            continue
        for flag in _FLAG_RE.findall(reference):
            if flag not in flags:
                stale.append((line_number, "flag", flag))
        for name in _FIGURE_CMD_RE.findall(reference):
            if name not in figures:
                stale.append((line_number, "figure", name))
    return stale


# -- doctable markers ---------------------------------------------------------------

#: ``<!-- doctable key=value ... -->`` markers (may span lines).
_DOCTABLE_RE = re.compile(r"<!--\s*doctable\s+(.*?)-->", re.DOTALL)

#: ``key=value`` attributes inside a marker (value quoted when it has spaces).
_DOCTABLE_ATTR_RE = re.compile(r"(\w+)=(\"[^\"]*\"|\S+)")


def _doctable_attrs(body):
    return {key: value.strip('"')
            for key, value in _DOCTABLE_ATTR_RE.findall(body)}


def _normalize_row(line):
    """A table line as comparable text: cells stripped of bold and spaces."""
    cells = [cell.strip().replace("**", "")
             for cell in line.strip().strip("|").split("|")]
    return "|".join(cells)


def _select_records(data, path):
    """Follow a dotted *path* (e.g. ``pool_sweep.rows``) into loaded JSON."""
    for part in path.split("."):
        data = data[part]
    if not isinstance(data, list):
        raise KeyError(path)
    return data


def _render_expected(records, template, group=None, pivot=None):
    """The set of normalized rows the JSON can produce under *template*.

    Plain mode formats each record directly.  Group/pivot mode first groups
    records by the *group* field, then exposes each member's fields as
    ``<pivot-value>__<field>`` (dashes mapped to underscores so the names
    are valid format fields) alongside the shared group field.
    """
    if group is None:
        contexts = records
    else:
        grouped = {}
        for record in records:
            grouped.setdefault(record[group], []).append(record)
        contexts = []
        for value, members in grouped.items():
            context = {group: value}
            for member in members:
                prefix = str(member[pivot]).replace("-", "_")
                for field, field_value in member.items():
                    context[f"{prefix}__{field}"] = field_value
            contexts.append(context)
    return {_normalize_row(template.format_map(context))
            for context in contexts}


def _table_after(lines, start_index):
    """``(line_number, row)`` data rows of the first table at/after *start_index*.

    Skips blank and prose lines, then consumes header + separator + data
    rows.  Returns an empty list when no table starts within a few lines
    (the marker is then dangling — reported by the caller).
    """
    index = start_index
    while index < len(lines) and not lines[index].lstrip().startswith("|"):
        if index - start_index > 5 and lines[index].strip():
            return []  # wandered into prose: no table follows the marker
        index += 1
    index += 2  # header + |---| separator
    rows = []
    while index < len(lines) and lines[index].lstrip().startswith("|"):
        rows.append((index + 1, lines[index]))
        index += 1
    return rows


def stale_tables(markdown_path):
    """``(line, kind, reference)`` failures for every doctable in the file.

    Each marker's table is re-rendered from its JSON artifact; any doc row
    the JSON cannot produce is stale (model changed without regenerating,
    or a hand-edited number).
    """
    markdown_path = Path(markdown_path)
    text = markdown_path.read_text(encoding="utf-8")
    lines = text.splitlines()
    failures = []
    for match in _DOCTABLE_RE.finditer(text):
        marker_line = text[:match.start()].count("\n") + 1
        attrs = _doctable_attrs(match.group(1))
        source = attrs.get("source")
        template = attrs.get("row")
        if not source or not template:
            failures.append((marker_line, "doctable",
                             "marker needs source= and row="))
            continue
        source_path = markdown_path.parent / source
        try:
            data = json.loads(source_path.read_text(encoding="utf-8"))
            records = _select_records(data, attrs.get("select", "rows"))
            expected = _render_expected(records, template,
                                        group=attrs.get("group"),
                                        pivot=attrs.get("pivot"))
        except OSError:
            failures.append((marker_line, "doctable", f"missing {source}"))
            continue
        except (KeyError, IndexError, ValueError) as error:
            failures.append((marker_line, "doctable",
                             f"{source}: {error!r}"))
            continue
        end_line = text[:match.end()].count("\n") + 1
        rows = _table_after(lines, end_line)
        if not rows:
            failures.append((marker_line, "doctable",
                             "no table follows the marker"))
            continue
        for line_number, row in rows:
            if _normalize_row(row) not in expected:
                failures.append((line_number, "table-row",
                                 row.strip()))
    return failures


def default_files(root):
    """README.md plus every Markdown file under docs/."""
    root = Path(root)
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Check Markdown files for dead links and stale "
                    "code references.")
    parser.add_argument("files", nargs="*", type=Path,
                        help="Markdown files to check "
                             "(default: README.md and docs/*.md)")
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root for the default file set and "
                             "the staleness checks")
    parser.add_argument("--links-only", action="store_true",
                        help="skip the staleness pass (dead links only)")
    args = parser.parse_args(argv)

    files = args.files or default_files(args.root)
    if not args.links_only:
        flags = known_flags(args.root)
        figures = figure_names(args.root) | _FIGURE_EXTRAS
    failures = 0
    for markdown in files:
        for line_number, target in dead_links(markdown):
            print(f"{markdown}:{line_number}: dead link -> {target}")
            failures += 1
        if args.links_only:
            continue
        for line_number, kind, reference in stale_references(
                markdown, root=args.root, flags=flags, figures=figures):
            print(f"{markdown}:{line_number}: stale {kind} -> {reference}")
            failures += 1
        for line_number, kind, reference in stale_tables(markdown):
            print(f"{markdown}:{line_number}: stale {kind} -> {reference}")
            failures += 1
    if failures:
        print(f"{failures} dead link(s) / stale reference(s).", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links and code references "
          f"resolve.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
