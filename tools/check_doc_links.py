#!/usr/bin/env python
"""Fail when documentation contains dead relative links.

Scans Markdown files (by default ``README.md`` and ``docs/*.md``) for inline
links and image references, and checks that every *relative* target exists
on disk, resolved against the file containing the link.  External links
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors
(``#section``) are not checked — this is a repository-consistency guard,
not a crawler.  Anchored file links (``architecture.md#the-layers``) are
checked for file existence only.

CI runs this on every pull request::

    python tools/check_doc_links.py

Exit status 0 when every relative link resolves, 1 otherwise (each dead
link is reported as ``file:line: target``).
"""

import argparse
import re
import sys
from pathlib import Path

#: Inline Markdown links/images: [text](target) / ![alt](target).
#: Reference-style definitions ([name]: target) are rare here and skipped.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text):
    """Yield ``(line_number, target)`` for every inline link in *text*."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            yield line_number, match.group(1)


def is_checkable(target):
    """Whether *target* is a relative path this guard should verify."""
    if target.startswith(_EXTERNAL):
        return False
    if target.startswith("#"):
        return False  # in-page anchor
    if target.startswith("/"):
        return False  # site-absolute: nothing sensible to resolve against
    return True


def dead_links(markdown_path, repo_root=None):
    """The list of ``(line, target)`` links in *markdown_path* that do not resolve."""
    markdown_path = Path(markdown_path)
    del repo_root  # relative links resolve against the containing file only
    missing = []
    text = markdown_path.read_text(encoding="utf-8")
    for line_number, target in iter_links(text):
        if not is_checkable(target):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_path.parent / path_part)
        if not resolved.exists():
            missing.append((line_number, target))
    return missing


def default_files(root):
    """README.md plus every Markdown file under docs/."""
    root = Path(root)
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Check Markdown files for dead relative links.")
    parser.add_argument("files", nargs="*", type=Path,
                        help="Markdown files to check "
                             "(default: README.md and docs/*.md)")
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root for the default file set")
    args = parser.parse_args(argv)

    files = args.files or default_files(args.root)
    failures = 0
    for markdown in files:
        for line_number, target in dead_links(markdown):
            print(f"{markdown}:{line_number}: dead link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} dead link(s).", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
