#!/usr/bin/env python
"""Fail when model-relevant sources changed without a cache-schema bump.

The on-disk :class:`~repro.experiments.runner.ResultCache` is keyed (and its
entries stamped) with ``CACHE_SCHEMA_VERSION``.  Any change under the
simulation model's source trees can alter simulated results, and without a
version bump a cached figure would silently keep serving numbers from the old
model.  CI runs this script on every pull request::

    python tools/check_schema_bump.py --base origin/main

Exit status 0 when no model file changed, or when the version was bumped;
1 when model files changed and the version did not.  A missing/unresolvable
base ref degrades to a skip (exit 0 with a notice) so the script is safe to
run in shallow clones and fresh repositories.
"""

import argparse
import re
import subprocess
import sys

#: Source trees whose changes can alter simulated results.  Documentation,
#: tests, benchmarks and the experiment harness itself (figure plumbing,
#: report formatting) are deliberately excluded.  The runner module is
#: included even though it is harness code: it defines the cache-envelope
#: format, the content hash and the key derivation, and a change to any of
#: those can make old entries unreadable — or worse, readable-but-wrong —
#: for the multi-host shared store, so it must carry a bump too.
MODEL_PATHS = (
    "src/repro/core/",
    "src/repro/disk/",
    "src/repro/fs/",
    "src/repro/machine/",
    "src/repro/network/",
    "src/repro/patterns/",
    "src/repro/sim/",
    "src/repro/workload/",
    "src/repro/experiments/runner.py",
)

#: The file that declares the version.
RUNNER_PATH = "src/repro/experiments/runner.py"

_VERSION_RE = re.compile(r"^CACHE_SCHEMA_VERSION\s*=\s*(\d+)\s*$", re.MULTILINE)


def extract_version(source):
    """The declared CACHE_SCHEMA_VERSION in *source*, or None."""
    match = _VERSION_RE.search(source or "")
    return int(match.group(1)) if match else None


def model_files_changed(changed_files):
    """The subset of *changed_files* that lives under a model source tree."""
    return [name for name in changed_files
            if any(name.startswith(prefix) for prefix in MODEL_PATHS)]


def needs_bump(changed_files, base_version, head_version):
    """True when the change set requires a bump that did not happen."""
    if not model_files_changed(changed_files):
        return False
    if head_version is None:
        # The declaration is missing or no longer parseable at HEAD — fail
        # safe: a guard that cannot see the version cannot certify the bump.
        return True
    if base_version is None:
        return False  # first introduction of the marker counts as a bump
    # The version must strictly increase; equality or a decrement could both
    # serve entries produced under a different model.
    return head_version <= base_version


def _git(*args):
    return subprocess.run(["git", *args], capture_output=True, text=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default="origin/main",
                        help="ref to diff against (default: origin/main)")
    args = parser.parse_args(argv)

    merge_base = _git("merge-base", args.base, "HEAD")
    if merge_base.returncode != 0:
        print(f"schema-guard: cannot resolve {args.base!r}; skipping "
              f"({merge_base.stderr.strip()})")
        return 0
    base = merge_base.stdout.strip()

    diff = _git("diff", "--name-only", base, "HEAD")
    if diff.returncode != 0:
        print(f"schema-guard: git diff failed; skipping ({diff.stderr.strip()})")
        return 0
    changed = [line for line in diff.stdout.splitlines() if line]

    model_changed = model_files_changed(changed)
    if not model_changed:
        print("schema-guard: no model-relevant files changed")
        return 0

    base_runner = _git("show", f"{base}:{RUNNER_PATH}")
    base_version = extract_version(
        base_runner.stdout if base_runner.returncode == 0 else "")
    try:
        with open(RUNNER_PATH, "r", encoding="utf-8") as handle:
            head_version = extract_version(handle.read())
    except OSError:
        head_version = None

    if needs_bump(changed, base_version, head_version):
        print("schema-guard: FAIL — model-relevant files changed without a "
              "CACHE_SCHEMA_VERSION bump:")
        for name in model_changed:
            print(f"  {name}")
        print(f"\nBump CACHE_SCHEMA_VERSION in {RUNNER_PATH} "
              f"(currently {head_version}) so cached results from the old "
              f"model can never be served for the new one.")
        return 1

    print(f"schema-guard: ok — {len(model_changed)} model file(s) changed, "
          f"version {base_version} -> {head_version}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
