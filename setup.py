"""Setup shim for environments where PEP 660 editable installs are unavailable.

The canonical metadata lives in ``pyproject.toml``; it is duplicated here only
so that ``python setup.py develop`` keeps working on minimal toolchains
(setuptools without the ``wheel`` package, no network for build isolation).
"""
from setuptools import find_packages, setup

setup(
    name="ddio-repro",
    version="0.2.0",
    description=(
        "Reproduction of Kotz's 'Disk-directed I/O for MIMD Multiprocessors' "
        "(OSDI 1994)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["ddio-figures=repro.experiments.figures:main"],
    },
)
