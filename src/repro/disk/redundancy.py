"""Declustered RAID-5-style parity behind the machine's ``redundancy`` axis.

The paper's array has no redundancy: a fail-stop drive (PR 6) converts every
block it held into ``failed_bytes``.  This module adds the classic remedy at
the layer the paper argues should be smart — the I/O processor.  Parity is
*declustered* by rotating the parity column across drives: physical block
row ``r`` stores its parity on drive ``r % D`` and data on the other ``D-1``
drives, so reconstruction load spreads over every survivor instead of
hammering a dedicated parity drive.

Three cooperating pieces:

* :class:`ParityArray` — shared geometry, counters, the hot spare, and the
  background parity-update machinery.  One per machine when
  ``redundancy="parity"``.
* :class:`ParityDisk` — a per-drive wrapper installed as the machine's disk
  *handle*, duck-compatible with :class:`~repro.disk.drive.Disk` /
  :class:`~repro.disk.flash.SSD` / :class:`~repro.disk.shared_queue.SharedDiskQueue`
  the same way the device axis is.  Reads on a failed drive transparently
  reconstruct from the surviving stripe members (fan-out reads plus XOR time
  charged on the owning IOP's CPU); writes trigger read-modify-write or
  full-stripe parity updates; writes to a dead drive degrade to parity-only
  logging so no byte is ever *lost* — only slower.
* :class:`RebuildProcess` — streams the dead drive's used extent onto the
  hot spare under a bandwidth cap, reading through the *foreground* handles
  (shared IOP queues included) so rebuild traffic and collective traffic
  contend exactly where they would in a real IOP.

Cost honesty.  Every reconstruction fans out real reads to the survivors'
drives (positioning + transfer + bus, concurrently) and then charges
``(inputs × bytes) / memory_copy_bandwidth`` of XOR time on the IOP that owns
the rebuilt drive.  A parity update for ``m`` dirty data columns of a
``D-1``-column stripe pre-reads ``min(m + 1, D-1-m)`` blocks — old-data+old-
parity read-modify-write or reconstruct-write, whichever is cheaper — and
zero blocks for a full stripe, then writes the parity block.  Updates are
coalesced per row over a short window (write-behind), so the small-write
penalty lands where it does in real arrays: on drive occupancy, not on the
foreground write's acceptance latency.

Transient errors are *not* absorbed here: the client's retry policy owns
them.  Only permanent errors (bad sector, fail-stop) trigger reconstruction,
plus explicit :meth:`ParityDisk.repair` calls from checksum-verifying
clients that caught silent corruption.
"""

from repro.disk.drive import READ, WRITE, DiskRequest
from repro.disk.faults import FAIL_STOP, PERMANENT_ERRORS
from repro.sim.events import AllOf, Event, chain

#: The redundancy schemes the ``redundancy=`` axis selects between.
REDUNDANCY_MODES = ("none", "parity")

#: Default rebuild bandwidth cap, bytes/second of reconstructed data.  Low
#: enough that rebuild visibly coexists with foreground load instead of
#: finishing instantly at simulation scale.
DEFAULT_REBUILD_BANDWIDTH = 4 * 1024 * 1024

#: Seconds a dirty stripe row waits for more columns before its parity
#: update is issued — the write-behind coalescing window that lets a burst
#: of same-row writes become one full-stripe update.
PARITY_COALESCE_WINDOW = 0.002

#: Session tag carried by rebuild traffic through the shared disk queues.
REBUILD_SESSION = "rebuild"


def _synthetic(op, lbn, n_sectors, tag, session_id, status="ok", error=None):
    """A completed request standing in for data served by reconstruction."""
    request = DiskRequest(op=op, lbn=lbn, n_sectors=n_sectors, tag=tag,
                          session_id=session_id)
    request.status = status
    request.error = error
    return request


class ParityArray:
    """Shared state of one machine's declustered parity array.

    Owns the stripe geometry, the per-drive used-row map (registered from
    file extents, plus rows discovered from traffic), the hot spare, the
    background parity-update processes and the redundancy counters.  The
    per-drive :class:`ParityDisk` handles delegate all cross-drive work
    here.
    """

    def __init__(self, machine, rebuild_bandwidth=0.0):
        if machine.config.n_disks < 3:
            raise ValueError(
                "parity needs at least 3 drives "
                f"(got {machine.config.n_disks}): one parity column per row "
                "plus at least two data columns")
        self.machine = machine
        self.env = machine.env
        self.n_disks = machine.config.n_disks
        self.sectors_per_block = machine.config.sectors_per_block
        self.block_bytes = machine.config.block_size
        self.memory_copy_bandwidth = machine.config.costs.memory_copy_bandwidth
        #: raw drives and pre-wrap foreground handles (queue or raw drive),
        #: captured before the machine swaps ParityDisk wrappers in
        self.raw_disks = list(machine.disks)
        self.handles = list(machine.disk_handles)
        self.spare = machine.spare_disks[0] if machine.spare_disks else None
        self.rebuild_bandwidth = rebuild_bandwidth if rebuild_bandwidth > 0 \
            else DEFAULT_REBUILD_BANDWIDTH
        self.counters = {
            "reconstructed_bytes": 0,
            "parity_overhead_bytes": 0,
            "degraded_reads": 0,
            "degraded_writes": 0,
            "parity_updates": 0,
            "full_stripe_updates": 0,
            "scrub_repairs": 0,
            "rebuilt_rows": 0,
            "rebuild_seconds": 0.0,
        }
        #: per-drive sets of physical block rows holding live data or parity,
        #: the extent map rebuild walks; populated by :meth:`register_file`
        #: and lazily by degraded traffic
        self.used_rows = [set() for _ in range(self.n_disks)]
        self._rebuilt_rows = set()
        self._parity_pending = {}   # row -> set of dirty data column indices
        self.rebuild = None

    # -- geometry ---------------------------------------------------------------
    def parity_disk_of_row(self, row):
        """The drive holding row *row*'s parity block (rotated: ``r % D``)."""
        return row % self.n_disks

    def row_of_lbn(self, lbn):
        """The physical block row an LBN falls in."""
        return lbn // self.sectors_per_block

    def is_rebuilt(self, row):
        """True once *row*'s lost block has been reconstructed on the spare."""
        return row in self._rebuilt_rows

    def failed(self, disk_index, now):
        """True when drive *disk_index* has fail-stopped by *now*."""
        plan = self.machine.fault_plans[disk_index]
        return plan is not None and plan.failed_at(now)

    def note_used_row(self, disk_index, row):
        """Record that *row* on *disk_index* holds live data (rebuild target)."""
        self.used_rows[disk_index].add(row)

    def register_file(self, striped_file):
        """Register every block of *striped_file* (and its parity) as live.

        Walks the file's extent map once: each data block marks its own
        (drive, row), and the row's rotated parity block marks the parity
        drive.  This is what :class:`RebuildProcess` reconstructs.
        """
        spb = self.sectors_per_block
        for block in range(striped_file.n_blocks):
            location = striped_file.location(block)
            if location.disk_index >= self.n_disks:
                continue
            row = location.lbn // spb
            self.used_rows[location.disk_index].add(row)
            self.used_rows[self.parity_disk_of_row(row)].add(row)

    # -- shared cost helpers ----------------------------------------------------
    def charge_xor(self, disk_index, n_bytes):
        """Process fragment: XOR time on the IOP owning *disk_index*."""
        iop = self.machine.iop_for_disk(disk_index)
        yield from iop.compute(n_bytes / self.memory_copy_bandwidth)

    def _survivors(self, disk_index, now):
        """All live drives other than *disk_index*, or None if another died."""
        others = []
        for other in range(self.n_disks):
            if other == disk_index:
                continue
            if self.failed(other, now):
                return None
            others.append(other)
        return others

    def reconstruct(self, disk_index, lbn, n_sectors, tag=None,
                    session_id=None, through_handles=False):
        """Process fragment: rebuild *disk_index*'s sectors from survivors.

        Fans out one read per surviving stripe member at the same physical
        offset (rotated parity means the stripe lives at identical LBNs on
        every drive), waits for all of them, charges the XOR on the owning
        IOP, and returns a synthetic ok request — or None when a second
        failure (or an errored survivor read) makes the stripe unreadable.

        ``through_handles`` routes the fan-out through the foreground
        handles (shared IOP queues) instead of the raw drives: rebuild uses
        it so its reads contend with collective traffic; the degraded
        foreground path reads the raw drives directly, modelling the
        array's own priority path.
        """
        survivors = self._survivors(disk_index, self.env.now)
        if survivors is None:
            return None
        sources = self.handles if through_handles else self.raw_disks
        events = [
            sources[other].read(lbn, n_sectors, tag="parity-reconstruct",
                                session_id=session_id)
            for other in survivors
        ]
        yield AllOf(self.env, events)
        corrupt = False
        for event in events:
            request = event._value
            if request is not None:
                if request.status != "ok":
                    return None
                corrupt = corrupt or request.corrupt
        n_bytes = n_sectors * 512
        yield from self.charge_xor(disk_index, n_bytes * len(survivors))
        self.counters["reconstructed_bytes"] += n_bytes
        result = _synthetic(READ, lbn, n_sectors, tag, session_id)
        # Garbage in, garbage out: XOR over a silently-corrupt survivor
        # yields a silently-corrupt reconstruction, which only a
        # checksum-verifying client can tell apart from good data.
        result.corrupt = corrupt
        return result

    # -- background parity updates ---------------------------------------------
    def note_write(self, disk_index, lbn, n_sectors):
        """Mark the written row(s) parity-dirty and arm a coalesced update."""
        spb = self.sectors_per_block
        first = lbn // spb
        last = (lbn + max(1, n_sectors) - 1) // spb
        for row in range(first, last + 1):
            self.note_used_row(disk_index, row)
            self.note_used_row(self.parity_disk_of_row(row), row)
            pending = self._parity_pending.get(row)
            if pending is None:
                self._parity_pending[row] = {disk_index}
                self.env.process(self._parity_flush(row))
            else:
                pending.add(disk_index)

    def _parity_flush(self, row):
        """Coalesced parity update for one dirty row (background process)."""
        yield self.env.timeout(PARITY_COALESCE_WINDOW)
        columns = self._parity_pending.pop(row, None)
        if not columns:
            return
        now = self.env.now
        parity = self.parity_disk_of_row(row)
        columns.discard(parity)
        data_columns = self.n_disks - 1
        m = len(columns)
        spb = self.sectors_per_block
        lbn = row * spb
        self.counters["parity_updates"] += 1
        # Choose the cheaper pre-read set: read-modify-write (old data of
        # the written columns + old parity) or reconstruct-write (the
        # untouched data columns).  A full stripe needs no pre-reads.  Dead
        # sources force the other mode; with a single failure one of the
        # two is always all-live.
        if m >= data_columns:
            sources = []
            self.counters["full_stripe_updates"] += 1
        else:
            rmw = sorted(columns) + [parity]
            reconstruct = [d for d in range(self.n_disks)
                           if d != parity and d not in columns]
            candidates = sorted((rmw, reconstruct), key=len)
            sources = None
            for candidate in candidates:
                if not any(self.failed(d, now) for d in candidate):
                    sources = candidate
                    break
            if sources is None:    # >= 2 failures: best effort, no pre-reads
                sources = []
        if sources:
            events = [self.raw_disks[d].read(lbn, spb, tag="parity-preread")
                      for d in sources]
            yield AllOf(self.env, events)
            self.counters["parity_overhead_bytes"] += \
                len(sources) * self.block_bytes
        yield from self.charge_xor(
            parity, (len(sources) + m) * self.block_bytes)
        # Land the new parity block: on the parity drive when alive, on the
        # spare once rebuild has recreated this row there, else nowhere
        # (the row's protection returns when rebuild reaches it).
        target = None
        if not self.failed(parity, self.env.now):
            target = self.raw_disks[parity]
        elif self.is_rebuilt(row) and self.spare is not None:
            target = self.spare
        if target is not None:
            yield target.write(lbn, spb, tag="parity-update")
            self.counters["parity_overhead_bytes"] += self.block_bytes

    def drain_parity(self):
        """Event succeeding once no parity update is pending (for drains)."""
        done = Event(self.env)

        def _wait():
            while self._parity_pending:
                yield self.env.timeout(PARITY_COALESCE_WINDOW)
            done.succeed()
        self.env.process(_wait())
        return done

    # -- degraded writes --------------------------------------------------------
    def degraded_write(self, disk_index, lbn, n_sectors, tag=None,
                       session_id=None):
        """Process fragment: log a dead-drive write into the row's parity.

        Reconstruct-write, synchronously: read the row's untouched live data
        columns, XOR with the incoming data, write the new parity block.
        The lost column's contents are then recoverable, so the write
        *succeeds* — degraded, not lost.  Returns the synthetic request
        (errored only if the stripe has a second failure).
        """
        now = self.env.now
        row = self.row_of_lbn(lbn)
        parity = self.parity_disk_of_row(row)
        spb = self.sectors_per_block
        row_lbn = row * spb
        self.note_used_row(disk_index, row)
        self.note_used_row(parity, row)
        others = [d for d in range(self.n_disks)
                  if d not in (disk_index, parity)]
        if any(self.failed(d, now) for d in others):
            return _synthetic(WRITE, lbn, n_sectors, tag, session_id,
                              status="error", error=FAIL_STOP)
        events = [self.raw_disks[d].read(row_lbn, spb, tag="parity-preread")
                  for d in others]
        if events:
            yield AllOf(self.env, events)
            self.counters["parity_overhead_bytes"] += \
                len(events) * self.block_bytes
        yield from self.charge_xor(
            parity, (len(events) + 1) * self.block_bytes)
        parity_target = None
        if not self.failed(parity, self.env.now):
            parity_target = self.raw_disks[parity]
        elif self.is_rebuilt(row) and self.spare is not None:
            parity_target = self.spare
        if parity_target is not None:
            yield parity_target.write(row_lbn, spb, tag="parity-update")
            self.counters["parity_overhead_bytes"] += self.block_bytes
        self.counters["degraded_writes"] += 1
        return _synthetic(WRITE, lbn, n_sectors, tag, session_id)

    # -- rebuild ----------------------------------------------------------------
    def arm_rebuild(self):
        """Start the background rebuild for the first fail-stop drive, if any.

        Called by the machine once fault plans exist.  Only drives with a
        *scheduled* fail-stop rebuild (transients and bad sectors do not
        evacuate a drive); the first such drive gets the (single) spare.
        """
        if self.spare is None:
            return None
        for disk_index, plan in enumerate(self.machine.fault_plans):
            if plan is not None and plan.fail_stop_time is not None:
                self.rebuild = RebuildProcess(
                    self, disk_index, plan.fail_stop_time,
                    self.rebuild_bandwidth)
                return self.rebuild
        return None


class ParityDisk:
    """Parity-aware stand-in for one drive's request handle.

    Installed in ``machine.disk_handles`` (and the owning IOP's handle list)
    when ``redundancy="parity"``; exposes the same ``read`` / ``write`` /
    ``write_tracked`` / ``flush`` / ``submit`` surface as the raw drive and
    the shared queue, so protocol code above is redundancy-agnostic.
    """

    def __init__(self, array, index, target, raw):
        self.array = array
        self.index = index
        #: where primary I/O goes: the shared IOP queue, or the raw drive
        self.target = target
        #: the raw device (for stats, head position, direct-twin routing)
        self.raw = raw
        self._direct = None

    # -- passthroughs ------------------------------------------------------------
    @property
    def disk(self):
        """A parity-aware *direct* twin, standing in for ``queue.disk``.

        Disk-directed I/O's shared-queue jobs bypass the queue and talk to
        ``queue.disk``; handing back a twin targeting the raw drive keeps
        those reads/writes inside the parity path without re-queueing.
        """
        if self.target is self.raw:
            return self
        if self._direct is None:
            self._direct = ParityDisk(self.array, self.index, self.raw,
                                      self.raw)
        return self._direct

    @property
    def stats(self):
        return self.raw.stats

    @property
    def session_stats(self):
        return self.raw.session_stats

    @property
    def head_lbn_estimate(self):
        return self.raw.head_lbn_estimate

    def session(self, session_id):
        return self.raw.session(session_id)

    def release_session(self, session_id):
        self.target.release_session(session_id)

    def submit(self, *args, **kwargs):
        """Forward job submission to the shared queue (shared mode only)."""
        return self.target.submit(*args, **kwargs)

    def flush(self):
        return self.target.flush()

    # -- reads -------------------------------------------------------------------
    def read(self, lbn, n_sectors, tag=None, session_id=None):
        done = Event(self.array.env)
        self.array.env.process(
            self._read_process(lbn, n_sectors, tag, session_id, done))
        return done

    def _read_process(self, lbn, n_sectors, tag, session_id, done):
        array = self.array
        env = array.env
        if array.failed(self.index, env.now):
            row = array.row_of_lbn(lbn)
            if array.is_rebuilt(row) and array.spare is not None:
                request = yield array.spare.read(lbn, n_sectors, tag=tag,
                                                 session_id=session_id)
                done.succeed(request)
                return
            array.note_used_row(self.index, row)
            request = yield from array.reconstruct(
                self.index, lbn, n_sectors, tag=tag, session_id=session_id)
            if request is None:
                request = _synthetic(READ, lbn, n_sectors, tag, session_id,
                                     status="error", error=FAIL_STOP)
            else:
                array.counters["degraded_reads"] += 1
            done.succeed(request)
            return
        request = yield self.target.read(lbn, n_sectors, tag=tag,
                                         session_id=session_id)
        if request.status != "ok" and request.error in PERMANENT_ERRORS:
            repaired = yield from array.reconstruct(
                self.index, lbn, n_sectors, tag=tag, session_id=session_id)
            if repaired is not None:
                array.counters["degraded_reads"] += 1
                request = repaired
        done.succeed(request)

    def repair(self, lbn, n_sectors, session_id=None):
        """Re-deliver sectors by reconstruction, bypassing a corrupt copy.

        Called by checksum-verifying clients when a read came back
        ``corrupt``; the corrupt drive's column is excluded and rebuilt
        from the row's other members.  The event's request is errored with
        ``error="checksum"`` when the stripe cannot be reconstructed.
        """
        done = Event(self.array.env)
        self.array.env.process(
            self._repair_process(lbn, n_sectors, session_id, done))
        return done

    def _repair_process(self, lbn, n_sectors, session_id, done):
        array = self.array
        request = yield from array.reconstruct(
            self.index, lbn, n_sectors, session_id=session_id)
        if request is None or request.corrupt:
            request = _synthetic(READ, lbn, n_sectors, None, session_id,
                                 status="error", error="checksum")
        else:
            array.counters["scrub_repairs"] += 1
        done.succeed(request)

    # -- writes ------------------------------------------------------------------
    def write(self, lbn, n_sectors, tag=None, session_id=None):
        done = Event(self.array.env)
        self.array.env.process(
            self._write_process(lbn, n_sectors, tag, session_id, done, None))
        return done

    def write_tracked(self, lbn, n_sectors, tag=None, session_id=None):
        env = self.array.env
        done = Event(env)
        media = Event(env)
        env.process(
            self._write_process(lbn, n_sectors, tag, session_id, done, media))
        return done, media

    def _write_process(self, lbn, n_sectors, tag, session_id, done, media):
        array = self.array
        env = array.env
        if array.failed(self.index, env.now):
            row = array.row_of_lbn(lbn)
            if array.is_rebuilt(row) and array.spare is not None:
                accepted, on_media = array.spare.write_tracked(
                    lbn, n_sectors, tag=tag, session_id=session_id)
                request = yield accepted
                if request.status == "ok":
                    array.note_write(self.index, lbn, n_sectors)
                done.succeed(request)
                if media is not None:
                    chain(on_media, media)
                return
            request = yield from array.degraded_write(
                self.index, lbn, n_sectors, tag=tag, session_id=session_id)
            done.succeed(request)
            if media is not None:
                media.succeed(request)
            return
        accepted, on_media = self.target.write_tracked(
            lbn, n_sectors, tag=tag, session_id=session_id)
        request = yield accepted
        if request.status == "ok":
            array.note_write(self.index, lbn, n_sectors)
            done.succeed(request)
            if media is not None:
                chain(on_media, media)
            return
        if request.error in PERMANENT_ERRORS:
            request = yield from array.degraded_write(
                self.index, lbn, n_sectors, tag=tag, session_id=session_id)
        done.succeed(request)
        if media is not None:
            media.succeed(request)


class RebuildProcess:
    """Streams a dead drive's used extent onto the hot spare.

    Starts at the drive's scheduled fail-stop instant and walks its
    registered rows in LBN order: each row is reconstructed from the
    survivors *through the foreground handles* (so rebuild reads sit in the
    shared IOP queues next to collective traffic, tagged
    ``session_id="rebuild"``), then written to the spare.  A token-paced
    bandwidth cap throttles how fast reconstructed bytes may land, keeping
    rebuild from starving foreground service.  ``done`` fires when every
    known row is rebuilt.
    """

    def __init__(self, array, disk_index, start_time, bandwidth):
        self.array = array
        self.disk_index = disk_index
        self.start_time = start_time
        self.bandwidth = bandwidth
        self.rows_done = 0
        self.finished_at = None
        self.done = Event(array.env)
        array.env.process(self._run())

    def _run(self):
        array = self.array
        env = array.env
        if env.now < self.start_time:
            yield env.event_at(self.start_time)
        started = env.now
        spb = array.sectors_per_block
        row_seconds = array.block_bytes / self.bandwidth
        next_slot = started
        while True:
            remaining = sorted(
                array.used_rows[self.disk_index] - array._rebuilt_rows)
            if not remaining:
                break
            for row in remaining:
                if env.now < next_slot:
                    yield env.timeout(next_slot - env.now)
                request = yield from array.reconstruct(
                    self.disk_index, row * spb, spb,
                    session_id=REBUILD_SESSION, through_handles=True)
                if request is not None and array.spare is not None:
                    yield array.spare.write(row * spb, spb, tag="rebuild",
                                            session_id=REBUILD_SESSION)
                    array._rebuilt_rows.add(row)
                    array.counters["rebuilt_rows"] += 1
                    self.rows_done += 1
                else:
                    # unreconstructable (second failure): give up on the row
                    array._rebuilt_rows.add(row)
                next_slot = max(next_slot, started) + row_seconds
        self.finished_at = env.now
        array.counters["rebuild_seconds"] = env.now - started
        for disk in set(array.raw_disks) | ({array.spare} if array.spare else set()):
            disk.release_session(REBUILD_SESSION)
        for handle in array.handles:
            if handle not in array.raw_disks:
                handle.release_session(REBUILD_SESSION)
        if not self.done.triggered:
            self.done.succeed(self.rows_done)
