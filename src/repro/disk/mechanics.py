"""Mechanical timing of a disk drive: seeks, rotation, media transfer.

The model follows Ruemmler & Wilkes: a two-regime seek curve, rotational
positioning computed from an absolute rotational clock, and media transfer at
one track per revolution with head-switch penalties at track boundaries.
"""


class SeekModel:
    """Seek-time computation with the drive's piecewise seek curve."""

    def __init__(self, spec):
        self.spec = spec

    def seek_time(self, from_cylinder, to_cylinder):
        """Seconds to move the arm between two cylinders (0 if already there)."""
        distance = abs(to_cylinder - from_cylinder)
        return self.spec.seek_curve.seek_time(distance)


class RotationModel:
    """Tracks the angular position of the platters as a function of time."""

    def __init__(self, spec, initial_angle_fraction=0.0):
        self.spec = spec
        #: angle at time 0, expressed as a fraction of a revolution in [0, 1)
        self.initial_angle_fraction = initial_angle_fraction % 1.0

    def angle_at(self, time):
        """Rotational position (fraction of a revolution) at simulated *time*."""
        revolutions = time / self.spec.revolution_time + self.initial_angle_fraction
        return revolutions % 1.0

    def sector_under_head(self, time):
        """Index of the sector currently passing under the heads."""
        return int(self.angle_at(time) * self.spec.sectors_per_track) \
            % self.spec.sectors_per_track

    def rotational_delay_to_sector(self, time, target_sector):
        """Seconds until the start of *target_sector* rotates under the head.

        *target_sector* may be fractional (angular position in sector units).
        A tiny tolerance treats "just missed by floating-point error" as
        "exactly under the head", otherwise sequential transfers would be
        charged a phantom full revolution.
        """
        spt = self.spec.sectors_per_track
        target_angle = (target_sector % spt) / spt
        current_angle = self.angle_at(time)
        delta = (target_angle - current_angle) % 1.0
        if delta > 1.0 - 1e-9:
            delta = 0.0
        return delta * self.spec.revolution_time


class MediaTransferModel:
    """Time to read or write sectors off the media, including head switches."""

    def __init__(self, spec, geometry):
        self.spec = spec
        self.geometry = geometry

    def transfer_time(self, lbn, n_sectors):
        """Seconds of media time for *n_sectors* starting at *lbn*.

        Sectors stream at one sector per ``sector_time``; each track boundary
        crossed adds a head-switch penalty (during which, pessimistically, no
        data moves).
        """
        if n_sectors <= 0:
            return 0.0
        base = n_sectors * self.spec.sector_time
        switches = self.geometry.track_boundaries_crossed(lbn, n_sectors)
        return base + switches * self.spec.head_switch_time


class DiskMechanics:
    """Combines seek, rotation and media-transfer into positioning decisions.

    The object is stateful: it remembers the cylinder/head position left by
    the previous operation so that the next operation pays only the
    incremental positioning cost.
    """

    def __init__(self, spec, geometry, initial_angle_fraction=0.0,
                 initial_cylinder=0):
        self.spec = spec
        self.geometry = geometry
        self.seek_model = SeekModel(spec)
        self.rotation = RotationModel(spec, initial_angle_fraction)
        self.media = MediaTransferModel(spec, geometry)
        self.current_cylinder = initial_cylinder

    def positioning_time(self, now, lbn):
        """Seek + rotational delay to position at the start of sector *lbn*."""
        position = self.geometry.position_of(lbn)
        seek = self.seek_model.seek_time(self.current_cylinder, position.cylinder)
        arrival = now + seek
        angular_sector = self.geometry.angular_sector_of(lbn)
        rotation = self.rotation.rotational_delay_to_sector(arrival, angular_sector)
        return seek + rotation

    def access_time(self, now, lbn, n_sectors):
        """Full mechanical time (position + transfer) for an access; updates state."""
        positioning = self.positioning_time(now, lbn)
        transfer = self.media.transfer_time(lbn, n_sectors)
        end_position = self.geometry.position_of(
            min(lbn + max(n_sectors, 1) - 1, self.geometry.total_sectors - 1))
        self.current_cylinder = end_position.cylinder
        return positioning + transfer

    def sequential_transfer_time(self, lbn, n_sectors):
        """Media-only time for a transfer that needs no repositioning."""
        return self.media.transfer_time(lbn, n_sectors)
