"""Cross-collective IOP disk scheduling: one shared sorted queue per drive.

The paper's argument is that the I/O processor, which knows every outstanding
request, should order disk traffic — not the compute nodes, and not each
collective for itself.  With one collective at a time, disk-directed I/O's
per-collective presorted block list *is* global knowledge.  Under a service
workload (several collectives in flight, :mod:`repro.workload`) it is not:
each session presents its own sorted stream, and the drive sees K interleaved
streams — exactly the seek thrash the presort was meant to remove.

:class:`SharedDiskQueue` restores the invariant at the right layer.  It is
IOP software sitting in front of one drive: *all* active sessions enqueue
their work (tagged with a session id and a physical address) into one queue,
and a small pool of worker processes services that queue in the order a
pluggable policy chooses — a CSCAN elevator by default, the same policy
objects :mod:`repro.disk.scheduler` provides for the drive's internal queue.
The drive itself stays FCFS with a tiny queue depth; the *IOP* decides the
order, which is the disk-directed philosophy extended across collectives.

Two interfaces, one queue:

* :meth:`read` / :meth:`write` / :meth:`write_tracked` mirror
  :class:`~repro.disk.drive.Disk`'s API, so a queue can stand in for the raw
  drive anywhere a protocol holds a "disk handle" (traditional caching's
  block cache routes its fetches and write-backs through these).
* :meth:`submit` schedules an arbitrary per-block *job* — a generator
  function run by a worker when the block's turn comes.  Disk-directed I/O
  submits one job per file block (read-and-deliver, or gather-and-write), so
  the elevator sees every remaining block of every active collective, not
  just the handful currently buffered.

Fairness: CSCAN's wrap-around guarantees every pending job is reached within
one sweep, so no session starves however unlucky its block addresses are.
"""

from repro.disk.drive import READ, WRITE
from repro.disk.scheduler import make_scheduler
from repro.sim.events import Event, chain


class _QueuedJob:
    """One schedulable unit: a physical address, a session tag, and a body."""

    __slots__ = ("lbn", "op", "session_id", "run", "done", "submit_time")

    def __init__(self, lbn, op, session_id, run, done, submit_time):
        self.lbn = lbn
        self.op = op
        self.session_id = session_id
        self.run = run
        self.done = done
        self.submit_time = submit_time


class SharedDiskQueue:
    """IOP-level request queue shared by every session using one drive.

    ``policy`` names a :mod:`repro.disk.scheduler` policy (``cscan`` by
    default); ``workers`` bounds how many jobs are in service at once — the
    IOP's buffer budget for this drive, two in the paper's disk-directed
    design.  Jobs not yet in service are *re-sortable*: the policy re-selects
    against the drive's current head position each time a worker frees up, so
    late-arriving sessions merge into the sweep instead of appending.
    """

    def __init__(self, env, disk, policy="cscan", workers=2):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.env = env
        self.disk = disk
        self.policy = make_scheduler(policy) if isinstance(policy, str) else policy
        self.workers = workers
        self._pending = []
        self._busy = 0
        self._writes_outstanding = 0   # write jobs pending or in service here
        self._work = None
        self._flush_waiters = []
        self._dispatched = 0
        #: seconds each session's jobs spent waiting in THIS queue before a
        #: worker took them (session id -> seconds).  The drive's own
        #: ``disk_queue_wait`` only covers its internal queue, which stays
        #: shallow under shared scheduling — this is where the waiting
        #: actually happens; dropped by :meth:`release_session`.
        self.session_waits = {}
        for _ in range(workers):
            env.process(self._worker())

    # -- introspection ---------------------------------------------------------
    @property
    def queue_depth(self):
        """Jobs waiting for a worker (excluding the ones in service)."""
        return len(self._pending)

    @property
    def in_service(self):
        """Jobs currently being run by a worker."""
        return self._busy

    @property
    def dispatched(self):
        """Total jobs handed to workers over this queue's lifetime."""
        return self._dispatched

    # -- job submission --------------------------------------------------------
    def submit(self, lbn, job, session_id=None, op=READ):
        """Schedule *job* (a generator function) to run at *lbn*'s turn.

        Returns an event that succeeds with the job's return value once a
        worker has run it to completion.  ``op`` only matters for
        :meth:`flush` accounting (``WRITE`` jobs are tracked until done).
        """
        done = Event(self.env)
        self._pending.append(
            _QueuedJob(lbn, op, session_id, job, done, self.env.now))
        if op == WRITE:
            self._writes_outstanding += 1
        self._kick()
        return done

    def session_wait_seconds(self, session_id):
        """Seconds *session_id*'s jobs have waited in this queue so far."""
        return self.session_waits.get(session_id, 0.0)

    def release_session(self, session_id):
        """Drop per-session accounting once the session's result is final."""
        self.session_waits.pop(session_id, None)

    # -- Disk-compatible request interface -------------------------------------
    def read(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a read; the event fires when the data is at the IOP."""
        def job():
            value = yield self.disk.read(lbn, n_sectors, tag=tag,
                                         session_id=session_id)
            return value
        return self.submit(lbn, job, session_id=session_id, op=READ)

    def write(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; the event fires when the drive accepts the data."""
        def job():
            value = yield self.disk.write(lbn, n_sectors, tag=tag,
                                          session_id=session_id)
            return value
        return self.submit(lbn, job, session_id=session_id, op=WRITE)

    def write_tracked(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; returns ``(accepted, on_media)`` events.

        Mirrors :meth:`repro.disk.drive.Disk.write_tracked`: ``on_media`` is a
        placeholder chained to the drive's media-completion event once the
        write is dispatched, so per-session write-behind draining works
        unchanged through the shared queue.
        """
        media = Event(self.env)

        def job():
            accepted, on_media = self.disk.write_tracked(
                lbn, n_sectors, tag=tag, session_id=session_id)
            chain(on_media, media)
            value = yield accepted
            return value
        return self.submit(lbn, job, session_id=session_id, op=WRITE), media

    def flush(self):
        """Event firing once every write queued *here* has reached the media.

        Waits for pending/in-service write jobs to drain, then for the
        drive's own write buffer (:meth:`Disk.flush`).
        """
        done = Event(self.env)
        self.env.process(self._flush_process(done))
        return done

    def _flush_process(self, done):
        while self._writes_outstanding > 0:
            waiter = Event(self.env)
            self._flush_waiters.append(waiter)
            yield waiter
        yield self.disk.flush()
        if not done.triggered:
            done.succeed()

    # -- the worker pool -------------------------------------------------------
    def _kick(self):
        if self._work is not None and not self._work.triggered:
            self._work.succeed()
            self._work = None

    def _worker(self):
        while True:
            while not self._pending:
                if self._work is None or self._work.triggered:
                    self._work = Event(self.env)
                yield self._work
            index = self.policy.select(self._pending, self.disk.head_lbn_estimate)
            job = self._pending.pop(index)
            if job.session_id is not None:
                waits = self.session_waits
                waits[job.session_id] = waits.get(job.session_id, 0.0) \
                    + (self.env.now - job.submit_time)
            self._busy += 1
            self._dispatched += 1
            value = yield from job.run()
            self._busy -= 1
            if job.op == WRITE:
                self._writes_outstanding -= 1
                if self._writes_outstanding == 0:
                    waiters, self._flush_waiters = self._flush_waiters, []
                    for waiter in waiters:
                        if not waiter.triggered:
                            waiter.succeed()
            if not job.done.triggered:
                job.done.succeed(value)
