"""Disk request-queue scheduling policies.

Traditional caching leaves scheduling to the drive/IOP queue (FCFS or CSCAN
over whatever happens to be outstanding); disk-directed I/O instead presents
requests in an order it chose itself (optionally presorted by physical
location), so its queue depth stays tiny and FCFS at the device is enough.

A policy is a stateless object with one method::

    select(queue, current_lbn) -> index

where *queue* is a non-empty sequence of pending requests and *current_lbn*
approximates the head position.  Invariants every policy (and every caller)
relies on:

* **Duck-typed queue items.**  ``select`` reads only ``item.lbn``; the same
  policy objects therefore schedule both the drive's internal
  :class:`~repro.disk.drive.DiskRequest` queue and the IOP-level job queue
  of :class:`~repro.disk.shared_queue.SharedDiskQueue`.
* **Selection, not mutation.**  ``select`` never reorders or consumes the
  queue — the caller pops the returned index.  A policy may be re-invoked
  against the same queue with a different head position and must stand by
  its answer for that position.
* **Statelessness.**  All state lives in the queue and the head-position
  argument, so one policy instance can be shared and re-selection after new
  arrivals (late merging) is always safe.
* **No starvation for CSCAN.**  The ascending-order wrap-around guarantees
  every pending request is served within one full sweep, however the queue
  keeps growing behind the head.  SSTF offers no such guarantee (a greedy
  nearest-block choice can starve distant requests under sustained load) —
  which is why the cross-collective default is ``cscan``.

``fcfs`` with the drive's tiny queue reproduces the paper's device
behaviour; ``shared-cscan`` (see :mod:`repro.disk.shared_queue`) moves the
same CSCAN decision up to the IOP, where requests from *all* active
collectives are visible.
"""


class FcfsScheduler:
    """First-come first-served."""

    name = "fcfs"

    def select(self, queue, current_lbn):
        """Return the index into *queue* of the request to serve next."""
        if not queue:
            raise ValueError("select() on an empty queue")
        return 0


class SstfScheduler:
    """Shortest-seek-time-first (greedy nearest logical block)."""

    name = "sstf"

    def select(self, queue, current_lbn):
        if not queue:
            raise ValueError("select() on an empty queue")
        best_index = 0
        best_distance = abs(queue[0].lbn - current_lbn)
        for index, request in enumerate(queue[1:], start=1):
            distance = abs(request.lbn - current_lbn)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index


class CScanScheduler:
    """Circular SCAN: serve requests in ascending block order, wrapping around."""

    name = "cscan"

    def select(self, queue, current_lbn):
        if not queue:
            raise ValueError("select() on an empty queue")
        ahead = [(request.lbn, index) for index, request in enumerate(queue)
                 if request.lbn >= current_lbn]
        if ahead:
            return min(ahead)[1]
        # Wrap to the lowest block number.
        return min((request.lbn, index) for index, request in enumerate(queue))[1]


_SCHEDULERS = {
    FcfsScheduler.name: FcfsScheduler,
    SstfScheduler.name: SstfScheduler,
    CScanScheduler.name: CScanScheduler,
}


def make_scheduler(name):
    """Instantiate a scheduler by name (``fcfs``, ``sstf`` or ``cscan``)."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown disk scheduler {name!r}; choose from {sorted(_SCHEDULERS)}")
