"""Disk drive specifications.

``HP97560_SPEC`` reproduces the HP 97560 parameters used in the paper
(Table 1 plus the Ruemmler & Wilkes model constants).  The values give a peak
media transfer rate of ~2.3 MB/s and a formatted capacity of ~1.3 GB, matching
the paper's "2.34 Mbytes/s" and "1.3 GB".
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SeekCurve:
    """Piecewise seek-time model: ``a + b*sqrt(d)`` below the knee, ``c + e*d`` above.

    All times in seconds, distances in cylinders.  The HP 97560 constants come
    from Ruemmler & Wilkes (1994).
    """

    short_constant: float = 3.24e-3
    short_sqrt_coeff: float = 0.400e-3
    long_constant: float = 8.00e-3
    long_linear_coeff: float = 0.008e-3
    knee_cylinders: int = 383

    def seek_time(self, distance):
        """Seek time for a head movement of *distance* cylinders."""
        if distance < 0:
            raise ValueError(f"negative seek distance {distance}")
        if distance == 0:
            return 0.0
        if distance < self.knee_cylinders:
            return self.short_constant + self.short_sqrt_coeff * distance ** 0.5
        return self.long_constant + self.long_linear_coeff * distance


@dataclass(frozen=True)
class DiskSpec:
    """Full description of a disk drive model."""

    name: str = "HP 97560"
    #: geometry
    cylinders: int = 1962
    heads: int = 19
    sectors_per_track: int = 72
    sector_size: int = 512
    #: mechanics
    rpm: float = 4002.0
    seek_curve: SeekCurve = field(default_factory=SeekCurve)
    head_switch_time: float = 1.6e-3
    #: per-command controller overhead (command decode, SCSI handshake)
    controller_overhead: float = 0.3e-3
    #: on-board cache
    cache_size: int = 128 * 1024
    cache_segments: int = 2
    #: how far the drive reads ahead after a read, in sectors
    readahead_sectors: int = 256
    #: whether the drive reports writes complete once they reach its buffer
    #: (immediate reporting) and destages to the media in the background.
    #: Without it, back-to-back sequential writes miss a revolution each time
    #: and can never approach the ~93%-of-peak write throughput the paper
    #: reports, so it is enabled by default.
    write_cache_enabled: bool = True

    # -- derived quantities ----------------------------------------------------
    @property
    def revolution_time(self):
        """Seconds per platter revolution."""
        return 60.0 / self.rpm

    @property
    def track_capacity(self):
        """Bytes per track."""
        return self.sectors_per_track * self.sector_size

    @property
    def cylinder_capacity(self):
        """Bytes per cylinder."""
        return self.track_capacity * self.heads

    @property
    def total_sectors(self):
        """Total addressable sectors on the drive."""
        return self.cylinders * self.heads * self.sectors_per_track

    @property
    def capacity_bytes(self):
        """Formatted capacity in bytes."""
        return self.total_sectors * self.sector_size

    @property
    def sector_time(self):
        """Time for one sector to pass under the head."""
        return self.revolution_time / self.sectors_per_track

    @property
    def media_transfer_rate(self):
        """Peak media transfer rate in bytes/second (one track per revolution)."""
        return self.track_capacity / self.revolution_time

    @property
    def sustained_transfer_rate(self):
        """Sequential transfer rate including the head switch between tracks."""
        return self.track_capacity / (self.revolution_time + self.head_switch_time)

    @property
    def track_skew_sectors(self):
        """Sectors of skew between adjacent tracks, hiding the head-switch time.

        Real drives format consecutive tracks with an angular offset so that
        after a head switch the logically-next sector is just arriving under
        the head; without it, every track boundary would cost almost a full
        revolution during sequential transfers.
        """
        import math
        return math.ceil(self.head_switch_time / self.sector_time)

    @property
    def average_rotational_latency(self):
        """Expected rotational delay (half a revolution)."""
        return self.revolution_time / 2.0

    def full_seek_time(self):
        """Seek time across the whole stroke, a useful sanity bound."""
        return self.seek_curve.seek_time(self.cylinders - 1)


#: The drive used throughout the paper's experiments.
HP97560_SPEC = DiskSpec()
