"""The simulated flash SSD: FTL, erase-block GC, write cache and an NCQ queue.

The paper's core claim rests on *positioning costs* — disk-directed I/O wins
because the IOP can schedule around seeks and rotation.  This module builds
the device on which that question gets re-asked: a flash SSD with no moving
parts, where parallelism lives *inside* the device (channels + a native
command queue) and the cost structure is page programs, block erases and
garbage collection instead of seeks.

An :class:`SSD` is duck-compatible with :class:`~repro.disk.drive.Disk` —
the same ``read`` / ``write`` / ``write_tracked`` / ``submit`` / ``flush``
surface, the same :class:`~repro.disk.drive.DiskStats` /
:class:`~repro.disk.drive.SessionDiskStats` counters, the same
:class:`~repro.disk.faults.FaultPlan` hooks — so
:class:`~repro.machine.machine.Machine`, the shared per-drive IOP queues and
every file-system implementation run on either device unchanged
(``Machine(config, device="ssd")``).  The compatibility seam is enforced by
the parametrized device-contract tests, not by convention.

Component split (after the FTL-SIM exemplar in SNIPPETS.md):

* :class:`FlashTranslationLayer` — a page-level logical-to-physical map over
  erase blocks, with greedy or cost-benefit garbage collection and
  write-amplification accounting.  Pure data structure, no simulation time;
  the Hypothesis property tests drive it directly.
* a volatile write cache — writes complete once the data crosses the bus and
  fits in the cache; a background destage process programs pages through the
  FTL (mirroring the disk's write-behind buffer, including lost-destage
  accounting under fail-stop).
* an NCQ-style internal queue — ``ncq_depth`` worker processes pull from one
  submission queue, so up to that many requests are in service at once; per
  ``lpn % channels`` striping turns concurrent requests into channel-level
  parallelism.  There is no seek-order to optimise (the FTL virtualises
  addresses), which is exactly the experimental point: an ``SSD`` ignores
  the drive-queue scheduling policy knob.

Timing model: a read costs controller overhead + one flash-page read per
page (channel-parallel within a request) + the SCSI transfer; a destaged
write costs one page program per page plus whatever GC work (relocation
reads/programs, block erases) the FTL reports for that program.  Reads never
consult the mapping for *timing* — a page lookup is controller-SRAM work —
so reading data that was never explicitly written (pre-existing simulated
files) is charged like any other flash read.
"""

import math
from collections import deque
from dataclasses import dataclass, field

from repro.disk.drive import (READ, WRITE, DiskRequest, DiskStats,
                              SessionDiskStats)
from repro.disk.faults import FAIL_STOP
from repro.disk.specs import HP97560_SPEC
from repro.sim.events import Event
from repro.sim.resources import Resource


@dataclass(frozen=True)
class SSDSpec:
    """Full description of a flash solid-state drive model."""

    name: str = "flash-ssd"
    #: logical geometry: sector-addressed exactly like a disk, so file-system
    #: layouts and experiment configs carry over unchanged
    total_sectors: int = HP97560_SPEC.total_sectors
    sector_size: int = 512
    #: flash geometry
    page_size: int = 4096
    pages_per_block: int = 64
    #: physical capacity headroom beyond the logical space, as a fraction —
    #: the GC's working room (a device with none could never reclaim)
    overprovision: float = 0.07
    #: independent flash channels (per-page stripe: ``lpn % channels``)
    channels: int = 4
    #: native command queue depth: requests in service at once
    ncq_depth: int = 8
    #: per-page flash operation times, seconds
    read_page_time: float = 1.8e-3
    program_page_time: float = 1.8e-3
    erase_block_time: float = 2.0e-3
    #: per-command controller overhead (command decode, map lookup)
    controller_overhead: float = 0.1e-3
    #: volatile write-cache capacity, pages
    write_cache_pages: int = 64
    write_cache_enabled: bool = True
    #: garbage collection: victim policy and free-block watermarks
    gc_policy: str = "greedy"
    gc_low_water: int = 2
    gc_high_water: int = 4

    # -- derived quantities ----------------------------------------------------
    @property
    def sectors_per_page(self):
        """Sectors per flash page."""
        return self.page_size // self.sector_size

    @property
    def logical_pages(self):
        """Logical pages covering the sector address space."""
        return -(-self.total_sectors // self.sectors_per_page)

    @property
    def physical_blocks(self):
        """Erase blocks on the device (logical space + overprovision)."""
        pages = math.ceil(self.logical_pages * (1.0 + self.overprovision))
        return -(-pages // self.pages_per_block)

    @property
    def physical_pages(self):
        """Total programmable pages."""
        return self.physical_blocks * self.pages_per_block

    @property
    def capacity_bytes(self):
        """Logical (formatted) capacity in bytes."""
        return self.total_sectors * self.sector_size

    @property
    def sequential_read_rate(self):
        """Peak sequential read bandwidth, bytes/s (all channels streaming)."""
        return self.channels * self.page_size / self.read_page_time

    @property
    def sequential_write_rate(self):
        """Peak sequential write bandwidth, bytes/s (no GC, cache enabled)."""
        return self.channels * self.page_size / self.program_page_time


def matched_ssd_spec(disk_spec=HP97560_SPEC, **overrides):
    """An :class:`SSDSpec` whose sequential bandwidth equals *disk_spec*'s.

    The headline flash experiment holds sequential bandwidth constant across
    media — the page times are chosen so that all channels streaming together
    move bytes exactly at the disk's sustained (track-switch-inclusive)
    sequential rate, in both directions.  What *differs* is everything else:
    no positioning costs, device-internal parallelism, GC.  Field overrides
    are applied before the page times are derived from ``channels`` and
    ``page_size``, so e.g. ``matched_ssd_spec(channels=8)`` stays matched.
    """
    fields = dict(
        name=f"flash-ssd (matched to {disk_spec.name})",
        total_sectors=disk_spec.total_sectors,
        sector_size=disk_spec.sector_size,
    )
    fields.update(overrides)
    probe = SSDSpec(**fields)
    rate = disk_spec.sustained_transfer_rate
    page_time = probe.channels * probe.page_size / rate
    fields.setdefault("read_page_time", page_time)
    fields.setdefault("program_page_time", page_time)
    return SSDSpec(**fields)


# -- the flash translation layer -----------------------------------------------

@dataclass(slots=True)
class GCReport:
    """Garbage-collection work performed inside one FTL call."""

    relocated: int = 0
    erases: int = 0

    def merge(self, other):
        self.relocated += other.relocated
        self.erases += other.erases


class FlashTranslationLayer:
    """Page-level logical-to-physical map over erase blocks, with GC.

    Pure bookkeeping — no simulated time.  The device charges time for the
    work each call *reports* (page programs, GC relocations, erases).

    Invariants the property tests pin:

    * every logical page maps to at most one live physical page, through any
      interleaving of writes, trims and collections;
    * GC conserves live data byte-for-byte (an optional per-write *payload*
      rides along through relocations);
    * write amplification is >= 1 always, and exactly 1 under pure-sequential
      fill (a single pass over the logical space never triggers GC, because
      the overprovisioned blocks cover it).

    ``gc_policy`` is ``greedy`` (min live pages) or ``cost-benefit``
    (max ``(1 - u) / (1 + u) * age``, the classic LFS formulation — prefers
    cold blocks even when a slightly emptier hot one exists).  Victim choice
    is deterministic: candidates are scanned in block order, ties keep the
    lowest block id.
    """

    def __init__(self, n_logical_pages, pages_per_block, n_blocks,
                 gc_policy="greedy", gc_low_water=2, gc_high_water=4):
        if n_blocks * pages_per_block <= n_logical_pages:
            raise ValueError(
                f"{n_blocks} blocks x {pages_per_block} pages cannot "
                f"overprovision {n_logical_pages} logical pages")
        if gc_policy not in ("greedy", "cost-benefit"):
            raise ValueError(f"unknown GC policy {gc_policy!r}")
        # Relocation mid-collection allocates into the active block and may
        # open a fresh one before the victim is erased, so the trigger must
        # leave at least one spare free block of slack.
        if gc_low_water < 2:
            raise ValueError(f"gc_low_water must be >= 2, got {gc_low_water}")
        if gc_high_water <= gc_low_water:
            raise ValueError("gc_high_water must exceed gc_low_water")
        self.n_logical_pages = n_logical_pages
        self.pages_per_block = pages_per_block
        self.n_blocks = n_blocks
        self.gc_policy = gc_policy
        self.gc_low_water = gc_low_water
        self.gc_high_water = gc_high_water

        self._map = {}                      # lpn -> live ppn
        self._block_live = [dict() for _ in range(n_blocks)]  # offset -> lpn
        self._payload = {}                  # ppn -> caller data (optional)
        self._valid = [0] * n_blocks
        self._sealed_at = [0] * n_blocks    # logical timestamp at seal
        self._sealed = set()
        self._free = deque(range(n_blocks))
        self._active = None
        self._next_offset = 0
        self._tick = 0

        #: wear: erases per block (cost-benefit age uses seal time, not wear)
        self.erase_counts = [0] * n_blocks
        self.host_pages_written = 0
        self.relocated_pages = 0
        self.erases = 0
        self.trims = 0

    # -- public operations -----------------------------------------------------
    def write(self, lpn, payload=None):
        """Map *lpn* to a freshly-programmed page; returns ``(ppn, GCReport)``.

        The report covers GC work this write forced (possibly none); the
        device charges one page program plus the reported relocations and
        erases.  *payload* optionally rides along (the property tests use it
        to check byte conservation through GC; the device passes None).
        """
        if not 0 <= lpn < self.n_logical_pages:
            raise ValueError(
                f"logical page {lpn} outside device of "
                f"{self.n_logical_pages} pages")
        self._tick += 1
        report = self._ensure_free_blocks()
        old = self._map.get(lpn)
        if old is not None:
            self._invalidate(old)
        ppn = self._allocate_page()
        self._map[lpn] = ppn
        self._block_live[ppn // self.pages_per_block][
            ppn % self.pages_per_block] = lpn
        self._valid[ppn // self.pages_per_block] += 1
        if payload is not None:
            self._payload[ppn] = payload
        self.host_pages_written += 1
        return ppn, report

    def trim(self, lpn):
        """Drop *lpn*'s mapping (its physical page becomes reclaimable)."""
        old = self._map.pop(lpn, None)
        if old is not None:
            self._invalidate(old)
            self.trims += 1

    def read(self, lpn):
        """The live physical page of *lpn*, or None when unmapped."""
        return self._map.get(lpn)

    def read_payload(self, lpn):
        """The payload written at *lpn* (surviving GC), or None."""
        ppn = self._map.get(lpn)
        return None if ppn is None else self._payload.get(ppn)

    # -- accounting ------------------------------------------------------------
    @property
    def live_pages(self):
        """Logical pages currently mapped."""
        return len(self._map)

    @property
    def free_blocks(self):
        """Erase blocks ready for allocation."""
        return len(self._free)

    @property
    def flash_pages_written(self):
        """Physical page programs: host writes plus GC relocations."""
        return self.host_pages_written + self.relocated_pages

    @property
    def write_amplification(self):
        """Flash programs per host program (1.0 before any host write)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.flash_pages_written / self.host_pages_written

    def counters(self):
        """JSON-friendly snapshot of the FTL's work counters."""
        return {
            "host_pages_written": self.host_pages_written,
            "flash_pages_written": self.flash_pages_written,
            "relocated_pages": self.relocated_pages,
            "erases": self.erases,
            "trims": self.trims,
            "live_pages": self.live_pages,
            "free_blocks": self.free_blocks,
            "write_amplification": self.write_amplification,
        }

    def check_consistency(self):
        """Raise AssertionError unless every internal invariant holds.

        Used by the property tests after arbitrary op interleavings: the
        map and the per-block live tables must be inverse bijections, valid
        counts must match, and free blocks must be empty.
        """
        seen = {}
        for block, live in enumerate(self._block_live):
            if len(live) != self._valid[block]:
                raise AssertionError(
                    f"block {block}: valid count {self._valid[block]} != "
                    f"{len(live)} live entries")
            for offset, lpn in live.items():
                ppn = block * self.pages_per_block + offset
                if lpn in seen:
                    raise AssertionError(
                        f"logical page {lpn} live at both {seen[lpn]} "
                        f"and {ppn}")
                seen[lpn] = ppn
                if self._map.get(lpn) != ppn:
                    raise AssertionError(
                        f"logical page {lpn} live at {ppn} but mapped "
                        f"to {self._map.get(lpn)}")
        if seen.keys() != self._map.keys():
            raise AssertionError("map and block tables disagree on live pages")
        for block in self._free:
            if self._valid[block] or self._block_live[block]:
                raise AssertionError(f"free block {block} is not empty")

    # -- allocation and collection ----------------------------------------------
    def _allocate_page(self):
        if self._active is None:
            if not self._free:
                raise RuntimeError("flash device out of free blocks")
            self._active = self._free.popleft()
            self._next_offset = 0
        ppn = self._active * self.pages_per_block + self._next_offset
        self._next_offset += 1
        if self._next_offset == self.pages_per_block:
            self._sealed.add(self._active)
            self._sealed_at[self._active] = self._tick
            self._active = None
        return ppn

    def _invalidate(self, ppn):
        block, offset = divmod(ppn, self.pages_per_block)
        del self._block_live[block][offset]
        self._valid[block] -= 1
        self._payload.pop(ppn, None)

    def _ensure_free_blocks(self):
        report = GCReport()
        if len(self._free) > self.gc_low_water:
            return report
        while len(self._free) < self.gc_high_water:
            victim = self._choose_victim()
            if victim is None:
                break
            self._collect(victim, report)
        return report

    def _choose_victim(self):
        best = None
        best_score = None
        full = self.pages_per_block
        for block in sorted(self._sealed):
            valid = self._valid[block]
            if valid == full:
                continue        # nothing to reclaim; moving it gains nothing
            if self.gc_policy == "greedy":
                score = -valid  # fewest live pages wins
            else:
                utilisation = valid / full
                age = self._tick - self._sealed_at[block]
                score = (1.0 - utilisation) / (1.0 + utilisation) * age
            if best_score is None or score > best_score:
                best = block
                best_score = score
        return best

    def _collect(self, victim, report):
        self._sealed.discard(victim)
        live = self._block_live[victim]
        for offset in sorted(live):
            lpn = live[offset]
            old_ppn = victim * self.pages_per_block + offset
            ppn = self._allocate_page()
            self._map[lpn] = ppn
            self._block_live[ppn // self.pages_per_block][
                ppn % self.pages_per_block] = lpn
            self._valid[ppn // self.pages_per_block] += 1
            payload = self._payload.pop(old_ppn, None)
            if payload is not None:
                self._payload[ppn] = payload
            report.relocated += 1
            self.relocated_pages += 1
        live.clear()
        self._valid[victim] = 0
        self.erase_counts[victim] += 1
        self.erases += 1
        report.erases += 1
        self._free.append(victim)


# -- the device ----------------------------------------------------------------

class FlashAddressSpace:
    """Sector-to-page address arithmetic (the SSD's ``geometry``)."""

    def __init__(self, spec):
        self.spec = spec
        self.total_sectors = spec.total_sectors
        self.sectors_per_page = spec.sectors_per_page

    def page_of(self, lbn):
        """Logical page containing sector *lbn*."""
        return lbn // self.sectors_per_page

    def page_span(self, lbn, n_sectors):
        """The logical pages a sector run touches, as a ``range``."""
        first = lbn // self.sectors_per_page
        last = (lbn + n_sectors - 1) // self.sectors_per_page
        return range(first, last + 1)


class SSD:
    """A simulated flash drive attached to a SCSI bus on one IOP.

    Drop-in for :class:`~repro.disk.drive.Disk`: same constructor shape
    (``scheduler`` and ``initial_angle_fraction`` are accepted and ignored —
    the FTL virtualises addresses, so request order buys nothing and there
    is no platter angle), same request/stat/fault surface.  Parallelism is
    internal: ``spec.ncq_depth`` worker processes serve the submission
    queue concurrently, and each request's pages stripe over
    ``spec.channels`` single-occupancy channel resources.
    """

    def __init__(self, env, spec=None, bus_port=None, name="ssd",
                 scheduler="fcfs", initial_angle_fraction=0.0,
                 write_buffer_pages=None, fault_plan=None):
        del scheduler, initial_angle_fraction   # no seek order, no platter
        self.env = env
        self.spec = spec if spec is not None else matched_ssd_spec()
        self.name = name
        self.bus_port = bus_port
        self.fault_plan = fault_plan
        self.geometry = FlashAddressSpace(self.spec)
        self.ftl = FlashTranslationLayer(
            self.spec.logical_pages, self.spec.pages_per_block,
            self.spec.physical_blocks, gc_policy=self.spec.gc_policy,
            gc_low_water=self.spec.gc_low_water,
            gc_high_water=self.spec.gc_high_water)
        self.stats = DiskStats()
        self.session_stats = {}

        self._channels = [Resource(env, capacity=1, name=f"{name}.ch{index}")
                          for index in range(self.spec.channels)]
        if write_buffer_pages is None:
            write_buffer_pages = self.spec.write_cache_pages
        self.write_buffer_capacity = write_buffer_pages
        self._write_buffer = deque()          # destage queue of DiskRequest
        self._buffer_waiters = deque()        # writes waiting for cache space
        self._buffered_pages = 0
        self._cached_lpns = {}                # lpn -> pending-destage count
        self._writes_outstanding = 0
        self._flush_waiters = []
        self._last_lbn = 0

        self._queue = deque()                 # NCQ submission queue (FIFO)
        self._work = None
        self._destage_work = None
        self._workers = [env.process(self._ncq_worker())
                         for _ in range(self.spec.ncq_depth)]
        if self.spec.write_cache_enabled:
            self._destage_process = env.process(self._destage_loop())
        else:
            self._destage_process = None

    # -- public API (the Disk contract) -----------------------------------------
    def read(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a read; returns an event fired when data is at the IOP."""
        return self.submit(DiskRequest(op=READ, lbn=lbn, n_sectors=n_sectors,
                                       tag=tag, session_id=session_id))

    def write(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; returns an event fired when the drive accepts the data."""
        return self.submit(DiskRequest(op=WRITE, lbn=lbn, n_sectors=n_sectors,
                                       tag=tag, session_id=session_id))

    def write_tracked(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; returns ``(accepted, on_media)`` events.

        Same semantics as :meth:`repro.disk.drive.Disk.write_tracked`:
        ``on_media`` fires when this write's pages are programmed to flash.
        """
        request = DiskRequest(op=WRITE, lbn=lbn, n_sectors=n_sectors, tag=tag,
                              session_id=session_id)
        request.media_completion = Event(self.env)
        accepted = self.submit(request)
        return accepted, request.media_completion

    def submit(self, request):
        """Queue *request*; returns its completion event."""
        if request.lbn < 0 \
                or request.lbn + request.n_sectors > self.geometry.total_sectors:
            raise ValueError(
                f"request [{request.lbn}, {request.lbn + request.n_sectors}) "
                f"outside device of {self.geometry.total_sectors} sectors")
        if request.n_sectors <= 0:
            raise ValueError("request must cover at least one sector")
        request.completion = Event(self.env)
        request.submit_time = self.env.now
        self._queue.append(request)
        self._kick()
        return request.completion

    def flush(self):
        """Event that fires once all buffered writes are programmed to flash."""
        event = Event(self.env)
        if self._writes_outstanding == 0 and not self._has_pending_writes():
            event.succeed()
        else:
            self._flush_waiters.append(event)
        return event

    @property
    def queue_depth(self):
        """Requests waiting for an NCQ worker (excluding buffered writes)."""
        return len(self._queue)

    @property
    def head_lbn_estimate(self):
        """End of the last serviced request (for scheduling policies).

        Flash has no head, but shared-queue policies expect a position to
        sort against; the last serviced LBN is deterministic and harmless
        (sorting buys nothing on flash either way).
        """
        return self._last_lbn

    def session(self, session_id):
        """This drive's :class:`SessionDiskStats` for *session_id* (lazily created)."""
        stats = self.session_stats.get(session_id)
        if stats is None:
            stats = self.session_stats[session_id] = SessionDiskStats()
        return stats

    def release_session(self, session_id):
        """Drop per-session accounting once the session's result is final."""
        self.session_stats.pop(session_id, None)

    def flash_counters(self):
        """FTL work counters plus device-level cache stats (JSON-friendly)."""
        counters = self.ftl.counters()
        counters["cache_hits"] = self.stats.cache_hits
        counters["cache_misses"] = self.stats.cache_misses
        return counters

    # -- the NCQ worker pool -----------------------------------------------------
    def _kick(self):
        if self._work is not None and not self._work.triggered:
            self._work.succeed()
            self._work = None

    def _kick_destage(self):
        if self._destage_work is not None and not self._destage_work.triggered:
            self._destage_work.succeed()
            self._destage_work = None

    def _has_pending_writes(self):
        return any(request.op == WRITE for request in self._queue)

    def _ncq_worker(self):
        while True:
            while not self._queue:
                if self._work is None or self._work.triggered:
                    self._work = Event(self.env)
                yield self._work
            request = self._queue.popleft()
            wait = self.env.now - request.submit_time
            self.stats.queue_wait_time += wait
            start = self.env.now
            if request.op == READ:
                yield from self._service_read(request)
            else:
                yield from self._service_write(request)
            # With ncq_depth workers, per-request service spans overlap;
            # busy_time is total service seconds, not wall occupancy.
            busy = self.env.now - start
            self.stats.busy_time += busy
            if request.session_id is not None:
                session = self.session(request.session_id)
                session.queue_wait_time += wait
                session.service_time += busy

    # -- channel holds -----------------------------------------------------------
    def _hold_channel(self, channel, hold):
        event = channel.acquire_event(hold)
        if event is not None:
            yield event
        else:
            yield from channel.acquire(hold)

    def _parallel_holds(self, per_channel):
        """Hold several channels concurrently; resumes when all are done.

        *per_channel* maps channel index -> hold seconds.  The common case
        (all pages on one channel) stays a plain inline hold; multi-channel
        requests fan out into child processes joined on one event — this is
        what lets a single large request use the device's full bandwidth.
        """
        if len(per_channel) == 1:
            (index, hold), = per_channel.items()
            yield from self._hold_channel(self._channels[index], hold)
            return
        done = Event(self.env)
        remaining = len(per_channel)

        def child(channel, hold):
            nonlocal remaining
            yield from self._hold_channel(channel, hold)
            remaining -= 1
            if remaining == 0:
                done.succeed()

        for index in sorted(per_channel):
            self.env.process(child(self._channels[index], per_channel[index]))
        yield done

    def _channel_times(self, pages, per_page_time):
        """Fold a page list into per-channel hold times (lpn stripe)."""
        per_channel = {}
        n_channels = self.spec.channels
        for lpn in pages:
            index = lpn % n_channels
            per_channel[index] = per_channel.get(index, 0.0) + per_page_time
        return per_channel

    # -- read path ---------------------------------------------------------------
    def _service_read(self, request):
        env = self.env
        spec = self.spec
        plan = self.fault_plan
        session = self.session(request.session_id) \
            if request.session_id is not None else None
        yield env.timeout(spec.controller_overhead)
        pages = self.geometry.page_span(request.lbn, request.n_sectors)
        if plan is not None:
            if plan.failed_at(env.now):
                self._fail_request(request, FAIL_STOP)
                return
            error = plan.media_error(request)
            if error is not None:
                # The device attempts the flash reads and reports the error:
                # charge (possibly stretched) flash time, ship no data.
                self.stats.cache_misses += 1
                if session is not None:
                    session.cache_misses += 1
                slow = plan.slow_multiplier(env.now)
                per_channel = self._channel_times(
                    pages, spec.read_page_time * slow)
                self.stats.transfer_time += sum(per_channel.values())
                yield from self._parallel_holds(per_channel)
                self._fail_request(request, error)
                return
        if all(lpn in self._cached_lpns for lpn in pages):
            # Read hit in the volatile write cache: no flash operation.
            self.stats.cache_hits += 1
            if session is not None:
                session.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            if session is not None:
                session.cache_misses += 1
            slow = plan.slow_multiplier(env.now) if plan is not None else 1.0
            per_channel = self._channel_times(
                pages, spec.read_page_time * slow)
            self.stats.transfer_time += sum(per_channel.values())
            yield from self._parallel_holds(per_channel)
        # Ship the data across the SCSI bus to the IOP.
        bus_hold = self.bus_port.transfer_event(env, request.n_bytes,
                                                session_id=request.session_id)
        if bus_hold is None:
            yield from self.bus_port.transfer(env, request.n_bytes,
                                              session_id=request.session_id)
        else:
            yield bus_hold
        self.stats.reads += 1
        self.stats.bytes_read += request.n_bytes
        if session is not None:
            session.reads += 1
            session.bytes_read += request.n_bytes
        self._last_lbn = request.lbn + request.n_sectors
        # Silent corruption: the read succeeds with flipped payload bytes;
        # only checksum-verifying clients can tell (same model as Disk).
        if plan is not None and plan.silently_corrupts(request):
            request.corrupt = True
            self.stats.faults["silent_corruption"] = \
                self.stats.faults.get("silent_corruption", 0) + 1
        request.completion.succeed(request)
        self._signal_media(request)

    # -- write path ---------------------------------------------------------------
    def _service_write(self, request):
        env = self.env
        plan = self.fault_plan
        yield env.timeout(self.spec.controller_overhead)
        if plan is not None and plan.failed_at(env.now):
            # Dead device: refuse the data before it crosses the bus.
            self._fail_request(request, FAIL_STOP)
            return
        # Data moves from IOP memory across the bus into the device first.
        bus_hold = self.bus_port.transfer_event(env, request.n_bytes,
                                                session_id=request.session_id)
        if bus_hold is None:
            yield from self.bus_port.transfer(env, request.n_bytes,
                                              session_id=request.session_id)
        else:
            yield bus_hold
        if plan is not None:
            error = plan.media_error(request)
            if error is not None:
                self._fail_request(request, error)
                return
        pages = self.geometry.page_span(request.lbn, request.n_sectors)
        if self.spec.write_cache_enabled:
            # Wait for cache space (page-granular), then complete; the
            # destage loop programs the pages in the background.  A request
            # larger than the whole cache proceeds alone into an empty
            # cache, so it can never deadlock.
            n_pages = len(pages)
            while self._buffered_pages \
                    and self._buffered_pages + n_pages \
                    > self.write_buffer_capacity:
                waiter = Event(env)
                self._buffer_waiters.append(waiter)
                yield waiter
            self._buffered_pages += n_pages
            for lpn in pages:
                self._cached_lpns[lpn] = self._cached_lpns.get(lpn, 0) + 1
            self._write_buffer.append(request)
            self._writes_outstanding += 1
            self._kick_destage()
            self._account_write(request)
            request.completion.succeed(request)
        else:
            yield from self._program_pages(request)
            self._account_write(request)
            request.completion.succeed(request)
            self._signal_media(request)
            self._maybe_release_flush_waiters()

    def _account_write(self, request):
        self.stats.writes += 1
        self.stats.bytes_written += request.n_bytes
        if request.session_id is not None:
            session = self.session(request.session_id)
            session.writes += 1
            session.bytes_written += request.n_bytes

    def _destage_loop(self):
        env = self.env
        while True:
            while not self._write_buffer:
                self._destage_work = Event(env)
                yield self._destage_work
            request = self._write_buffer.popleft()
            yield from self._program_pages(request)
            self._release_cached(request)
            self._writes_outstanding -= 1
            # A destage frees several pages at once; wake every waiter and
            # let each re-check (they re-queue in deterministic FIFO order).
            waiters, self._buffer_waiters = self._buffer_waiters, deque()
            for waiter in waiters:
                waiter.succeed()
            self._signal_media(request)
            self._maybe_release_flush_waiters()

    def _release_cached(self, request):
        pages = self.geometry.page_span(request.lbn, request.n_sectors)
        self._buffered_pages -= len(pages)
        for lpn in pages:
            count = self._cached_lpns.get(lpn, 0) - 1
            if count <= 0:
                self._cached_lpns.pop(lpn, None)
            else:
                self._cached_lpns[lpn] = count

    def _program_pages(self, request):
        """Program a write's pages through the FTL, charging GC work.

        GC relocation reads/programs and block erases are charged on the
        target page's channel — a simplification (real GC spreads over
        channels), deterministic and conservative for the victim channel.
        """
        env = self.env
        plan = self.fault_plan
        if plan is not None and plan.failed_at(env.now):
            # The device died with this write still cached: data lost.
            request.status = "error"
            request.error = FAIL_STOP
            self.stats.faults["lost_destage"] = \
                self.stats.faults.get("lost_destage", 0) + 1
            return
        spec = self.spec
        slow = plan.slow_multiplier(env.now) if plan is not None else 1.0
        per_channel = {}
        for lpn in self.geometry.page_span(request.lbn, request.n_sectors):
            ppn, gc = self.ftl.write(lpn)
            hold = spec.program_page_time \
                + gc.relocated * (spec.read_page_time
                                  + spec.program_page_time) \
                + gc.erases * spec.erase_block_time
            index = lpn % spec.channels
            per_channel[index] = per_channel.get(index, 0.0) + hold * slow
        self.stats.transfer_time += sum(per_channel.values())
        self._last_lbn = request.lbn + request.n_sectors
        yield from self._parallel_holds(per_channel)

    # -- failure + completion plumbing -------------------------------------------
    def _fail_request(self, request, error):
        """Complete *request* with an error status (same contract as Disk)."""
        request.status = "error"
        request.error = error
        self.stats.faults[error] = self.stats.faults.get(error, 0) + 1
        request.completion.succeed(request)
        self._signal_media(request)

    def _signal_media(self, request):
        if request.media_completion is not None \
                and not request.media_completion.triggered:
            request.media_completion.succeed(request)

    def _maybe_release_flush_waiters(self):
        if self._writes_outstanding == 0 and not self._has_pending_writes():
            waiters, self._flush_waiters = self._flush_waiters, []
            for waiter in waiters:
                waiter.succeed()
