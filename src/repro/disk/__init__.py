"""HP 97560 disk model and disk device simulation.

The paper's results depend on a validated model of the HP 97560 SCSI drive
(Ruemmler & Wilkes, "An introduction to disk drive modeling", IEEE Computer
1994; Kotz/Toh/Radhakrishnan TR94-220).  This package re-implements that model:

* :mod:`repro.disk.geometry` — logical-block to cylinder/head/sector mapping,
* :mod:`repro.disk.mechanics` — seek-time curve, rotational latency, media
  transfer rate,
* :mod:`repro.disk.cache` — the drive's on-board read-ahead cache, which is
  what rewards sequential (contiguous-layout) access,
* :mod:`repro.disk.scheduler` — request-queue scheduling policies (FCFS,
  SSTF, CSCAN, and the externally-directed order used by disk-directed I/O),
* :mod:`repro.disk.shared_queue` — the cross-collective IOP scheduler: one
  shared sorted queue per drive, merging requests from all active
  collective sessions (``Machine(disk_scheduler="shared-cscan")``),
* :mod:`repro.disk.drive` — the :class:`~repro.disk.drive.Disk` device process
  that services block requests under a shared SCSI bus,
* :mod:`repro.disk.flash` — the :class:`~repro.disk.flash.SSD` flash device
  (FTL, erase-block GC, write cache, NCQ), duck-compatible with ``Disk``
  behind the ``Machine(device=...)`` axis.
"""

from repro.disk.cache import ReadAheadCache
from repro.disk.drive import Disk, DiskRequest, DiskStats, SessionDiskStats
from repro.disk.flash import (SSD, FlashTranslationLayer, SSDSpec,
                              matched_ssd_spec)
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import SeekModel
from repro.disk.scheduler import (
    CScanScheduler,
    FcfsScheduler,
    SstfScheduler,
    make_scheduler,
)
from repro.disk.shared_queue import SharedDiskQueue
from repro.disk.specs import HP97560_SPEC, DiskSpec

__all__ = [
    "CScanScheduler",
    "Disk",
    "DiskGeometry",
    "DiskRequest",
    "DiskSpec",
    "DiskStats",
    "FcfsScheduler",
    "FlashTranslationLayer",
    "HP97560_SPEC",
    "ReadAheadCache",
    "SSD",
    "SSDSpec",
    "SeekModel",
    "SessionDiskStats",
    "SharedDiskQueue",
    "SstfScheduler",
    "make_scheduler",
    "matched_ssd_spec",
]
