"""The simulated disk drive: request queue, mechanics, cache and SCSI transfer.

A :class:`Disk` is a device process.  Clients call :meth:`Disk.read` /
:meth:`Disk.write` (or :meth:`Disk.submit`), receive an event, and yield it;
the drive's service loop picks queued requests according to its scheduling
policy, charges controller overhead, mechanical positioning (or a read-ahead
cache hit), media transfer, and the SCSI-bus transfer to the I/O processor.

Writes go through the drive's write buffer when enabled: the request completes
once the data has crossed the bus and fits in the buffer, and a background
destage process pushes it to the media.  :meth:`Disk.flush` waits for the
buffer to drain — experiment harnesses call it so that reported transfer times
include all write-behind, as the paper's do.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.disk.cache import ReadAheadCache
from repro.disk.faults import FAIL_STOP
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.scheduler import make_scheduler
from repro.sim.events import Event
from repro.sim.stats import Counter


READ = "read"
WRITE = "write"


@dataclass(slots=True)
class DiskRequest:
    """A single request for a contiguous run of sectors."""

    op: str
    lbn: int
    n_sectors: int
    completion: Event = None
    submit_time: float = 0.0
    tag: object = None
    #: id of the :class:`~repro.core.base.CollectiveSession` this request
    #: belongs to (None for untagged traffic); the drive attributes its
    #: service time, byte counts and bus occupancy to this session.
    session_id: object = None
    #: optional event fired when a write's data reaches the media (for reads
    #: it fires together with ``completion``); clients that must drain their
    #: own write-behind without waiting on other clients' traffic use this.
    media_completion: Event = None
    #: "ok", or "error" when the drive could not serve the request.  The
    #: completion event still *succeeds* (with the request as its value) so
    #: every existing ``request = yield disk.read(...)`` call site keeps
    #: working; failure-aware clients check this field.
    status: str = "ok"
    #: Error kind when ``status == "error"`` (one of the
    #: :mod:`repro.disk.faults` constants).
    error: str = None
    #: True when a read returned flipped payload bytes *without* an error
    #: status (the drive's silent-corruption ranges, see
    #: :mod:`repro.disk.faults`).  The device never acts on this flag — it
    #: models a wrong checksum over the returned data, visible only to
    #: clients that verify checksums.
    corrupt: bool = False

    @property
    def n_bytes(self):
        """Size of the request in bytes (sector-granular)."""
        return self.n_sectors * 512


@dataclass
class DiskStats:
    """Aggregate statistics for one drive."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    queue_wait_time: float = 0.0
    extra: Counter = field(default_factory=lambda: Counter("extra"))
    #: error kind -> count of requests failed by the fault plan (plus
    #: ``"lost_destage"`` for buffered writes dropped by a fail-stop).
    faults: dict = field(default_factory=dict)


@dataclass
class SessionDiskStats:
    """One session's share of a drive's work.

    ``service_time`` is drive busy time spent on this session's requests
    (controller, positioning, media and bus transfer).  Background destage of
    buffered writes is *not* attributed — it belongs to the drive, not to any
    one session — so write-heavy sessions see the bus-and-accept cost here
    and the destage cost only through queueing delays.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    service_time: float = 0.0
    queue_wait_time: float = 0.0


class BusPort:
    """The drive's attachment to a shared SCSI bus.

    ``resource`` is the shared :class:`~repro.sim.resources.Resource` (one per
    I/O bus); ``bandwidth`` is the bus's peak byte rate and ``overhead`` the
    per-transfer arbitration/command cost.
    """

    def __init__(self, resource, bandwidth, overhead=0.0):
        self.resource = resource
        self.bandwidth = bandwidth
        self.overhead = overhead

    def transfer_time(self, n_bytes):
        """Bus occupancy for a transfer of *n_bytes*."""
        return self.overhead + n_bytes / self.bandwidth

    def transfer(self, env, n_bytes, session_id=None):
        """Process fragment: hold the bus for the duration of the transfer.

        *session_id* attributes the occupancy to one collective session
        (ports that track per-session bus share override this).
        """
        yield from self.resource.acquire(self.transfer_time(n_bytes))

    def transfer_event(self, env, n_bytes, session_id=None):
        """Uncontended fast path for :meth:`transfer`: one event, or ``None``.

        When the bus is free, the whole hold is a single yieldable event
        (see :meth:`~repro.sim.resources.Resource.acquire_event`); a busy
        bus returns ``None`` and the caller falls back to the
        :meth:`transfer` process fragment, preserving FIFO arbitration.
        """
        return self.resource.acquire_event(self.transfer_time(n_bytes))


class Disk:
    """A single simulated drive attached to a SCSI bus on one IOP."""

    def __init__(self, env, spec, bus_port, name="disk", scheduler="fcfs",
                 initial_angle_fraction=0.0, write_buffer_blocks=None,
                 fault_plan=None):
        self.env = env
        self.spec = spec
        self.name = name
        self.bus_port = bus_port
        #: Optional :class:`~repro.disk.faults.FaultPlan`.  A non-None plan
        #: disables the fused read fast path (see :meth:`_service_read`);
        #: None means this drive is bit-identical to the pre-fault model.
        self.fault_plan = fault_plan
        self.geometry = DiskGeometry(spec)
        self.mechanics = DiskMechanics(
            spec, self.geometry, initial_angle_fraction=initial_angle_fraction)
        self.readahead = ReadAheadCache(spec)
        self.scheduler = make_scheduler(scheduler) if isinstance(scheduler, str) \
            else scheduler
        self.stats = DiskStats()
        #: per-session attribution (session id -> :class:`SessionDiskStats`);
        #: entries are created lazily for tagged requests and dropped by
        #: :meth:`release_session` once a collective's result is snapshotted.
        self.session_stats = {}

        if write_buffer_blocks is None:
            write_buffer_blocks = max(1, spec.cache_size // 8192)
        self.write_buffer_capacity = write_buffer_blocks
        self._write_buffer = deque()          # destage queue of DiskRequest
        self._write_buffer_waiters = deque()  # requests waiting for buffer space
        self._writes_outstanding = 0     # buffered or in-destage writes
        self._flush_waiters = []
        #: Delay fusion defers the serve loop's arm update to a single fused
        #: timeout; these reproduce the unfused timeline for *observers*
        #: (the shared queue's policy reads :attr:`head_lbn_estimate` while
        #: a request is mid-service): before ``_cylinder_update_time`` the
        #: arm still reports the pre-request cylinder.
        self._cylinder_update_time = 0.0
        self._cylinder_before = 0

        self._queue = []
        self._work_available = None
        self._destage_work = None
        self._serve_process = env.process(self._serve_loop())
        if spec.write_cache_enabled:
            self._destage_process = env.process(self._destage_loop())
        else:
            self._destage_process = None

    # -- public API -------------------------------------------------------------
    def read(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a read; returns an event fired when data is at the IOP."""
        return self.submit(DiskRequest(op=READ, lbn=lbn, n_sectors=n_sectors,
                                       tag=tag, session_id=session_id))

    def write(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; returns an event fired when the drive accepts the data."""
        return self.submit(DiskRequest(op=WRITE, lbn=lbn, n_sectors=n_sectors,
                                       tag=tag, session_id=session_id))

    def write_tracked(self, lbn, n_sectors, tag=None, session_id=None):
        """Submit a write; returns ``(accepted, on_media)`` events.

        ``accepted`` fires when the drive takes the data (write-cache
        semantics, same as :meth:`write`); ``on_media`` fires when *this*
        write's destage finishes.  Unlike :meth:`flush`, waiting on
        ``on_media`` does not couple the caller to other clients' pending
        writes — which matters when several collectives share the drive.
        """
        request = DiskRequest(op=WRITE, lbn=lbn, n_sectors=n_sectors, tag=tag,
                              session_id=session_id)
        request.media_completion = Event(self.env)
        accepted = self.submit(request)
        return accepted, request.media_completion

    def submit(self, request):
        """Queue *request*; returns its completion event."""
        if request.lbn < 0 or request.lbn + request.n_sectors > self.geometry.total_sectors:
            raise ValueError(
                f"request [{request.lbn}, {request.lbn + request.n_sectors}) outside disk "
                f"of {self.geometry.total_sectors} sectors")
        if request.n_sectors <= 0:
            raise ValueError("request must cover at least one sector")
        request.completion = Event(self.env)
        request.submit_time = self.env.now
        self._queue.append(request)
        self._kick()
        return request.completion

    def flush(self):
        """Event that fires once all buffered writes have reached the media."""
        event = Event(self.env)
        if self._writes_outstanding == 0 and not self._has_pending_writes():
            event.succeed()
        else:
            self._flush_waiters.append(event)
        return event

    @property
    def queue_depth(self):
        """Number of requests waiting for service (excluding buffered writes)."""
        return len(self._queue)

    @property
    def current_cylinder(self):
        """Cylinder the heads are currently positioned over."""
        if self.env._now < self._cylinder_update_time:
            return self._cylinder_before
        return self.mechanics.current_cylinder

    @property
    def head_lbn_estimate(self):
        """Approximate head position as an LBN, for scheduling policies."""
        return self._current_lbn_estimate()

    def session(self, session_id):
        """This drive's :class:`SessionDiskStats` for *session_id* (lazily created)."""
        stats = self.session_stats.get(session_id)
        if stats is None:
            stats = self.session_stats[session_id] = SessionDiskStats()
        return stats

    def release_session(self, session_id):
        """Drop per-session accounting once the session's result is final."""
        self.session_stats.pop(session_id, None)

    # -- service loop ---------------------------------------------------------------
    def _kick(self):
        if self._work_available is not None and not self._work_available.triggered:
            self._work_available.succeed()
            self._work_available = None

    def _kick_destage(self):
        if self._destage_work is not None and not self._destage_work.triggered:
            self._destage_work.succeed()
            self._destage_work = None

    def _has_pending_writes(self):
        return any(request.op == WRITE for request in self._queue)

    def _serve_loop(self):
        while True:
            while not self._queue:
                self._work_available = Event(self.env)
                yield self._work_available
            index = self.scheduler.select(self._queue, self._current_lbn_estimate())
            request = self._queue.pop(index)
            wait = self.env.now - request.submit_time
            self.stats.queue_wait_time += wait
            start = self.env.now
            if request.op == READ:
                yield from self._service_read(request)
            else:
                yield from self._service_write(request)
            busy = self.env.now - start
            self.stats.busy_time += busy
            if request.session_id is not None:
                session = self.session(request.session_id)
                session.queue_wait_time += wait
                session.service_time += busy

    def _current_lbn_estimate(self):
        # Approximate the head position by the first sector of the current cylinder;
        # schedulers only need relative ordering.
        cylinder = self._cylinder_before \
            if self.env._now < self._cylinder_update_time \
            else self.mechanics.current_cylinder
        return cylinder * self.spec.sectors_per_track * self.spec.heads

    def _set_cylinder(self, cylinder, visible_at):
        """Move the arm; the move becomes *observable* at ``visible_at``.

        The fused service path updates mechanics state at service start, but
        the unfused timeline moved the arm mid-service (after the controller
        overhead, or at read-ahead data-ready time).  Deferring visibility
        keeps :attr:`head_lbn_estimate` — read concurrently by the shared
        queue's scheduling policy — bit-identical to the unfused simulator.
        """
        mechanics = self.mechanics
        self._cylinder_before = mechanics.current_cylinder
        self._cylinder_update_time = visible_at
        mechanics.current_cylinder = cylinder

    # -- read path ---------------------------------------------------------------
    def _service_read(self, request):
        env = self.env
        spec = self.spec
        geometry = self.geometry

        session = self.session(request.session_id) \
            if request.session_id is not None else None
        # Delay fusion: controller overhead, any read-ahead wait, and the
        # mechanical positioning + media transfer are charged as ONE fused
        # timeout instead of two.  Every model decision is computed against
        # the instant the unfused timeline would have made it (the cache
        # lookup and positioning take the time as an explicit argument), and
        # the fused timeout lands on the exact end time via ``event_at``, so
        # simulated results are bit-identical.
        #
        # Fusion is only sound while the destage loop is provably idle: with
        # write-behind in flight, a background ``_write_to_media`` could
        # invalidate the read-ahead cache or move the arm *inside* the
        # controller window, and the unfused timeline would observe that.
        # ``_writes_outstanding == 0`` guarantees quiescence for the whole
        # service (no new write can be accepted while this read is served);
        # otherwise fall back to the unfused reference sequence.  A fault
        # plan disables fusion the same way: errors and fail-slow stretching
        # are decided mid-service on the unfused timeline.
        plan = self.fault_plan
        fused = self._writes_outstanding == 0 and plan is None
        if fused:
            lookup_time = env._now + spec.controller_overhead
        else:
            yield env.timeout(spec.controller_overhead)
            lookup_time = env._now
        end_lbn = request.lbn + request.n_sectors
        end_cylinder = geometry.cylinder_of(
            min(end_lbn, geometry.total_sectors - 1))
        if plan is not None:
            if plan.failed_at(env.now):
                # Dead drive: fail immediately after the controller window.
                self._fail_request(request, FAIL_STOP)
                return
            error = plan.media_error(request)
            if error is not None:
                # The drive attempts the transfer and reports the error:
                # charge positioning + (possibly stretched) media time, but
                # ship no data across the bus and start no read-ahead.
                self.stats.cache_misses += 1
                if session is not None:
                    session.cache_misses += 1
                self.readahead.invalidate()
                positioning = self.mechanics.positioning_time(
                    lookup_time, request.lbn)
                transfer = self.mechanics.media.transfer_time(
                    request.lbn, request.n_sectors)
                self.stats.seek_time += positioning
                self.stats.transfer_time += transfer
                self.mechanics.current_cylinder = end_cylinder
                yield env.timeout((positioning + transfer)
                                  * plan.slow_multiplier(lookup_time))
                self._fail_request(request, error)
                return
        hit, ready_time = self.readahead.lookup(lookup_time, request.lbn,
                                                request.n_sectors)
        if hit:
            self.stats.cache_hits += 1
            if session is not None:
                session.cache_hits += 1
            if fused:
                if ready_time > lookup_time:
                    service_end = lookup_time + (ready_time - lookup_time)
                else:
                    service_end = lookup_time
                self.readahead.extend_after_hit(service_end, end_lbn,
                                                geometry.total_sectors)
                # Track arm position so later schedulers see a sensible cylinder.
                self._set_cylinder(end_cylinder, visible_at=service_end)
                yield env.event_at(service_end)
            else:
                if ready_time > env.now:
                    yield env.timeout(ready_time - env.now)
                self.readahead.extend_after_hit(env.now, end_lbn,
                                                geometry.total_sectors)
                self.mechanics.current_cylinder = end_cylinder
        else:
            self.stats.cache_misses += 1
            if session is not None:
                session.cache_misses += 1
            self.readahead.invalidate()
            positioning = self.mechanics.positioning_time(lookup_time, request.lbn)
            transfer = self.mechanics.media.transfer_time(request.lbn, request.n_sectors)
            self.stats.seek_time += positioning
            self.stats.transfer_time += transfer
            if fused:
                self._set_cylinder(end_cylinder, visible_at=lookup_time)
                yield env.event_at(lookup_time + (positioning + transfer))
            else:
                self.mechanics.current_cylinder = end_cylinder
                delay = positioning + transfer
                if plan is not None:
                    delay *= plan.slow_multiplier(lookup_time)
                yield env.timeout(delay)
            # Media keeps streaming into the cache after the request completes.
            self.readahead.start_readahead(env.now, end_lbn, geometry.total_sectors)

        # Ship the data across the SCSI bus to the IOP.
        bus_hold = self.bus_port.transfer_event(env, request.n_bytes,
                                                session_id=request.session_id)
        if bus_hold is None:
            yield from self.bus_port.transfer(env, request.n_bytes,
                                              session_id=request.session_id)
        else:
            yield bus_hold
        self.stats.reads += 1
        self.stats.bytes_read += request.n_bytes
        if session is not None:
            session.reads += 1
            session.bytes_read += request.n_bytes
        # Silent corruption: the read *succeeds* — same timing, same status —
        # but the payload is marked corrupt for checksum-verifying clients.
        # (plan is None on the fused path, so this costs nothing there.)
        if plan is not None and plan.silently_corrupts(request):
            request.corrupt = True
            self.stats.faults["silent_corruption"] = \
                self.stats.faults.get("silent_corruption", 0) + 1
        request.completion.succeed(request)
        self._signal_media(request)

    # -- write path ---------------------------------------------------------------
    def _service_write(self, request):
        env = self.env
        plan = self.fault_plan
        # No fusion here: the controller overhead is followed by a *shared*
        # bus acquisition, and folding the overhead into the bus hold would
        # change the arbitration window other contenders see.
        yield env.timeout(self.spec.controller_overhead)
        if plan is not None and plan.failed_at(env.now):
            # Dead drive: refuse the data before it crosses the bus.
            self._fail_request(request, FAIL_STOP)
            return
        # Data moves from IOP memory across the bus into the drive first.
        bus_hold = self.bus_port.transfer_event(env, request.n_bytes,
                                                session_id=request.session_id)
        if bus_hold is None:
            yield from self.bus_port.transfer(env, request.n_bytes,
                                              session_id=request.session_id)
        else:
            yield bus_hold
        if plan is not None:
            error = plan.media_error(request)
            if error is not None:
                # The drive took the data but reports a write error before
                # buffering it; the client may retry with a fresh request.
                self._fail_request(request, error)
                return

        if self.spec.write_cache_enabled:
            # Wait for buffer space, then complete; destage happens in background.
            while len(self._write_buffer) >= self.write_buffer_capacity:
                waiter = Event(env)
                self._write_buffer_waiters.append(waiter)
                yield waiter
            self._write_buffer.append(request)
            self._writes_outstanding += 1
            self._kick_destage()
            self._account_write(request)
            request.completion.succeed(request)
        else:
            yield from self._write_to_media(request)
            self._account_write(request)
            request.completion.succeed(request)
            self._signal_media(request)
            self._maybe_release_flush_waiters()

    def _account_write(self, request):
        self.stats.writes += 1
        self.stats.bytes_written += request.n_bytes
        if request.session_id is not None:
            session = self.session(request.session_id)
            session.writes += 1
            session.bytes_written += request.n_bytes

    def _destage_loop(self):
        env = self.env
        while True:
            while not self._write_buffer:
                self._destage_work = Event(env)
                yield self._destage_work
            request = self._write_buffer.popleft()
            if self._write_buffer_waiters:
                self._write_buffer_waiters.popleft().succeed()
            yield from self._write_to_media(request)
            self._writes_outstanding -= 1
            self._signal_media(request)
            self._maybe_release_flush_waiters()

    def _write_to_media(self, request):
        env = self.env
        plan = self.fault_plan
        if plan is not None and plan.failed_at(env.now):
            # The drive died with this write still buffered: the data is
            # lost at the device.  The caller still signals media completion
            # (with the request marked errored) so flush waiters never hang.
            request.status = "error"
            request.error = FAIL_STOP
            self.stats.faults["lost_destage"] = \
                self.stats.faults.get("lost_destage", 0) + 1
            return
        # A write that continues exactly where the previous media operation
        # ended streams at media rate; anything else pays seek + rotation.
        positioning = self.mechanics.positioning_time(env.now, request.lbn)
        transfer = self.mechanics.media.transfer_time(request.lbn, request.n_sectors)
        self.stats.seek_time += positioning
        self.stats.transfer_time += transfer
        end_lbn = request.lbn + request.n_sectors
        self.mechanics.current_cylinder = self.geometry.cylinder_of(
            min(end_lbn, self.geometry.total_sectors - 1))
        # Writing invalidates any read-ahead state (conservative).
        self.readahead.invalidate()
        delay = positioning + transfer
        if plan is not None:
            delay *= plan.slow_multiplier(env.now)
        yield env.timeout(delay)

    def _fail_request(self, request, error):
        """Complete *request* with an error status.

        The completion event *succeeds* (carrying the errored request) so
        non-fault-aware call sites keep working; ``media_completion`` fires
        too, keeping ``write_tracked``/``flush`` waiters live under faults.
        """
        request.status = "error"
        request.error = error
        self.stats.faults[error] = self.stats.faults.get(error, 0) + 1
        request.completion.succeed(request)
        self._signal_media(request)

    def _signal_media(self, request):
        if request.media_completion is not None \
                and not request.media_completion.triggered:
            request.media_completion.succeed(request)

    def _maybe_release_flush_waiters(self):
        if self._writes_outstanding == 0 and not self._has_pending_writes():
            waiters, self._flush_waiters = self._flush_waiters, []
            for waiter in waiters:
                waiter.succeed()
