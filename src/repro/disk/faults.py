"""Deterministic disk fault models: transient errors, bad sectors, fail-slow,
fail-stop.

A :class:`FaultConfig` describes a fault scenario for a whole machine; at
machine-build time each drive gets its own :class:`FaultPlan`, seeded from
``(seed, disk_index)`` via the same :mod:`~repro.sim.rng` discipline as disk
layout and rotation, so the fault schedule is a pure function of the trial
seed — two runs with the same seed see the same bad sectors and the same
per-request transient draws, and the plan's :meth:`FaultPlan.describe`
snapshot is recorded in the result envelope.

Fault taxonomy (the ``error`` string on a failed :class:`~repro.disk.drive.
DiskRequest`):

* :data:`TRANSIENT` — per-request media error with probability
  ``transient_rate``; the same transfer usually succeeds when retried.
* :data:`BAD_SECTOR` — the request overlaps a latent bad LBN range; retries
  hit the same range and keep failing (permanent).
* :data:`FAIL_STOP` — the drive died at ``fail_stop_time``; every request at
  or after that instant fails immediately (permanent).

Fail-slow is not an error at all: requests complete normally but mechanical
work on the sick drive is stretched by ``slow_factor`` inside the episode
window, which is exactly the failure mode retry deadlines are for.

Silent corruption is not an error either — that is the whole point.  A read
overlapping one of the drive's ``silent_ranges`` completes with
``status == "ok"`` and flipped payload bytes, marked only by the
``corrupt`` flag on the request (the simulation's stand-in for a wrong
checksum over the returned data).  A client that verifies checksums
(``checksums=True`` on the collective file system) detects every such read;
a client that does not delivers the corrupt bytes silently.  Detection is
what checksums buy; *repair* additionally needs parity
(:mod:`repro.disk.redundancy`).

Client-side policy lives in :class:`FaultPolicy` (bounded exponential-backoff
retry with a deadline, or degrade/abort); :class:`BlockFault` is the marker
the TC cache delivers to readers instead of data when a block is
permanently unavailable.
"""

import zlib
from dataclasses import dataclass

import numpy as np

#: Error kinds carried in :attr:`repro.disk.drive.DiskRequest.error`.
TRANSIENT = "transient"
BAD_SECTOR = "bad-sector"
FAIL_STOP = "fail-stop"

#: Errors a retry can never fix.
PERMANENT_ERRORS = frozenset({BAD_SECTOR, FAIL_STOP})

#: Domain tag mixed into the fault seed stream so fault draws can never
#: collide with layout/rotation streams derived from the same trial seed
#: (stable across processes, unlike ``hash()``).
_FAULT_DOMAIN = zlib.crc32(b"disk-faults")


@dataclass(frozen=True)
class FaultConfig:
    """A machine-level fault scenario (all rates zero == healthy machine).

    ``transient_rate`` applies to every drive; bad ranges are drawn
    independently per drive; fail-slow and fail-stop each target a single
    drive index (``-1`` disables them).
    """

    #: Per-request probability of a retryable media error (every drive).
    transient_rate: float = 0.0
    #: Number of latent bad LBN ranges per drive.
    bad_range_count: int = 0
    #: Length of each bad range, in sectors.
    bad_range_sectors: int = 64
    #: Service-time multiplier for the fail-slow drive inside its episode.
    slow_factor: float = 1.0
    #: Index of the fail-slow drive (-1: none).
    slow_disk: int = -1
    #: Fail-slow episode window [start, start + duration) in simulated seconds.
    slow_start: float = 0.0
    slow_duration: float = 0.0
    #: Index of the drive that fail-stops (-1: none).
    fail_stop_disk: int = -1
    #: Instant the fail-stop drive dies.
    fail_stop_time: float = 0.0
    #: Number of silently-corrupting LBN ranges per drive: reads overlapping
    #: one complete with ``status == "ok"`` but flipped payload bytes
    #: (``DiskRequest.corrupt``) — no error status, so only client-side
    #: checksums can see them.
    silent_range_count: int = 0
    #: Length of each silently-corrupting range, in sectors.
    silent_range_sectors: int = 64
    #: Restrict silent ranges to one drive index (-1: every drive draws its
    #: own) — the single-bad-drive case parity can fully repair.
    silent_disk: int = -1

    @property
    def enabled(self):
        """Whether this scenario injects anything at all."""
        return (self.transient_rate > 0.0 or self.bad_range_count > 0
                or (self.slow_disk >= 0 and self.slow_factor != 1.0)
                or self.fail_stop_disk >= 0
                or self.silent_range_count > 0)


class FaultPlan:
    """One drive's realised fault schedule, derived from ``(seed, disk)``.

    Attaching a plan to a :class:`~repro.disk.drive.Disk` disables the fused
    read fast path (errors and fail-slow stretching must take the unfused
    reference sequence, mirroring the destage-quiescence gate), so a drive
    with no plan is bit-identical to a drive built before this module
    existed.
    """

    __slots__ = ("seed", "disk_index", "transient_rate", "bad_ranges",
                 "slow_factor", "slow_start", "slow_end", "fail_stop_time",
                 "silent_ranges", "_rng")

    def __init__(self, config, seed, disk_index, total_sectors):
        self.seed = seed
        self.disk_index = disk_index
        self.transient_rate = float(config.transient_rate)
        self._rng = np.random.default_rng(
            np.random.SeedSequence([seed, disk_index, _FAULT_DOMAIN]))
        ranges = []
        if config.bad_range_count > 0:
            length = max(1, int(config.bad_range_sectors))
            highest = max(1, total_sectors - length)
            for start in sorted(self._rng.integers(
                    0, highest, size=config.bad_range_count)):
                start = int(start)
                ranges.append((start, min(start + length, total_sectors)))
        self.bad_ranges = tuple(ranges)
        # Silent ranges are drawn *after* bad ranges, and only when the count
        # is positive, so every pre-existing scenario's draw stream — bad
        # ranges and per-request transients — is byte-identical to plans
        # built before silent corruption existed.
        silent = []
        silent_count = getattr(config, "silent_range_count", 0)
        if silent_count > 0 and getattr(config, "silent_disk", -1) >= 0 \
                and config.silent_disk != disk_index:
            silent_count = 0
        if silent_count > 0:
            length = max(1, int(config.silent_range_sectors))
            highest = max(1, total_sectors - length)
            for start in sorted(self._rng.integers(
                    0, highest, size=silent_count)):
                start = int(start)
                silent.append((start, min(start + length, total_sectors)))
        self.silent_ranges = tuple(silent)
        if config.slow_disk == disk_index and config.slow_factor != 1.0:
            self.slow_factor = float(config.slow_factor)
            self.slow_start = float(config.slow_start)
            self.slow_end = float(config.slow_start) + float(config.slow_duration)
        else:
            self.slow_factor = 1.0
            self.slow_start = 0.0
            self.slow_end = 0.0
        self.fail_stop_time = float(config.fail_stop_time) \
            if config.fail_stop_disk == disk_index else None

    def failed_at(self, now):
        """Whether the drive has fail-stopped by simulated time *now*."""
        return self.fail_stop_time is not None and now >= self.fail_stop_time

    def media_error(self, request):
        """The error this request hits at the media, or None.

        The transient draw is taken for *every* request while the rate is
        positive — even ones that land on a bad range — so the draw stream
        depends only on the (deterministic) request order, never on which
        branch an earlier request took.
        """
        transient = (self.transient_rate > 0.0
                     and self._rng.random() < self.transient_rate)
        end = request.lbn + request.n_sectors
        for lo, hi in self.bad_ranges:
            if request.lbn < hi and lo < end:
                return BAD_SECTOR
        return TRANSIENT if transient else None

    def slow_multiplier(self, now):
        """Mechanical-time stretch factor at simulated time *now*."""
        if self.slow_factor != 1.0 and self.slow_start <= now < self.slow_end:
            return self.slow_factor
        return 1.0

    def silently_corrupts(self, request):
        """Whether this read returns flipped bytes without an error status.

        Pure overlap test — no RNG draw, so plans with silent ranges perturb
        nothing about the transient draw stream.
        """
        if not self.silent_ranges:
            return False
        end = request.lbn + request.n_sectors
        for lo, hi in self.silent_ranges:
            if request.lbn < hi and lo < end:
                return True
        return False

    def describe(self):
        """JSON-serialisable snapshot for the result envelope.

        The ``silent_ranges`` key appears only when the plan has any: result
        envelopes of pre-existing scenarios must stay byte-identical (the
        pinned digest matrix hashes them).
        """
        description = {
            "disk": self.disk_index,
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "bad_ranges": [list(r) for r in self.bad_ranges],
            "slow_factor": self.slow_factor,
            "slow_window": [self.slow_start, self.slow_end],
            "fail_stop_time": self.fail_stop_time,
        }
        if self.silent_ranges:
            description["silent_ranges"] = [list(r) for r in self.silent_ranges]
        return description


def build_fault_plan(config, seed, disk_index, total_sectors):
    """The :class:`FaultPlan` for one drive, or None when nothing targets it.

    Returning None (rather than an all-zero plan) is load-bearing: a drive
    without a plan keeps its fused read fast path and takes no per-request
    draws, so a zero-fault run is bit-identical to one built before fault
    injection existed.
    """
    if config is None or not config.enabled:
        return None
    plan = FaultPlan(config, seed, disk_index, total_sectors)
    if (plan.transient_rate <= 0.0 and not plan.bad_ranges
            and plan.slow_factor == 1.0 and plan.fail_stop_time is None
            and not plan.silent_ranges):
        return None
    return plan


@dataclass(frozen=True)
class FaultPolicy:
    """How failure-aware clients respond to an errored request.

    ``on_fault`` selects the strategy:

    * ``"retry"`` — retry :data:`TRANSIENT` errors with exponential backoff
      (``backoff_base * 2**attempt``), bounded by both ``max_attempts`` and a
      wall deadline measured from the first failure; exhaustion degrades.
    * ``"degrade"`` — no retries: every error immediately degrades the
      session (partial delivery, accounted in the session counters).
    * ``"abort"`` — raise :class:`FaultAbort`, failing the whole run.

    Permanent errors (:data:`BAD_SECTOR`, :data:`FAIL_STOP`) are never
    retried under any strategy.
    """

    on_fault: str = "retry"
    #: Total service attempts per block (first try + retries).
    max_attempts: int = 4
    #: Backoff before retry *n* (0-based) is ``backoff_base * 2**n`` seconds.
    backoff_base: float = 0.002
    #: Give up retrying once ``now - first_failure > deadline`` seconds.
    deadline: float = 0.25

    def __post_init__(self):
        if self.on_fault not in ("retry", "degrade", "abort"):
            raise ValueError(f"on_fault must be retry|degrade|abort, "
                             f"got {self.on_fault!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


class FaultAbort(Exception):
    """Raised (under ``on_fault='abort'``) when a request fails permanently."""


def retry_fragment(env, policy, attempt, on_retry=None):
    """Process fragment: run *attempt* under *policy*; returns the request.

    *attempt* is a no-argument callable that submits a fresh disk request
    and returns its completion event — every retry is a brand-new request.
    Transient errors are retried with exponential backoff
    (``backoff_base * 2**n`` before retry *n*), bounded by BOTH
    ``max_attempts`` and the deadline measured from the first failure;
    permanent errors are never retried.  The returned request may still be
    errored (the caller degrades); ``on_fault="abort"`` raises
    :class:`FaultAbort` instead.  *on_retry* is called once per retry (for
    session accounting).
    """
    request = yield attempt()
    if request.status == "ok" or policy is None:
        return request
    if policy.on_fault == "retry":
        first_failure = env.now
        tries = 1
        while (request.error not in PERMANENT_ERRORS
               and tries < policy.max_attempts):
            backoff = policy.backoff_base * (2 ** (tries - 1))
            if env.now + backoff > first_failure + policy.deadline:
                break
            yield env.timeout(backoff)
            if on_retry is not None:
                on_retry()
            tries += 1
            request = yield attempt()
            if request.status == "ok":
                return request
    if policy.on_fault == "abort":
        raise FaultAbort(
            f"disk request for lbn {request.lbn} failed ({request.error}) "
            f"under on_fault='abort'")
    return request


class BlockFault:
    """Delivered by the TC cache in place of data for an unreadable block."""

    __slots__ = ("block", "error")

    def __init__(self, block, error):
        self.block = block
        self.error = error

    def __repr__(self):
        return f"<BlockFault block={self.block} error={self.error}>"
