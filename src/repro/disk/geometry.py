"""Logical-block to physical-position mapping for a disk drive."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PhysicalPosition:
    """A physical location on the platters."""

    cylinder: int
    head: int
    sector: int


class DiskGeometry:
    """Maps logical block numbers (sectors) to cylinder/head/sector positions.

    The mapping is the conventional one: sectors are numbered within a track,
    tracks within a cylinder (one per head), cylinders from outer to inner.
    Zone-bit recording is not modelled (the HP 97560 had a constant number of
    sectors per track).
    """

    def __init__(self, spec):
        self.spec = spec
        self._sectors_per_cylinder = spec.sectors_per_track * spec.heads
        #: Total number of addressable sectors (a plain attribute: this is
        #: read on every request validation and service decision).
        self.total_sectors = spec.total_sectors

    def position_of(self, lbn):
        """Physical position of logical sector *lbn*."""
        self._check(lbn)
        cylinder, rest = divmod(lbn, self._sectors_per_cylinder)
        head, sector = divmod(rest, self.spec.sectors_per_track)
        return PhysicalPosition(cylinder=cylinder, head=head, sector=sector)

    def cylinder_of(self, lbn):
        """Cylinder containing logical sector *lbn* (cheaper than position_of)."""
        self._check(lbn)
        return lbn // self._sectors_per_cylinder

    def angular_sector_of(self, lbn):
        """Angular position (in sector units, within one revolution) of *lbn*.

        Accounts for track skew: consecutive tracks are rotated by
        ``track_skew_sectors`` so sequential transfers do not miss a
        revolution at every head switch.
        """
        self._check(lbn)
        spt = self.spec.sectors_per_track
        track_index = lbn // spt
        within_track = lbn % spt
        return (within_track + track_index * self.spec.track_skew_sectors) % spt

    def sectors_to_track_end(self, lbn):
        """Number of sectors from *lbn* to the end of its track (inclusive of lbn)."""
        self._check(lbn)
        within_track = lbn % self.spec.sectors_per_track
        return self.spec.sectors_per_track - within_track

    def track_boundaries_crossed(self, lbn, n_sectors):
        """How many track boundaries a transfer of *n_sectors* starting at *lbn* crosses."""
        if n_sectors <= 0:
            return 0
        first_track = lbn // self.spec.sectors_per_track
        last_track = (lbn + n_sectors - 1) // self.spec.sectors_per_track
        return last_track - first_track

    def _check(self, lbn):
        if lbn < 0 or lbn >= self.total_sectors:
            raise ValueError(
                f"logical block {lbn} out of range [0, {self.total_sectors})")
