"""The drive's on-board read-ahead cache.

After servicing a read, the HP 97560 keeps reading sequentially into its
cache.  A later request that falls inside the cached (or in-progress) range is
served without any mechanical positioning — this is the effect that makes the
paper's *contiguous* layout roughly five times faster than the random-blocks
layout, and it is why disk-directed I/O can reach ~93 % of the peak media rate.

The cache is modelled lazily: instead of simulating the read-ahead sector by
sector, we record when read-ahead started and compute, at query time, how far
the frontier has advanced at media rate.
"""


class ReadAheadCache:
    """State of the drive's sequential read-ahead."""

    def __init__(self, spec):
        self.spec = spec
        self._start_lbn = None      # first cached sector
        self._frontier_lbn = None   # first sector NOT yet read by read-ahead
        self._target_lbn = None     # read-ahead stops here
        self._frontier_time = None  # simulated time at which frontier was valid
        self.hits = 0
        self.misses = 0

    # -- queries -------------------------------------------------------------
    @property
    def active(self):
        """True if the cache currently holds (or is filling) a sequential run."""
        return self._start_lbn is not None

    def cached_range(self, now):
        """The (start, frontier) sector range available at time *now*."""
        if not self.active:
            return (0, 0)
        return (self._start_lbn, self._advance_frontier(now))

    def lookup(self, now, lbn, n_sectors):
        """Check whether ``[lbn, lbn+n_sectors)`` can be served from read-ahead.

        Returns ``(hit, ready_time)``: *hit* is True when the whole range lies
        within the cached run (or the part still being read ahead), and
        *ready_time* is the simulated time at which the last requested sector
        will be in the cache (never earlier than *now* minus nothing — it may
        be in the future if read-ahead has not reached it yet).
        """
        if not self.active:
            self.misses += 1
            return (False, now)
        frontier = self._advance_frontier(now)
        end = lbn + n_sectors
        within_run = (self._start_lbn <= lbn and end <= self._target_lbn)
        if not within_run:
            self.misses += 1
            return (False, now)
        self.hits += 1
        if end <= frontier:
            return (True, now)
        # Still being read ahead: it becomes available once the media head
        # reaches the last requested sector.
        remaining = end - frontier
        ready = now + remaining * self.spec.sector_time
        return (True, ready)

    # -- updates ---------------------------------------------------------------
    def start_readahead(self, now, after_lbn, total_sectors):
        """Begin (or restart) read-ahead immediately following *after_lbn*."""
        limit = min(after_lbn + self.spec.readahead_sectors, total_sectors)
        self._start_lbn = after_lbn
        self._frontier_lbn = after_lbn
        self._target_lbn = limit
        self._frontier_time = now

    def extend_after_hit(self, now, end_lbn, total_sectors):
        """After a cache hit ending at *end_lbn*, push the read-ahead target forward."""
        if not self.active:
            self.start_readahead(now, end_lbn, total_sectors)
            return
        new_target = min(end_lbn + self.spec.readahead_sectors, total_sectors)
        if new_target > self._target_lbn:
            self._target_lbn = new_target

    def invalidate(self):
        """Drop all cached data (a non-sequential access arrived)."""
        self._start_lbn = None
        self._frontier_lbn = None
        self._target_lbn = None
        self._frontier_time = None

    # -- internals ----------------------------------------------------------------
    def _advance_frontier(self, now):
        """Advance the frontier to account for media-rate read-ahead since last update."""
        if not self.active:
            return 0
        elapsed = max(0.0, now - self._frontier_time)
        sectors_read = int(elapsed / self.spec.sector_time)
        self._frontier_lbn = min(self._target_lbn, self._frontier_lbn + sectors_read)
        # Move the reference time forward by exactly the sectors we accounted
        # for, so fractional progress is not lost between calls.
        self._frontier_time += sectors_read * self.spec.sector_time
        if self._frontier_lbn >= self._target_lbn:
            self._frontier_time = max(self._frontier_time, now)
        return self._frontier_lbn

    def hit_rate(self):
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
