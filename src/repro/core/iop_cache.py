"""The per-IOP block cache used by traditional caching.

The cache follows the paper's description of the baseline system: LRU
replacement, one-block-ahead prefetch after each read request, and
write-behind that flushes a buffer once all of its bytes have been written.
It must also cope with many concurrent requesters: a block being fetched has
a ready-event that later requesters simply wait on, and eviction of a dirty
buffer forces its write-back first.

Buffers are keyed per (file, block), so one cache can serve requests against
several concurrently-open files — block 5 of one file and block 5 of another
are distinct buffers.  Every public method takes an optional ``file``
argument; omitting it uses the file bound at construction, preserving the
original single-file interface.

Per-session accounting: reads, prefetches and writes carry an optional
``session_id``.  Disk fetches are attributed to the session whose miss
issued them (later sessions coalescing onto the same fetch ride free), and
each buffer remembers *which* sessions' bytes it holds
(``dirty_by_session``), so :meth:`IOPCache.flush_session` can drain exactly
one collective's write-behind — to the media, via tracked writes — without
waiting on any other session's dirty volume.
"""

from dataclasses import dataclass, field
from itertools import count

from repro.disk.faults import BlockFault, retry_fragment
from repro.sim.events import Event, chain


#: entry states
EMPTY = "empty"
FETCHING = "fetching"
VALID = "valid"


@dataclass
class IOPCacheStats:
    """Counters for one IOP cache."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    prefetches_wasted: int = 0
    evictions: int = 0
    writebacks: int = 0
    full_flushes: int = 0

    def hit_rate(self):
        """Fraction of lookups that found the block already cached or in flight."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _CacheEntry:
    block: int
    file: object = None
    state: str = EMPTY
    ready: Event = None
    dirty_bytes: int = 0
    written_bytes: int = 0
    last_use: int = 0
    flushing: bool = False
    flush_event: Event = None
    was_prefetch: bool = False
    touched_after_prefetch: bool = False
    pins: int = 0
    #: session id -> bytes of this buffer's dirty data that session wrote;
    #: cleared when a write-back is registered (the sessions then wait on
    #: the write-back's media event instead).
    dirty_by_session: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


class IOPCache:
    """An LRU cache of file blocks for one I/O processor."""

    def __init__(self, env, iop, striped_file, disk_lookup, capacity_blocks,
                 sectors_per_block, stats=None, fault_policy=None,
                 session_lookup=None, checksums=False):
        """
        ``disk_lookup`` maps a global disk index to that IOP's local
        :class:`~repro.disk.drive.Disk` object.  ``striped_file`` is the
        default file for block arguments; it may be ``None`` when every call
        passes an explicit ``file``.

        ``fault_policy`` (a :class:`~repro.disk.faults.FaultPolicy`) governs
        fetch/write-back retries on a fault-injecting machine;
        ``session_lookup`` maps a session id to its live
        :class:`~repro.core.base.CollectiveSession` so retries and lost
        write-back bytes are counted against the owning session (either may
        be None on a healthy machine).
        """
        if capacity_blocks < 1:
            raise ValueError(f"cache needs at least one block, got {capacity_blocks}")
        self.env = env
        self.iop = iop
        self.file = striped_file
        self.disk_lookup = disk_lookup
        self.capacity = capacity_blocks
        self.sectors_per_block = sectors_per_block
        self.fault_policy = fault_policy
        self.session_lookup = session_lookup
        #: Verify per-block checksums on every fetch (end-to-end integrity);
        #: a corrupt payload is then never cached — it is parity-repaired
        #: through the handle's ``repair`` method when the machine has
        #: redundancy, or surfaced as a :class:`BlockFault` otherwise.
        self.checksums = checksums
        self.stats = stats if stats is not None else IOPCacheStats()
        self._entries = {}
        #: misses that have been accepted but whose buffer/disk work has not
        #: finished yet, registered synchronously so concurrent requests for
        #: the same block coalesce onto one disk read.
        self._inflight = {}
        #: session id -> media-completion events of write-backs carrying that
        #: session's bytes; consumed (and dropped) by :meth:`flush_session`.
        self._session_media = {}
        self._use_clock = count()
        self._space_waiters = []

    # -- keys ----------------------------------------------------------------------
    def _file_of(self, file):
        target = file if file is not None else self.file
        if target is None:
            raise ValueError("no file bound to this cache: pass file= explicitly")
        return target

    def _key(self, block, file):
        return (id(file), block)

    # -- queries --------------------------------------------------------------------
    def __contains__(self, block):
        if self.file is None:
            return False  # no default file bound; use contains(block, file)
        return self._key(block, self.file) in self._entries

    def contains(self, block, file=None):
        """Whether (*file*, *block*) currently has a buffer."""
        return self._key(block, self._file_of(file)) in self._entries

    def __len__(self):
        return len(self._entries)

    @property
    def dirty_blocks(self):
        """Blocks (across all files) with bytes not yet written to disk."""
        return [entry.block for entry in self._entries.values()
                if entry.dirty_bytes > 0]

    def _dirty_entries(self):
        # A write-back in flight zeroed dirty_bytes at registration but the
        # data is not on disk yet; flush_all must still wait for it.
        return [entry for entry in self._entries.values()
                if entry.dirty_bytes > 0 or entry.flushing]

    # -- read path --------------------------------------------------------------------
    def acquire_for_read(self, block, prefetch=False, file=None, session_id=None):
        """Event that fires when *block*'s data is in the cache.

        A miss allocates a buffer (evicting if needed) and issues the disk
        read, attributed to *session_id* (the session whose request missed;
        sessions that later coalesce onto the same fetch are not charged).
        ``prefetch=True`` marks the fetch as speculative for the
        prefetch-accuracy statistics.
        """
        striped_file = self._file_of(file)
        key = self._key(block, striped_file)
        self.stats.lookups += 1
        if key in self._inflight:
            self.stats.hits += 1
            return self._inflight[key]
        entry = self._entries.get(key)
        if entry is not None and entry.state in (FETCHING, VALID):
            self.stats.hits += 1
            self._touch(entry)
            if entry.was_prefetch and not entry.touched_after_prefetch and not prefetch:
                entry.touched_after_prefetch = True
                self.stats.prefetches_used += 1
            if entry.state == VALID:
                ready = Event(self.env)
                ready.succeed()
                return ready
            return entry.ready
        self.stats.misses += 1
        ready = Event(self.env)
        self._inflight[key] = ready
        self.env.process(
            self._fetch(block, striped_file, ready, prefetch,
                        session_id=session_id))
        return ready

    def try_prefetch(self, block, file=None):
        """Prefetch *block* if it is absent and a buffer is free without eviction.

        The paper's cache prefetches one block ahead after every read request;
        we skip the prefetch rather than evict for it, which is both safer
        (no deadlock on a full cache) and kind to the workload.  The
        speculative read is deliberately *not* attributed to any session:
        like write-buffer destage it is the IOP's own background work, and
        an attributed prefetch could land at the drive after its triggering
        session completed and its accounting was released.
        """
        striped_file = self._file_of(file)
        if block < 0 or block >= striped_file.n_blocks:
            return False
        key = self._key(block, striped_file)
        if key in self._entries or key in self._inflight:
            return False
        if len(self._entries) >= self.capacity:
            return False
        self.stats.prefetches_issued += 1
        ready = Event(self.env)
        self._inflight[key] = ready
        self.env.process(self._fetch(block, striped_file, ready,
                                     was_prefetch=True))
        return True

    def _fetch(self, block, striped_file, ready, was_prefetch=False,
               session_id=None):
        entry = yield from self._allocate(block, striped_file)
        entry.state = FETCHING
        entry.ready = ready
        entry.was_prefetch = was_prefetch
        location = striped_file.location(block)
        disk = self.disk_lookup(location.disk_index)
        request = yield from retry_fragment(
            self.env, self.fault_policy,
            lambda: disk.read(location.lbn, self.sectors_per_block,
                              session_id=session_id),
            self._count_retry(session_id))
        if self.checksums and request.status == "ok" and request.corrupt:
            # End-to-end integrity: the checksum over the fetched payload
            # does not match.  Count the detection, then reconstruct from
            # parity when the handle supports it; without redundancy the
            # fetch degrades to a BlockFault below — never a poisoned
            # VALID entry serving corrupt hits.
            self._count_scrub(session_id)
            repair = getattr(disk, "repair", None)
            if repair is not None:
                request = yield repair(location.lbn, self.sectors_per_block,
                                       session_id=session_id)
            else:
                request.status = "error"
                request.error = "checksum"
        if request.status != "ok":
            # Permanently unreadable: drop the buffer rather than leave a
            # poisoned VALID entry serving garbage hits.  A FETCHING entry
            # is never picked as an eviction victim, so nobody else owns
            # it.  Every waiter coalesced onto this fetch receives a
            # BlockFault instead of data and accounts its own failure.
            key = self._key(block, striped_file)
            self._entries.pop(key, None)
            self._inflight.pop(key, None)
            if not ready.triggered:
                ready.succeed(BlockFault(block, request.error))
            self._notify_space()
            return
        entry.state = VALID
        self._inflight.pop(self._key(block, striped_file), None)
        if not ready.triggered:
            ready.succeed()
        self._notify_space()

    # -- write path --------------------------------------------------------------------
    def acquire_for_write(self, block, file=None):
        """Event firing when a buffer for *block* is available to receive data.

        Traditional caching does not read-modify-write: partial writes simply
        accumulate in the buffer (the paper flushes once *n* bytes have been
        written to an *n*-byte buffer).
        """
        striped_file = self._file_of(file)
        key = self._key(block, striped_file)
        self.stats.lookups += 1
        if key in self._inflight:
            self.stats.hits += 1
            return self._inflight[key]
        entry = self._entries.get(key)
        ready = Event(self.env)
        if entry is not None:
            self.stats.hits += 1
            self._touch(entry)
            ready.succeed()
            return ready
        self.stats.misses += 1
        self._inflight[key] = ready
        self.env.process(self._allocate_for_write(block, striped_file, ready))
        return ready

    def _allocate_for_write(self, block, striped_file, ready):
        entry = yield from self._allocate(block, striped_file)
        entry.state = VALID
        self._inflight.pop(self._key(block, striped_file), None)
        if not ready.triggered:
            ready.succeed()

    def pin(self, block, file=None):
        """Protect (*file*, *block*) from eviction; False if it is not resident.

        A write handler pins the buffer between allocation and
        :meth:`record_write`, closing the window where cache pressure could
        evict the buffer and silently drop the written bytes.
        """
        entry = self._entries.get(self._key(block, self._file_of(file)))
        if entry is None:
            return False
        entry.pins += 1
        return True

    def unpin(self, block, file=None):
        """Release one pin on (*file*, *block*)."""
        entry = self._entries.get(self._key(block, self._file_of(file)))
        if entry is None or entry.pins <= 0:
            return
        entry.pins -= 1
        if entry.pins == 0:
            # An allocation may be waiting for an evictable victim.
            self._notify_space()

    def record_write(self, block, n_bytes, block_size, file=None, session_id=None):
        """Account *n_bytes* written into *block*'s buffer; True when it is full.

        *session_id* marks whose bytes now sit in the buffer, so
        :meth:`flush_session` can later drain exactly that session's
        write-behind.  If the buffer was evicted (written back) between
        allocation and this call — possible under extreme cache pressure —
        the bytes are simply treated as already flushed and False is
        returned.
        """
        entry = self._entries.get(self._key(block, self._file_of(file)))
        if entry is None:
            self.stats.extra_lost_buffers = getattr(self.stats, "extra_lost_buffers", 0) + 1
            return False
        entry.dirty_bytes = min(block_size, entry.dirty_bytes + n_bytes)
        entry.written_bytes += n_bytes
        if session_id is not None:
            entry.dirty_by_session[session_id] = \
                entry.dirty_by_session.get(session_id, 0) + n_bytes
        self._touch(entry)
        return entry.written_bytes >= block_size

    def flush_block(self, block, file=None):
        """Event firing when *block*'s dirty data has reached its disk."""
        entry = self._entries.get(self._key(block, self._file_of(file)))
        return self._flush_entry(entry)

    def _register_writeback(self, entry):
        """Synchronously book a write-back for *entry*; returns its events.

        Creates the (accepted, media) placeholder pair, files the media
        event under every session whose bytes the buffer holds (so
        :meth:`flush_session` finds it even though the disk request is
        issued later, inside the write-back process), and returns
        ``(done, media, owner)`` where *owner* is the session the disk
        write is attributed to (the buffer's first writer — an
        approximation when several sessions share one block).

        The write-back *owns* the buffer's dirty bytes from this moment:
        ``dirty_bytes`` and ``dirty_by_session`` are reset here, so bytes
        recorded while the disk write is in flight accumulate from zero and
        stay dirty for a follow-up write-back instead of being wiped when
        this one lands.
        """
        done = Event(self.env)
        media = Event(self.env)
        owner = next(iter(entry.dirty_by_session), None)
        for session_id in entry.dirty_by_session:
            self._session_media.setdefault(session_id, []).append(media)
        entry.dirty_by_session = {}
        entry.dirty_bytes = 0
        return done, media, owner

    def _flush_entry(self, entry):
        if entry is not None and entry.flushing and entry.flush_event is not None:
            # A write-back is already under way; wait for that one.
            return entry.flush_event
        if entry is None or entry.dirty_bytes == 0:
            done = Event(self.env)
            done.succeed()
            return done
        # Mark the write-back as in flight *before* the process gets a chance
        # to run, so a concurrent flush_all() waits for it instead of issuing
        # a duplicate disk write.
        done, media, owner = self._register_writeback(entry)
        entry.flushing = True
        entry.flush_event = done
        self.env.process(self._writeback(entry, done, media, owner))
        return done

    def flush_all(self):
        """Event firing when every dirty block (of every file) is written back.

        "Written back" means accepted by the drive (write-cache semantics);
        pair with ``Disk.flush`` to wait for the media, or use
        :meth:`flush_session` for a per-collective media-level drain.
        """
        events = [self._flush_entry(entry) for entry in self._dirty_entries()]
        done = Event(self.env)
        if not events:
            done.succeed()
            return done
        gate = self.env.all_of(events)

        def _finish(_event):
            if not done.triggered:
                done.succeed()
        gate.callbacks.append(_finish)
        return done

    def flush_session(self, session_id):
        """Event firing when every byte *session_id* wrote has reached the media.

        Triggers write-backs for the buffers still holding this session's
        dirty bytes and waits for the media completion of every write-back
        that ever carried them (including full-buffer flushes issued
        mid-run).  Repeats until clean: bytes this session recorded while
        one of its buffers was already being written back stay dirty and
        are picked up by a follow-up write-back on the next pass.  Other
        sessions' dirty volume is *not* waited on — one collective's
        completion is decoupled from its neighbours' write-behind.
        """
        done = Event(self.env)
        self.env.process(self._flush_session_process(session_id, done))
        return done

    def _flush_session_process(self, session_id, done):
        while True:
            flushes = [self._flush_entry(entry)
                       for entry in list(self._entries.values())
                       if session_id in entry.dirty_by_session]
            media = self._session_media.pop(session_id, [])
            if not flushes and not media:
                break
            for event in flushes + media:
                yield event
            # Re-check: an in-flight write-back we waited on may have left
            # this session's late-arriving bytes dirty.
        if not done.triggered:
            done.succeed()

    def _writeback(self, entry, done, media, owner=None):
        entry.flushing = True
        entry.flush_event = done
        self.stats.writebacks += 1
        location = entry.file.location(entry.block)
        disk = self.disk_lookup(location.disk_index)
        if self.fault_policy is None:
            # Healthy path, kept verbatim: the media placeholder is chained
            # before the first yield so the unfaulted event sequence is
            # bit-identical to the pre-fault implementation.
            accepted, on_media = disk.write_tracked(
                location.lbn, self.sectors_per_block, session_id=owner)
            chain(on_media, media)
            yield accepted
        else:
            media_box = []

            def attempt():
                accepted, on_media = disk.write_tracked(
                    location.lbn, self.sectors_per_block, session_id=owner)
                media_box.append(on_media)
                return accepted
            request = yield from retry_fragment(
                self.env, self.fault_policy, attempt,
                self._count_retry(owner))
            if request.status == "ok":
                # Only the successful attempt's media event stands for this
                # write-back; earlier failed attempts already fired theirs.
                chain(media_box[-1], media)
            else:
                # The data is lost at the drive.  Fire the placeholder
                # anyway (carrying the errored request) so flush_session /
                # flush_all never hang on a dead drive, and account the
                # loss to the buffer's owning session.
                self._record_write_loss(owner)
                if not media.triggered:
                    media.succeed(request)
        # dirty_bytes is NOT reset here: _register_writeback took ownership
        # of the bytes this write covers, so whatever is dirty now arrived
        # while the write was in flight and waits for the next write-back.
        entry.flushing = False
        entry.flush_event = None
        if not done.triggered:
            done.succeed()
        self._notify_space()

    # -- fault accounting -------------------------------------------------------------
    def _count_retry(self, session_id):
        """A per-retry callback charging *session_id*, or None."""
        if self.session_lookup is None or session_id is None:
            return None
        def on_retry():
            session = self.session_lookup(session_id)
            if session is not None:
                session.count("retries")
        return on_retry

    def _count_scrub(self, session_id):
        """Count one checksum-detected corrupt fetch against its session."""
        if self.session_lookup is None or session_id is None:
            return
        session = self.session_lookup(session_id)
        if session is not None:
            session.count("scrub_errors")

    def _record_write_loss(self, session_id):
        """Account one lost write-back buffer against its owning session."""
        if self.session_lookup is None or session_id is None:
            return
        session = self.session_lookup(session_id)
        if session is None:
            return
        session.count("failed_blocks")
        session.count("lost_bytes", self.sectors_per_block * 512)
        if session.counters["degraded"].value == 0:
            session.count("degraded")

    # -- allocation / eviction -------------------------------------------------------
    def _allocate(self, block, striped_file):
        """Process fragment returning a resident entry for *block* (evicting if needed)."""
        key = self._key(block, striped_file)
        while True:
            existing = self._entries.get(key)
            if existing is not None:
                self._touch(existing)
                return existing
            if len(self._entries) < self.capacity:
                entry = _CacheEntry(block=block, file=striped_file)
                self._touch(entry)
                self._entries[key] = entry
                return entry
            victim = self._pick_victim()
            if victim is None:
                waiter = Event(self.env)
                self._space_waiters.append(waiter)
                yield waiter
                continue
            if victim.dirty_bytes > 0:
                done, media, owner = self._register_writeback(victim)
                yield from self._writeback(victim, done, media, owner)
            victim_key = self._key(victim.block, victim.file)
            # Re-check pins too: a writer may have pinned the victim while
            # its writeback was in flight, and evicting it now would drop the
            # bytes that writer is about to record.
            if victim_key in self._entries and victim.state != FETCHING \
                    and victim.dirty_bytes == 0 and victim.pins == 0:
                if victim.was_prefetch and not victim.touched_after_prefetch:
                    self.stats.prefetches_wasted += 1
                del self._entries[victim_key]
                self.stats.evictions += 1
            # Loop: re-check capacity (another process may have raced us).

    def _pick_victim(self):
        candidates = [entry for entry in self._entries.values()
                      if entry.state == VALID and not entry.flushing and entry.pins == 0]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    def _touch(self, entry):
        entry.last_use = next(self._use_clock)

    def _notify_space(self):
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
