"""Results of one collective transfer."""

from dataclasses import dataclass, field

#: The paper reports throughput in "Mbytes/s" with the disks' aggregate peak
#: quoted as 37.5 = 16 x 2.34; that arithmetic only works with 2^20-byte
#: megabytes, so we use the same unit.
MEGABYTE = float(2 ** 20)


@dataclass
class TransferResult:
    """Outcome and statistics of one collective read or write."""

    method: str
    pattern_name: str
    layout_name: str
    file_size: int
    record_size: int
    n_cps: int
    n_iops: int
    n_disks: int
    start_time: float
    end_time: float
    bytes_transferred: int
    counters: dict = field(default_factory=dict)

    @property
    def elapsed(self):
        """Total simulated transfer time in seconds (includes write-behind)."""
        return self.end_time - self.start_time

    @property
    def aggregate_throughput(self):
        """Bytes per second actually moved (counts each copy for ``ra``)."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_transferred / self.elapsed

    @property
    def throughput(self):
        """File bytes per second, normalised the way the paper plots it.

        For the ``ra`` pattern the paper divides by the number of CPs (each CP
        receives the whole file); since ``bytes_transferred`` counts every
        copy, normalising by the file size achieves exactly that.
        """
        if self.elapsed <= 0:
            return 0.0
        return self.file_size / self.elapsed

    @property
    def throughput_mb(self):
        """Normalised throughput in the paper's Mbytes/s."""
        return self.throughput / MEGABYTE

    @property
    def aggregate_throughput_mb(self):
        """Aggregate throughput in Mbytes/s."""
        return self.aggregate_throughput / MEGABYTE

    def summary(self):
        """One-line, human-readable summary."""
        return (f"{self.method:12s} {self.pattern_name:4s} {self.layout_name:10s} "
                f"{self.throughput_mb:6.2f} MB/s in {self.elapsed:.3f} s")

    def as_dict(self):
        """Flatten to a plain dictionary (for CSV/report output)."""
        data = {
            "method": self.method,
            "pattern": self.pattern_name,
            "layout": self.layout_name,
            "file_size": self.file_size,
            "record_size": self.record_size,
            "n_cps": self.n_cps,
            "n_iops": self.n_iops,
            "n_disks": self.n_disks,
            "elapsed": self.elapsed,
            "throughput_mb": self.throughput_mb,
        }
        data.update({f"counter_{key}": value for key, value in self.counters.items()})
        return data
