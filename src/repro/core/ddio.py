"""Disk-directed I/O (Figure 1c): the paper's contribution.

The compute processors synchronise at a barrier, then one of them multicasts
a single collective request to every I/O processor.  Each IOP independently
determines which blocks of the file live on its disks, optionally presorts
each disk's block list by physical location, and runs two buffer threads per
disk.  Each buffer thread repeatedly takes the next block from the disk's
list, reads it (or gathers it from the CPs with Memget for writes), and moves
the per-CP pieces directly between IOP buffer and CP memory with Memput /
Memget remote-memory operations.  When an IOP finishes all of its blocks it
notifies the requesting CP; a final barrier ends the collective operation.

Concurrency: the IOP server loop accepts a new collective request as soon as
the previous one's handler is spawned, so several collectives (tagged by
session id, each with its own per-disk buffer pool) can be in flight at one
IOP at a time.  They contend for the IOP CPU, the SCSI bus and the disk
queues — exactly the contention a service-style workload is about.

Cross-collective scheduling: when the machine is built with
``disk_scheduler="shared-cscan"`` (or another ``shared-`` policy), the IOP
does not run per-session buffer threads over per-session presorted lists.
Instead it submits every block of every active collective into the drive's
:class:`~repro.disk.shared_queue.SharedDiskQueue`, whose worker pool services
the merged queue in elevator order.  With one collective the behaviour
matches the presorted list; with several, the IOP keeps the single-sweep
order the paper's presort buys at K=1 — per-session sorted streams would
otherwise interleave at the drive and thrash the arm (see
``docs/scheduling.md``).

Fidelity note: every Memput/Memget between an IOP and one CP for one block is
simulated as a single event charged ``setup + n_pieces * per_piece`` CPU time
plus the wire time of the actual bytes.  This matches the cost of the paper's
per-piece messages without creating one simulation event per 8-byte record
(see DESIGN.md, substitution table).
"""

from repro.core.base import CollectiveFileSystem
from repro.disk.drive import READ, WRITE
from repro.network.message import HEADER_BYTES, Message, MessageKind
from repro.sim.events import AllOf
from repro.sim.sync import Barrier


class DiskDirectedFS(CollectiveFileSystem):
    """Disk-directed collective I/O."""

    method_name = "disk-directed"

    #: base mailbox tag for collective requests arriving at IOPs
    REQUEST_TAG = "ddio-request"
    #: base mailbox tag for completion notifications arriving at the proxy CP
    DONE_TAG = "ddio-done"

    def __init__(self, machine, striped_file=None, presort=True, buffers_per_disk=2,
                 fault_policy=None, collapse_single_piece=True, checksums=False):
        super().__init__(machine, striped_file, fault_policy=fault_policy,
                         checksums=checksums)
        if buffers_per_disk < 1:
            raise ValueError("need at least one buffer per disk")
        self.presort = presort
        self.buffers_per_disk = buffers_per_disk
        #: Run single-piece Memput/Memget inline instead of spawning a
        #: Process + AllOf per piece (see :meth:`_deliver_to_cps` for the
        #: equivalence argument).  The knob exists only so the pin test can
        #: compare both paths bit-for-bit.
        self.collapse_single_piece = collapse_single_piece
        #: cross-collective IOP scheduling: block lists are merged into each
        #: drive's SharedDiskQueue instead of running per-session buffer
        #: threads.  The queue's worker pool plays the buffer-thread role
        #: for every collective, so ``buffers_per_disk`` does not apply —
        #: size the pool with ``Machine(shared_queue_workers=...)``.
        self.use_shared_queues = machine.iop_scheduling is not None
        self.method_name = "disk-directed" if presort else "disk-directed-nosort"
        #: Requests for this instance only; lets several file-system
        #: instances coexist on one machine without stealing each other's mail.
        self.request_tag = (self.REQUEST_TAG, self.fs_id)
        self.env.process(self._iop_server_loop_all())

    def _done_tag(self, session):
        """Completion notifications are routed per collective."""
        return (self.DONE_TAG, session.session_id)

    # -- transfer orchestration ---------------------------------------------------------
    def _start_transfer(self, session):
        barrier = Barrier(self.env, self.config.n_cps,
                          name=f"ddio-barrier-{session.session_id}")
        cp_processes = [
            self.env.process(self._cp_worker(cp_index, session, barrier))
            for cp_index in range(self.config.n_cps)
        ]
        return self.env.process(self._finish(cp_processes))

    def _finish(self, cp_processes):
        yield AllOf(self.env, cp_processes)

    # -- compute-processor side -----------------------------------------------------------
    def _cp_worker(self, cp_index, session, barrier):
        """All CPs arrange their buffers, barrier, and CP 0 drives the request."""
        cp_node = self.machine.cps[cp_index]
        # "Arrange for incoming data to be stored at the destination address":
        # a little local setup before the barrier.
        yield from self._charge_cpu(cp_node, self.costs.cp_request_overhead)
        yield barrier.wait()
        if cp_index == 0:
            yield from self._multicast_request(cp_node, session)
            yield from self._await_completions(cp_node, session)
        # Final barrier: everybody waits until the I/O is complete.
        yield barrier.wait()

    def _multicast_request(self, cp_node, session):
        """CP 0 sends the collective request to every IOP."""
        for iop in self.machine.iops:
            yield from self._charge_cpu(cp_node, self.costs.message_overhead)
            message = Message(
                kind=MessageKind.COLLECTIVE_REQUEST,
                src=cp_node.node_id,
                dst=iop.node_id,
                data_bytes=0,
                payload=session,
                session_id=session.session_id,
            )
            yield from self.machine.network.send(
                message, iop.mailbox, tag=self.request_tag)
            session.count("cp_requests")

    def _await_completions(self, cp_node, session):
        done_tag = self._done_tag(session)
        for _ in range(self.config.n_iops):
            yield cp_node.mailbox.receive(done_tag)
        # The tag is per-session and now fully drained; drop its queue so a
        # long request stream does not leak one dead Store per collective.
        cp_node.mailbox.discard(done_tag)

    # -- I/O-processor side -----------------------------------------------------------------
    def _iop_server_loop_all(self):
        """Start a permanent server loop on every IOP (lazily, at construction)."""
        for iop in self.machine.iops:
            self.env.process(self._iop_server(iop))
        return
        yield  # pragma: no cover - keeps this a generator for env.process symmetry

    def _iop_server(self, iop):
        while True:
            message = yield iop.mailbox.receive(self.request_tag)
            session = message.payload
            session.count("iop_messages")
            yield from self._charge_cpu(
                iop, self.costs.message_overhead + self.costs.collective_request_overhead)
            # Spawn without waiting: the server immediately listens for the
            # next collective, multiplexing several in-flight sessions.
            self.env.process(self._serve_collective(iop, message))

    def _serve_collective(self, iop, message):
        session = message.payload
        striped_file = session.file
        requesting_cp = self.machine.node(message.src)

        # Determine the local block list of each local disk, with physical
        # addresses, and charge the (small) per-block computation cost.
        # Under cross-collective IOP scheduling the per-session list sort is
        # pointless (the shared queue orders dispatch), but the ordering
        # WORK does not vanish — it moves into the elevator's per-dispatch
        # selection — so the per-block sorting cost is charged either way,
        # keeping the fcfs-vs-shared comparison CPU-fair.
        sort_lists = self.presort and not self.use_shared_queues
        disk_work = []
        total_blocks = 0
        for local_position, handle in enumerate(iop.disk_handles):
            global_index = iop.disk_indices[local_position]
            blocks = striped_file.blocks_on_disk(global_index)
            entries = [(block, striped_file.location(block).lbn) for block in blocks]
            if sort_lists:
                entries.sort(key=lambda entry: entry[1])
            disk_work.append((handle, entries))
            total_blocks += len(entries)
        setup_cost = total_blocks * self.costs.ddio_block_overhead
        if self.presort:
            setup_cost += total_blocks * self.costs.presort_per_block_overhead
        yield from self._charge_cpu(iop, setup_cost)

        write_behind = []   # media-completion events of this collective's writes
        if self.use_shared_queues:
            # Merge this collective's whole block list into each drive's
            # shared queue; its worker pool is the buffer-thread pool for
            # every active collective, so the elevator sees all sessions.
            block_jobs = []
            for queue, entries in disk_work:
                for block, lbn in entries:
                    block_jobs.append(queue.submit(
                        lbn,
                        self._shared_block_job(
                            iop, queue.disk, block, lbn, session, write_behind),
                        session_id=session.session_id,
                        op=READ if session.pattern.is_read else WRITE,
                    ))
            if block_jobs:
                yield AllOf(self.env, block_jobs)
        else:
            # A buffer pool per collective: two buffer threads per disk
            # stream blocks between disk and CPs for this session only.
            threads = []
            for disk, entries in disk_work:
                shared = {"entries": entries, "next": 0}
                for _buffer in range(self.buffers_per_disk):
                    threads.append(self.env.process(self._buffer_thread(
                        iop, disk, shared, session, write_behind)))
            if threads:
                yield AllOf(self.env, threads)
        if write_behind:
            # Drain this collective's write-behind only.  Waiting on a whole-
            # disk flush here would couple concurrent collectives: a session
            # could not complete while another kept the drive's buffer busy.
            yield AllOf(self.env, write_behind)

        # Tell the requesting CP this IOP is done with this collective.
        yield from self._charge_cpu(iop, self.costs.message_overhead)
        done = Message(
            kind=MessageKind.COLLECTIVE_DONE,
            src=iop.node_id,
            dst=requesting_cp.node_id,
            data_bytes=0,
            session_id=session.session_id,
        )
        yield from self.machine.network.send(
            done, requesting_cp.mailbox, tag=self._done_tag(session))

    def _shared_block_job(self, iop, disk, block, lbn, session, write_behind):
        """Job moving one block, run by the shared queue's worker pool.

        The returned generator function executes at the block's turn in the
        merged elevator order; the disk request goes straight to the drive
        (the worker slot *is* the scheduling grant — re-queueing it would
        deadlock).
        """
        def job():
            yield from self._move_block(
                iop, disk, block, lbn, session, write_behind)
        return job

    def _buffer_thread(self, iop, disk, shared, session, write_behind):
        """One of the (two) per-disk buffer threads: move blocks until none remain."""
        while True:
            position = shared["next"]
            if position >= len(shared["entries"]):
                return
            shared["next"] = position + 1
            block, lbn = shared["entries"][position]
            yield from self._move_block(
                iop, disk, block, lbn, session, write_behind)

    def _move_block(self, iop, disk, block, lbn, session, write_behind):
        """Move one block between *disk* and the CPs for *session*.

        The fault path: each disk request is wrapped in
        :meth:`~repro.core.base.CollectiveFileSystem._fault_retry` (each
        retry submits a brand-new request).  A read that still fails after
        retries delivers nothing for this block — the session degrades and
        the undelivered bytes are accounted so conservation
        (``bytes_moved + failed_bytes == requested``) holds.  A write that
        fails is data the CPs already shipped: it counts as ``lost_bytes``
        (moved but never durable), and only the *successful* attempt's
        media-completion event joins ``write_behind``.
        """
        pattern = session.pattern
        sectors_per_block = self.config.sectors_per_block
        pieces = pattern.pieces_in_block(block, session.file.block_size)
        if pattern.is_read:
            request = yield from self._fault_retry(
                session,
                lambda: disk.read(lbn, sectors_per_block, tag=block,
                                  session_id=session.session_id))
            # End-to-end integrity: with checksums on, a corrupt payload is
            # caught here (and parity-repaired when the machine has
            # redundancy); otherwise it falls through as a failed read.
            request = yield from self._verify_read(session, disk, request)
            if request.status != "ok":
                self._record_read_failure(
                    session, sum(piece.n_bytes for piece in pieces))
                return
            yield from self._deliver_to_cps(iop, pieces, session)
        else:
            yield from self._gather_from_cps(iop, pieces, session)
            media_box = []

            def attempt():
                accepted, on_media = disk.write_tracked(
                    lbn, sectors_per_block, tag=block,
                    session_id=session.session_id)
                media_box.append(on_media)
                return accepted
            request = yield from self._fault_retry(session, attempt)
            if request.status != "ok":
                self._record_write_loss(
                    session, sum(piece.n_bytes for piece in pieces))
                return
            write_behind.append(media_box[-1])

    # -- remote-memory operations ----------------------------------------------------------
    def _deliver_to_cps(self, iop, pieces, session):
        """Memput the per-CP pieces of one block, concurrently to all CPs.

        Single-piece blocks run the Memput inline (``yield from``) instead
        of spawning a Process + AllOf.  Equivalence argument (PR 5 style):
        spawning defers the child's first step by one same-instant ring hop
        and resumes the parent through AllOf one hop after the child
        finishes; inlining runs the same event sequence starting at
        parent-resume time.  Both orderings issue the piece's CPU charge and
        wire transfer at the same simulated instants because nothing else in
        this session can run between the parent's resume and the child's
        first step (the block's data dependency serialises them), and
        cross-session interleavings only shift *which* same-instant ring slot
        the charge occupies — the acquire/transfer times are identical.  The
        ``collapse_single_piece=False`` knob preserves the spawning path so
        ``tests/core/test_memput_collapse.py`` can pin both bit-identical.
        """
        if self.collapse_single_piece and len(pieces) == 1:
            yield from self._memput(iop, pieces[0], session)
            return
        transfers = [self.env.process(self._memput(iop, piece, session))
                     for piece in pieces]
        if transfers:
            yield AllOf(self.env, transfers)

    def _gather_from_cps(self, iop, pieces, session):
        """Memget the per-CP pieces of one block, concurrently from all CPs.

        Single-piece blocks inline the Memget; see :meth:`_deliver_to_cps`
        for the same-instant equivalence argument.
        """
        if self.collapse_single_piece and len(pieces) == 1:
            yield from self._memget(iop, pieces[0], session)
            return
        transfers = [self.env.process(self._memget(iop, piece, session))
                     for piece in pieces]
        if transfers:
            yield AllOf(self.env, transfers)

    def _memput(self, iop, piece, session):
        """Move one CP's share of a block from IOP memory into CP memory.

        This is the per-piece hot path (one call per CP per block): the CPU
        charge is inlined on the uncontended-acquire fast path instead of
        delegating through ``_charge_cpu``'s generator.
        """
        costs = self.costs
        cp_node = self.machine.cps[piece.cp]
        cpu_time = costs.memput_setup_overhead + piece.n_pieces * costs.per_piece_overhead
        if cpu_time > 0:
            charge = iop.cpu.acquire_event(cpu_time)
            if charge is None:
                yield from iop.cpu.acquire(cpu_time)
            else:
                yield charge
        yield from self.machine.network.transfer(
            iop.node_id, cp_node.node_id, HEADER_BYTES + piece.n_bytes)
        session.count("bytes_moved", piece.n_bytes)

    def _memget(self, iop, piece, session):
        """Ask one CP for its share of a block and receive the data (DMA round trip)."""
        costs = self.costs
        cp_node = self.machine.cps[piece.cp]
        cpu_time = costs.memput_setup_overhead + piece.n_pieces * costs.per_piece_overhead
        if cpu_time > 0:
            charge = iop.cpu.acquire_event(cpu_time)
            if charge is None:
                yield from iop.cpu.acquire(cpu_time)
            else:
                yield charge
        # Memget request (header only) ...
        yield from self.machine.network.transfer(
            iop.node_id, cp_node.node_id, HEADER_BYTES)
        # ... and the CP's DMA engine replies with the data.
        yield from self.machine.network.transfer(
            cp_node.node_id, iop.node_id, HEADER_BYTES + piece.n_bytes)
        session.count("bytes_moved", piece.n_bytes)
