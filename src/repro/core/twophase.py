"""Two-phase I/O (Figure 1b) — an extension beyond the paper's simulations.

The paper describes two-phase I/O (del Rosario, Bordawekar & Choudhary) as the
state of the art it improves upon, but does not simulate it.  We provide it as
an extension so the comparison in Section 7.1 can be made quantitative:

* Phase 1 (reads): the CPs read the file in a *conforming distribution* —
  contiguous, block-aligned ranges, one per CP — using the unchanged
  traditional-caching IOP software.
* Phase 2: the CPs permute the data among themselves over the interconnect so
  every record ends up at the CP the requested distribution assigns it to.

For writes the phases run in the opposite order.  Barriers separate the
phases, exactly as in the paper's pseudo-code.
"""

import numpy as np

from repro.core.traditional import TraditionalCachingFS
from repro.sim.events import AllOf
from repro.sim.sync import Barrier


class TwoPhaseFS(TraditionalCachingFS):
    """Two-phase collective I/O on top of the traditional-caching substrate."""

    method_name = "two-phase"

    def __init__(self, machine, striped_file=None, **kwargs):
        super().__init__(machine, striped_file, **kwargs)

    # -- transfer orchestration ---------------------------------------------------------
    def _start_transfer(self, session):
        barrier = Barrier(self.env, self.config.n_cps,
                          name=f"two-phase-barrier-{session.session_id}")
        exchange = self._permutation_matrix(session.pattern, session.file)
        cp_processes = [
            self.env.process(
                self._two_phase_cp_worker(cp_index, session, barrier, exchange))
            for cp_index in range(self.config.n_cps)
        ]
        return self.env.process(self._finish(cp_processes, session))

    # -- the conforming distribution ------------------------------------------------------
    def conforming_range(self, cp_index, striped_file=None):
        """Byte range of the file CP *cp_index* touches during the I/O phase.

        The conforming distribution is BLOCK over file blocks: contiguous,
        block-aligned, evenly split — the distribution the designers of
        two-phase I/O identified as matching a row-major file layout.
        """
        striped_file = striped_file if striped_file is not None else self.file
        n_blocks = striped_file.n_blocks
        per_cp = -(-n_blocks // self.config.n_cps)  # ceil
        first_block = min(cp_index * per_cp, n_blocks)
        last_block = min(first_block + per_cp, n_blocks)
        start = first_block * striped_file.block_size
        end = min(last_block * striped_file.block_size, striped_file.size_bytes)
        if start >= end:
            return (0, 0)
        return (start, end - start)

    def _permutation_matrix(self, pattern, striped_file=None):
        """bytes_to_send[i][j]: bytes CP *i* holds (conforming) that CP *j* owns."""
        n_cps = self.config.n_cps
        record_size = pattern.record_size
        matrix = np.zeros((n_cps, n_cps), dtype=np.int64)
        for holder in range(n_cps):
            start, length = self.conforming_range(holder, striped_file)
            if length == 0:
                continue
            first_record = start // record_size
            last_record = (start + length - 1) // record_size
            records = np.arange(first_record, last_record + 1, dtype=np.int64)
            if pattern.name.endswith("a") and len(pattern.name) == 2:
                # ra: every CP needs every byte; each holder sends its whole
                # range to every other CP.
                matrix[holder, :] = length
                continue
            owners = pattern.owners_of(records)
            counts = np.bincount(owners, minlength=n_cps)
            matrix[holder, :] = counts * record_size
        return matrix

    # -- CP behaviour -------------------------------------------------------------------
    def _two_phase_cp_worker(self, cp_index, session, barrier, exchange):
        yield barrier.wait()
        if session.pattern.is_read:
            yield from self._io_phase(cp_index, session)
            yield barrier.wait()
            yield from self._permute_phase(cp_index, session, exchange)
            yield barrier.wait()
        else:
            # Writes permute first (gather data into the conforming holders),
            # then the holders write their contiguous ranges.
            yield from self._permute_phase(cp_index, session, exchange.T)
            yield barrier.wait()
            yield from self._io_phase(cp_index, session)
            yield barrier.wait()

    def _io_phase(self, cp_index, session):
        """Read/write this CP's conforming range through the caching IOPs."""
        start, length = self.conforming_range(cp_index, session.file)
        if length == 0:
            return
        cp_node = self.machine.cps[cp_index]
        yield from self._issue_byte_range(cp_node, cp_index, session,
                                          start, length)

    def _permute_phase(self, cp_index, session, exchange):
        """Send every other CP the bytes it owns out of my conforming range."""
        cp_node = self.machine.cps[cp_index]
        sends = []
        for target in range(self.config.n_cps):
            n_bytes = int(exchange[cp_index, target])
            if target == cp_index or n_bytes == 0:
                continue
            sends.append(self.env.process(
                self._permute_send(cp_node, session, target, n_bytes)))
        if sends:
            yield AllOf(self.env, sends)

    def _permute_send(self, cp_node, session, target, n_bytes):
        target_node = self.machine.cps[target]
        yield from self._charge_cpu(cp_node, self.costs.message_overhead)
        yield from self.machine.network.transfer(
            cp_node.node_id, target_node.node_id, n_bytes + 32)
        # CP-to-CP redistribution is not file traffic: keep it out of
        # bytes_moved so the conservation invariant (bytes_moved ==
        # bytes_requested) holds for two-phase sessions too.
        session.count("permute_bytes", n_bytes)
