"""Traditional caching: the baseline parallel file system (Figure 1a).

Modelled on Intel CFS-style systems: there is no collective interface.  Each
compute processor walks its own chunk list and issues one request per
contiguous piece of each file block, keeping at most one request outstanding
per disk.  Each I/O processor dispatches every incoming request to a fresh
handler thread which consults the IOP's LRU block cache, performs the disk
I/O on a miss, prefetches one block ahead on reads, accumulates writes in the
cache and flushes buffers once they fill (write-behind).  The reply carries
the data and is deposited straight into the user's buffer by DMA.

Because the IOP software never had a collective interface to begin with, it
is naturally re-entrant: requests from several concurrent collectives (and
several files — cache buffers are keyed per file) interleave freely in the
dispatcher, contending for the cache, the CPU and the disks.
"""

from dataclasses import dataclass

from repro.core.base import CollectiveFileSystem
from repro.core.iop_cache import IOPCache
from repro.disk.faults import BlockFault
from repro.network.message import HEADER_BYTES, Message, MessageKind
from repro.sim.events import AllOf, Event


@dataclass(slots=True)
class _Request:
    """What a CP asks an IOP to do with one piece of one block.

    ``n_requests`` > 1 means this object stands for a *batch* of modeled
    requests: that many back-to-back single-piece requests from one CP to the
    same file block, simulated as one exchange.  ``length`` is then the total
    bytes across the batch and every per-request software cost (CP request
    build, message send/receive, thread dispatch, cache lookup, reply) is
    charged ``n_requests`` times — in one simulator event each.
    """

    kind: str                 # "read" or "write"
    block: int
    offset_in_block: int
    length: int
    cp_index: int
    disk_index: int
    session: object = None    # the CollectiveSession this request belongs to
    reply_event: Event = None
    n_requests: int = 1

    @property
    def file(self):
        """The striped file this request targets."""
        return self.session.file


class TraditionalCachingFS(CollectiveFileSystem):
    """The paper's baseline: per-chunk requests against caching IOPs."""

    method_name = "traditional"

    #: base mailbox tag under which IOPs receive file-system requests
    REQUEST_TAG = "tc-request"

    def __init__(self, machine, striped_file=None, cache_blocks_per_cp_per_disk=2,
                 prefetch_blocks=1, outstanding_per_disk=1, batch_requests=True,
                 fault_policy=None, checksums=False):
        super().__init__(machine, striped_file, fault_policy=fault_policy,
                         checksums=checksums)
        if outstanding_per_disk < 1:
            raise ValueError("need at least one outstanding request per disk")
        self.prefetch_blocks = prefetch_blocks
        self.outstanding_per_disk = outstanding_per_disk
        #: Simulator batching of per-record request streams (see
        #: :meth:`_cp_worker`).  ``False`` restores one simulation event
        #: round-trip per modeled request — the reference behaviour the
        #: batched path is regression-tested against, and the baseline
        #: ``benchmarks/perf_service.py`` measures its speedup over.
        self.batch_requests = batch_requests
        self.cache_blocks_per_cp_per_disk = cache_blocks_per_cp_per_disk
        self.request_tag = (self.REQUEST_TAG, self.fs_id)
        self.caches = []
        for iop in machine.iops:
            local_disks = len(iop.disks)
            capacity = max(2, cache_blocks_per_cp_per_disk
                           * machine.config.n_cps * max(1, local_disks))
            cache = IOPCache(
                env=self.env,
                iop=iop,
                striped_file=striped_file,
                # Route fetches and write-backs through the machine's disk
                # handles: the raw drive normally, or its SharedDiskQueue
                # when cross-collective IOP scheduling is configured —
                # replacing TC's FIFO pass-through to the drive queue.
                disk_lookup=iop.local_disk_handle,
                capacity_blocks=capacity,
                sectors_per_block=machine.config.sectors_per_block,
                fault_policy=fault_policy,
                # Retries and lost write-backs are charged to the session
                # whose id is on the disk request; the lookup returns None
                # once the session has completed and been released.
                session_lookup=self.active_sessions.get,
                checksums=checksums,
            )
            self.caches.append(cache)
            self.env.process(self._iop_dispatcher(iop, cache))

    # -- transfer orchestration ---------------------------------------------------------
    def _start_transfer(self, session):
        pattern = session.pattern
        cp_processes = []
        for cp_index in range(self.config.n_cps):
            if pattern.bytes_for_cp(cp_index) == 0:
                continue
            cp_processes.append(self.env.process(self._cp_worker(cp_index, session)))
        return self.env.process(self._finish(cp_processes, session))

    def _finish(self, cp_processes, session):
        if cp_processes:
            yield AllOf(self.env, cp_processes)
        if session.pattern.is_write:
            # Write-behind: drain THIS session's dirty buffers to the media
            # (per-session dirty tracking in the IOP caches), so the reported
            # time includes all of its outstanding writes — as in the paper's
            # methodology — without coupling the collective to other
            # sessions' traffic.  A machine-wide cache + disk flush here
            # would make one collective's completion wait on every
            # concurrent collective's dirty volume.
            yield AllOf(self.env, [cache.flush_session(session.session_id)
                                   for cache in self.caches])

    # -- compute-processor side -----------------------------------------------------------
    def _cp_worker(self, cp_index, session):
        """One CP's request loop: ReadCP/WriteCP once per contiguous chunk.

        Mirrors Figure 1a: within one chunk the CP keeps up to one request
        outstanding per disk, and it waits for all of a chunk's requests
        before starting the next chunk (there is no CP-side buffering).  For
        single-block chunks this collapses to one outstanding request per CP —
        the behaviour the paper's sensitivity analysis calls out for ``rc``.

        Simulator batching (``batch_requests``): when records are smaller
        than a file block, the chunk walk degenerates into thousands of
        single-piece chunks per block (the paper's 8-byte cyclic worst case),
        each a full simulated round-trip.  Consecutive single-block chunks
        that land in the *same* block are coalesced into one batched
        :class:`_Request` whose every per-request CPU, header and DMA-setup
        cost is charged ``n_requests`` times but in single simulator events —
        the same substitution disk-directed I/O makes for per-piece Memput
        messages.  The modeled protocol is unchanged: the IOP still sees (and
        charges for) every request; the drive still sees one fetch per block.
        """
        cp_node = self.machine.cps[cp_index]
        if not self.batch_requests:
            for offset, length in session.pattern.chunks_for_cp(cp_index):
                yield from self._issue_byte_range(cp_node, cp_index, session,
                                                  offset, length)
            return
        block_size = session.file.block_size
        # [block, first offset-in-block, total bytes, n requests] — mutated
        # in place: this loop visits every chunk (one per record in the
        # 8-byte cyclic worst case), so no per-chunk tuple rebuilds.
        batch = None
        for offset, length in session.pattern.chunks_for_cp(cp_index):
            block = offset // block_size
            if (offset + length - 1) // block_size != block:
                # Multi-block chunk: flush the batch, take the general path
                # (its own per-disk outstanding-request window applies).
                if batch is not None:
                    yield from self._issue_batched(cp_node, cp_index, session,
                                                   *batch)
                    batch = None
                yield from self._issue_byte_range(cp_node, cp_index, session,
                                                  offset, length)
            elif batch is not None and batch[0] == block:
                batch[2] += length
                batch[3] += 1
            else:
                if batch is not None:
                    yield from self._issue_batched(cp_node, cp_index, session,
                                                   *batch)
                batch = [block, offset % block_size, length, 1]
        if batch is not None:
            yield from self._issue_batched(cp_node, cp_index, session, *batch)

    def _issue_batched(self, cp_node, cp_index, session, block, offset_in_block,
                       length, n_requests):
        """Issue *n_requests* same-block requests as one simulated exchange.

        The unbatched model serialises these (one outstanding request per
        disk, all to the same disk), so a single blocking exchange preserves
        the pacing; only the per-request event round-trips are collapsed.
        """
        striped_file = session.file
        request = _Request(
            kind="write" if session.pattern.is_write else "read",
            block=block,
            offset_in_block=offset_in_block,
            length=length,
            cp_index=cp_index,
            disk_index=striped_file.disk_of_block(block),
            session=session,
            n_requests=n_requests,
        )
        session.count("cp_requests", n_requests)
        yield self.env.process(self._cp_issue_request(cp_node, request))

    def _issue_byte_range(self, cp_node, cp_index, session, offset, length):
        """One ReadCP/WriteCP call: issue per-block requests, then wait for all.

        Shared by traditional caching's chunk loop and two-phase I/O's
        conforming-distribution phase: at most ``outstanding_per_disk``
        requests in flight per disk, then wait for the stragglers.
        """
        striped_file = session.file
        outstanding = {}
        for block, offset_in_block, piece in striped_file.block_pieces(offset, length):
            disk_index = striped_file.disk_of_block(block)
            waiting = outstanding.get(disk_index)
            if waiting is not None and len(waiting) >= self.outstanding_per_disk:
                yield waiting.pop(0)
            request = _Request(
                kind="write" if session.pattern.is_write else "read",
                block=block,
                offset_in_block=offset_in_block,
                length=piece,
                cp_index=cp_index,
                disk_index=disk_index,
                session=session,
            )
            event = self.env.process(self._cp_issue_request(cp_node, request))
            outstanding.setdefault(disk_index, []).append(event)
            session.count("cp_requests")
        remaining = [event for events in outstanding.values() for event in events]
        if remaining:
            yield AllOf(self.env, remaining)

    def _cp_issue_request(self, cp_node, request):
        """Send one request (or batch) to the owning IOP and wait for its reply."""
        costs = self.costs
        iop = self.machine.iop_for_disk(request.disk_index)
        request.reply_event = Event(self.env)
        # CP software: build the request, find the disk, enter the message
        # system — once per modeled request, in one event for a batch.  The
        # CPU charge is inlined on the uncontended fast path (this runs once
        # per modeled exchange, the hottest CP-side loop).
        cpu_time = request.n_requests \
            * (costs.cp_request_overhead + costs.message_overhead)
        if cpu_time > 0:
            charge = cp_node.cpu.acquire_event(cpu_time)
            if charge is None:
                yield from cp_node.cpu.acquire(cpu_time)
            else:
                yield charge
        data_bytes = request.length if request.kind == "write" else 0
        message = Message(
            kind=MessageKind.WRITE_REQUEST if request.kind == "write"
            else MessageKind.READ_REQUEST,
            src=cp_node.node_id,
            dst=iop.node_id,
            data_bytes=data_bytes,
            payload=request,
            session_id=request.session.session_id,
            n_messages=request.n_requests,
        )
        yield from self.machine.network.send(
            message, iop.mailbox, tag=self.request_tag)
        # The reply is DMA'd into the user buffer; the CP just waits for it.
        yield request.reply_event

    # -- I/O-processor side -----------------------------------------------------------------
    def _iop_dispatcher(self, iop, cache):
        """Receive requests and hand each one to a fresh handler thread."""
        costs = self.costs
        while True:
            message = yield iop.mailbox.receive(self.request_tag)
            request = message.payload
            request.session.count("iop_messages", request.n_requests)
            cpu_time = request.n_requests \
                * (costs.message_overhead + costs.thread_dispatch_overhead)
            if cpu_time > 0:
                charge = iop.cpu.acquire_event(cpu_time)
                if charge is None:
                    yield from iop.cpu.acquire(cpu_time)
                else:
                    yield charge
            self.env.process(self._handle_request(iop, cache, request))

    def _handle_request(self, iop, cache, request):
        if request.kind == "read":
            yield from self._handle_read(iop, cache, request)
        else:
            yield from self._handle_write(iop, cache, request)

    def _handle_read(self, iop, cache, request):
        costs = self.costs
        striped_file = request.file
        session_id = request.session.session_id
        cpu_time = request.n_requests * costs.cache_lookup_overhead
        if cpu_time > 0:
            charge = iop.cpu.acquire_event(cpu_time)
            if charge is None:
                yield from iop.cpu.acquire(cpu_time)
            else:
                yield charge
        value = yield cache.acquire_for_read(request.block, file=striped_file,
                                             session_id=session_id)
        if isinstance(value, BlockFault):
            # The block is permanently unreadable (cache fetch exhausted its
            # retries): reply with an error — header only, no data, no
            # prefetch — and account the undelivered bytes so conservation
            # (moved + failed == requested) holds for the session.
            self._record_read_failure(request.session, request.length)
            yield from self._charge_cpu(
                iop, request.n_requests * costs.message_overhead)
            cp_node = self.machine.cps[request.cp_index]
            yield from self.machine.network.transfer(
                iop.node_id, cp_node.node_id,
                request.n_requests * HEADER_BYTES,
                count=request.n_requests)
            request.reply_event.succeed()
            return
        # One-block-ahead prefetch: the next block of this file on this disk.
        # Prefetches are the IOP's speculation, not the session's work: they
        # stay untagged so one can land at the drive after its trigger
        # session completed without resurrecting released accounting.
        if self.prefetch_blocks > 0:
            for ahead in range(1, self.prefetch_blocks + 1):
                next_block = request.block + ahead * striped_file.n_disks
                if next_block < striped_file.n_blocks:
                    cache.try_prefetch(next_block, file=striped_file)
        # Reply with the data (deposited into the user's buffer by DMA) —
        # one modeled reply per modeled request.
        cpu_time = request.n_requests * costs.message_overhead
        if cpu_time > 0:
            charge = iop.cpu.acquire_event(cpu_time)
            if charge is None:
                yield from iop.cpu.acquire(cpu_time)
            else:
                yield charge
        cp_node = self.machine.cps[request.cp_index]
        yield from self.machine.network.transfer(
            iop.node_id, cp_node.node_id,
            request.n_requests * HEADER_BYTES + request.length,
            count=request.n_requests)
        request.session.count("bytes_moved", request.length)
        request.reply_event.succeed()

    def _handle_write(self, iop, cache, request):
        costs = self.costs
        striped_file = request.file
        yield from self._charge_cpu(
            iop, request.n_requests * costs.cache_lookup_overhead)
        # Acquire and pin the buffer: under concurrent collectives the cache
        # can thrash, and an unpinned buffer could be evicted between
        # allocation and the copy — silently dropping the written bytes.
        while True:
            yield cache.acquire_for_write(request.block, file=striped_file)
            if cache.pin(request.block, file=striped_file):
                break
        # The single memory-memory copy of the design: thread buffer -> cache.
        copy_time = request.length / costs.memory_copy_bandwidth
        yield from self._charge_cpu(iop, copy_time)
        # The data crossed the wire in the request message; account it here,
        # where the IOP has accepted it into the cache.
        request.session.count("bytes_moved", request.length)
        full = cache.record_write(request.block, request.length,
                                  striped_file.block_size, file=striped_file,
                                  session_id=request.session.session_id)
        if full:
            cache.flush_block(request.block, file=striped_file)
        cache.unpin(request.block, file=striped_file)
        # Acknowledge so the CP can reuse its outstanding-request slot.
        yield from self._charge_cpu(
            iop, request.n_requests * costs.message_overhead)
        cp_node = self.machine.cps[request.cp_index]
        yield from self.machine.network.transfer(
            iop.node_id, cp_node.node_id,
            request.n_requests * HEADER_BYTES,
            count=request.n_requests)
        request.reply_event.succeed()
