"""Shared plumbing for the collective-I/O implementations.

The central abstraction is the :class:`CollectiveSession`: one in-flight
collective operation (a pattern applied to one striped file).  A
:class:`CollectiveFileSystem` is bound to a machine and can run *many*
sessions concurrently — :meth:`~CollectiveFileSystem.begin_transfer` starts a
session without blocking, and the service-style workload driver
(:mod:`repro.workload`) streams dozens of them through one machine.  The
original single-collective interface, :meth:`~CollectiveFileSystem.transfer`,
remains and simply runs one session to completion.
"""

from itertools import count

from repro.core.result import TransferResult
from repro.disk.faults import retry_fragment
from repro.sim.events import Event
from repro.sim.stats import Counter

#: Counter names tracked both per session and for the file system's lifetime.
#: ``bytes_moved`` counts CP<->IOP traffic only; without faults it equals the
#: pattern's requested bytes, and under fault injection the conservation
#: invariant becomes ``bytes_moved + failed_bytes == bytes_requested`` (every
#: requested byte is either delivered or explicitly accounted as failed).
#: CP-to-CP redistribution (two-phase I/O's permute phase) is tallied
#: separately in ``permute_bytes``.  The fault counters: ``retries`` is the
#: number of re-submitted disk requests; ``failed_blocks`` counts blocks
#: given up on; ``failed_bytes`` is requested-but-undelivered read traffic;
#: ``lost_bytes`` is write traffic the CPs shipped but the drive never made
#: durable (it still counts in ``bytes_moved`` — the wire work happened — so
#: it sits outside the conservation sum); ``degraded`` is 0 or 1 per session
#: (its file-system lifetime twin therefore counts degraded sessions).
SESSION_COUNTERS = ("cp_requests", "iop_messages", "bytes_moved",
                    "permute_bytes", "retries", "failed_blocks",
                    "failed_bytes", "lost_bytes", "degraded")

_session_ids = count()
_fs_ids = count()


class CollectiveSession:
    """One in-flight collective operation: a pattern applied to one file.

    Sessions are created by :meth:`CollectiveFileSystem.begin_transfer`; the
    implementation's processes carry the session instead of bare patterns so
    several collectives can be in flight on the same machine without their
    messages, buffers or statistics crossing wires.  ``done`` fires with the
    session's :class:`TransferResult` when the operation — including any
    write-behind — is complete.
    """

    __slots__ = ("session_id", "fs", "pattern", "file", "env", "start_time",
                 "end_time", "done", "counters", "result")

    def __init__(self, fs, pattern, striped_file):
        self.session_id = next(_session_ids)
        self.fs = fs
        self.pattern = pattern
        self.file = striped_file
        self.env = fs.env
        self.start_time = None
        self.end_time = None
        self.done = Event(fs.env)
        self.counters = {name: Counter(name) for name in SESSION_COUNTERS}
        self.result = None

    @property
    def in_flight(self):
        """True while the collective has started but not yet completed."""
        return self.start_time is not None and self.end_time is None

    @property
    def elapsed(self):
        """Simulated seconds from start to completion (None while in flight)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def bytes_moved(self):
        """Bytes actually moved between CPs and IOPs for this collective."""
        return self.counters["bytes_moved"].value

    @property
    def bytes_requested(self):
        """Bytes the pattern asks the I/O system to move."""
        return self.pattern.total_transfer_bytes()

    def count(self, name, amount=1):
        """Increment a session counter (and its file-system lifetime twin).

        Counters outside :data:`SESSION_COUNTERS` (e.g. ``scrub_errors``
        from checksum verification) are created lazily on first use, so
        result snapshots only grow keys on runs that actually exercise the
        corresponding machinery.
        """
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.add(amount)
        fs_counter = self.fs.counters.get(name)
        if fs_counter is None:
            fs_counter = self.fs.counters[name] = Counter(name)
        fs_counter.add(amount)

    def __repr__(self):
        state = "in-flight" if self.in_flight else \
            ("done" if self.result is not None else "new")
        return (f"<CollectiveSession #{self.session_id} {self.pattern.name} "
                f"on {self.file.name!r} [{state}]>")


class CollectiveFileSystem:
    """Base class: a file-system implementation bound to one machine.

    Subclasses implement :meth:`_start_transfer`, which kicks off all the
    simulation processes for one :class:`CollectiveSession` and returns an
    event that fires when the operation — including any write-behind — is
    complete.  Implementations must be *re-entrant*: any state specific to one
    collective (buffer pools, completion tallies, reply routing) belongs on
    the session or in per-session mailbox tags, never on ``self``.

    ``striped_file`` is the default target file; re-entrant callers may
    instead pass a file per transfer, so one instance can serve a whole
    multi-file workload.
    """

    method_name = "abstract"

    def __init__(self, machine, striped_file=None, fault_policy=None,
                 checksums=False):
        self.machine = machine
        self.env = machine.env
        self.config = machine.config
        self.costs = machine.config.costs
        self.file = striped_file
        #: Optional :class:`~repro.disk.faults.FaultPolicy` governing how
        #: this file system reacts to errored disk requests (None: errors
        #: degrade immediately, which only matters when the machine injects
        #: faults — a healthy machine never produces an errored request).
        self.fault_policy = fault_policy
        #: End-to-end integrity: verify per-block checksums at the client
        #: on every read.  Off by default — without it, silently-corrupted
        #: payloads (``DiskRequest.corrupt``) are delivered as if clean; see
        #: :meth:`_verify_read`.
        self.checksums = checksums
        #: Distinguishes this instance's mailbox traffic from any other
        #: instance sharing the machine (e.g. a DDIO and a TC file system
        #: being compared on the same simulated hardware).
        self.fs_id = next(_fs_ids)
        #: Lifetime totals across every session this instance has run.
        self.counters = {name: Counter(name) for name in SESSION_COUNTERS}
        #: Sessions currently in flight (session_id -> session).
        self.active_sessions = {}

    # -- public API -------------------------------------------------------------
    def transfer(self, pattern, striped_file=None):
        """Run one collective read or write and return its :class:`TransferResult`.

        The simulation clock is *not* reset between calls, so several
        transfers can be issued back to back on the same machine (an
        out-of-core application alternating reads and writes, for example).
        """
        session = self.begin_transfer(pattern, striped_file)
        self.env.run(session.done)
        return session.result

    def begin_transfer(self, pattern, striped_file=None):
        """Start a collective without blocking; returns its :class:`CollectiveSession`.

        The caller decides when to advance the simulation (``env.run``) and
        may start further collectives first — that is how the workload driver
        models a server handling concurrent requests.  ``session.done`` fires
        with the :class:`TransferResult` once the collective completes.
        """
        target = striped_file if striped_file is not None else self.file
        if target is None:
            raise ValueError(
                "no target file: pass striped_file to begin_transfer() or "
                "bind a default file at construction")
        self._validate_pattern(pattern, target)
        session = CollectiveSession(self, pattern, target)
        session.start_time = self.env.now
        self.active_sessions[session.session_id] = session
        done = self._start_transfer(session)
        self.env.process(self._complete(session, done))
        return session

    def _complete(self, session, done):
        yield done
        session.end_time = self.env.now
        session.result = TransferResult(
            method=self.method_name,
            pattern_name=session.pattern.name,
            layout_name=session.file.layout.name,
            file_size=session.file.size_bytes,
            record_size=session.pattern.record_size,
            n_cps=self.config.n_cps,
            n_iops=self.config.n_iops,
            n_disks=self.config.n_disks,
            start_time=session.start_time,
            end_time=session.end_time,
            bytes_transferred=session.bytes_requested,
            counters=self._snapshot_counters(session),
        )
        del self.active_sessions[session.session_id]
        # The per-session disk/bus tallies are folded into the result above;
        # drop them so a long request stream does not accumulate one
        # accounting entry per collective on every drive and bus.
        self.machine.release_session(session.session_id)
        session.done.succeed(session.result)

    # -- to be provided by subclasses ------------------------------------------------
    def _start_transfer(self, session):
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------------
    def _validate_pattern(self, pattern, striped_file):
        if pattern.file_size != striped_file.size_bytes:
            raise ValueError(
                f"pattern is for a {pattern.file_size}-byte file but the file is "
                f"{striped_file.size_bytes} bytes")
        if pattern.n_cps != self.config.n_cps:
            raise ValueError(
                f"pattern is for {pattern.n_cps} CPs but the machine has "
                f"{self.config.n_cps}")

    def _snapshot_counters(self, session):
        # Every key is scoped to THIS session: the protocol counters come
        # from the session object, and the disk stats / bus share come from
        # request tagging (session ids threaded through Disk, SharedDiskQueue
        # and the SCSI bus ports).  ``bus_busy_fraction`` is the busiest
        # single bus's occupancy on this session's transfers divided by the
        # session's elapsed time.  Concurrent collectives therefore no
        # longer bleed into each other's results; reads coalesced by the
        # traditional-caching block cache are attributed to the session
        # whose miss issued the fetch.
        snapshot = {name: counter.value
                    for name, counter in session.counters.items()}
        snapshot.update(self.machine.session_disk_stats(session.session_id))
        snapshot["message_wire_bytes"] = \
            self.machine.network.session_message_wire_bytes(session.session_id)
        elapsed = session.elapsed
        busy = self.machine.session_bus_busy_seconds(session.session_id)
        snapshot["bus_busy_fraction"] = \
            min(1.0, busy / elapsed) if elapsed else 0.0
        return snapshot

    # -- common cost fragments --------------------------------------------------------
    def _charge_cpu(self, node, seconds):
        """Process fragment: occupy *node*'s CPU for *seconds*.

        The uncontended case (one event, no inner generator) goes through
        :meth:`~repro.sim.resources.Resource.acquire_event`; a busy CPU falls
        back to the queueing :meth:`~repro.sim.resources.Resource.acquire`.
        The hottest per-piece paths inline this same pattern directly rather
        than delegating here.
        """
        if seconds > 0:
            event = node.cpu.acquire_event(seconds)
            if event is None:
                yield from node.cpu.acquire(seconds)
            else:
                yield event

    def _send(self, session, src_node, dst_node, data_bytes, header_bytes=32):
        """Process fragment: move a message's bytes across the interconnect."""
        yield from self.machine.network.transfer(
            src_node.node_id, dst_node.node_id, header_bytes + data_bytes)
        session.count("bytes_moved", data_bytes)

    # -- failure handling -------------------------------------------------------------
    def _fault_retry(self, session, attempt):
        """Process fragment: run *attempt* with bounded retry; returns the request.

        Delegates to :func:`repro.disk.faults.retry_fragment` (each retry
        submits a brand-new request — drives do not keep errored requests),
        counting each retry against *session*.  The returned request may
        still carry ``status == "error"`` — the caller decides how to
        degrade; under ``on_fault="abort"`` a terminal failure raises
        :class:`~repro.disk.faults.FaultAbort` instead.
        """
        on_retry = (lambda: session.count("retries")) \
            if session is not None else None
        request = yield from retry_fragment(
            self.env, self.fault_policy, attempt, on_retry)
        return request

    def _verify_read(self, session, disk, request):
        """Process fragment: client-side checksum check of a completed read.

        With ``checksums`` off (the default) this is free and returns the
        request untouched — a corrupt payload is delivered as if clean,
        which is exactly the invisibility the knob exists to close.  With
        them on, a ``corrupt`` payload is always detected (counted as
        ``scrub_errors``) and, when the handle is a parity wrapper, repaired
        in place via :meth:`~repro.disk.redundancy.ParityDisk.repair`;
        without redundancy (or if reconstruction fails) the request is
        downgraded to ``status="error"`` / ``error="checksum"`` and the
        caller's ordinary read-failure accounting takes over.
        """
        if not self.checksums or request.status != "ok" \
                or not request.corrupt:
            return request
            yield  # pragma: no cover - makes this a generator even when skipped
        session.count("scrub_errors")
        repair = getattr(disk, "repair", None)
        if repair is not None:
            repaired = yield repair(request.lbn, request.n_sectors,
                                    session_id=request.session_id)
            if repaired.status == "ok":
                return repaired
        request.status = "error"
        request.error = "checksum"
        return request

    def _record_read_failure(self, session, n_bytes):
        """Account one block's worth of undeliverable read data."""
        session.count("failed_blocks")
        session.count("failed_bytes", n_bytes)
        self._mark_degraded(session)

    def _record_write_loss(self, session, n_bytes):
        """Account one accepted-but-never-durable block of write data."""
        session.count("failed_blocks")
        session.count("lost_bytes", n_bytes)
        self._mark_degraded(session)

    def _mark_degraded(self, session):
        if session.counters["degraded"].value == 0:
            session.count("degraded")


def make_filesystem(method, machine, striped_file=None, **kwargs):
    """Factory used by the experiment harness and examples.

    *method* is one of ``traditional`` (aliases ``tc``, ``caching``),
    ``disk-directed`` (aliases ``ddio``, ``ddio-sort``), ``ddio-nosort``, or
    ``two-phase`` (alias ``2p``).
    """
    # Imported here to avoid an import cycle (the implementations subclass us).
    from repro.core.ddio import DiskDirectedFS
    from repro.core.traditional import TraditionalCachingFS
    from repro.core.twophase import TwoPhaseFS

    key = method.lower()
    if key in ("traditional", "tc", "caching", "traditional-caching"):
        return TraditionalCachingFS(machine, striped_file, **kwargs)
    if key in ("disk-directed", "ddio", "ddio-sort", "disk-directed-sorted"):
        kwargs.setdefault("presort", True)
        return DiskDirectedFS(machine, striped_file, **kwargs)
    if key in ("ddio-nosort", "disk-directed-nosort", "disk-directed-unsorted"):
        kwargs.setdefault("presort", False)
        return DiskDirectedFS(machine, striped_file, **kwargs)
    if key in ("two-phase", "2p", "twophase"):
        return TwoPhaseFS(machine, striped_file, **kwargs)
    raise ValueError(f"unknown collective-I/O method {method!r}")
