"""Shared plumbing for the collective-I/O implementations."""

from repro.core.result import TransferResult
from repro.sim.stats import Counter


class CollectiveFileSystem:
    """Base class: a file-system implementation bound to one machine and one file.

    Subclasses implement :meth:`_start_transfer`, which kicks off all the
    simulation processes for one collective operation and returns an event
    that fires when the operation — including any write-behind — is complete.
    """

    method_name = "abstract"

    def __init__(self, machine, striped_file):
        self.machine = machine
        self.env = machine.env
        self.config = machine.config
        self.costs = machine.config.costs
        self.file = striped_file
        self.counters = {
            "cp_requests": Counter("cp_requests"),
            "iop_messages": Counter("iop_messages"),
            "bytes_moved": Counter("bytes_moved"),
        }

    # -- public API -------------------------------------------------------------
    def transfer(self, pattern):
        """Run one collective read or write and return its :class:`TransferResult`.

        The simulation clock is *not* reset between calls, so several
        transfers can be issued back to back on the same machine (an
        out-of-core application alternating reads and writes, for example).
        """
        self._validate_pattern(pattern)
        start_time = self.env.now
        done = self._start_transfer(pattern)
        self.env.run(done)
        end_time = self.env.now
        return TransferResult(
            method=self.method_name,
            pattern_name=pattern.name,
            layout_name=self.file.layout.name,
            file_size=self.file.size_bytes,
            record_size=pattern.record_size,
            n_cps=self.config.n_cps,
            n_iops=self.config.n_iops,
            n_disks=self.config.n_disks,
            start_time=start_time,
            end_time=end_time,
            bytes_transferred=pattern.total_transfer_bytes(),
            counters=self._snapshot_counters(),
        )

    # -- to be provided by subclasses ------------------------------------------------
    def _start_transfer(self, pattern):
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------------
    def _validate_pattern(self, pattern):
        if pattern.file_size != self.file.size_bytes:
            raise ValueError(
                f"pattern is for a {pattern.file_size}-byte file but the file is "
                f"{self.file.size_bytes} bytes")
        if pattern.n_cps != self.config.n_cps:
            raise ValueError(
                f"pattern is for {pattern.n_cps} CPs but the machine has "
                f"{self.config.n_cps}")

    def _snapshot_counters(self):
        snapshot = {name: counter.value for name, counter in self.counters.items()}
        snapshot.update(self.machine.total_disk_stats())
        snapshot["bus_busy_fraction"] = max(
            (iop.bus.busy_fraction() for iop in self.machine.iops), default=0.0)
        return snapshot

    # -- common cost fragments --------------------------------------------------------
    def _charge_cpu(self, node, seconds):
        """Process fragment: occupy *node*'s CPU for *seconds*."""
        if seconds > 0:
            yield from node.cpu.acquire(seconds)

    def _send(self, src_node, dst_node, data_bytes, header_bytes=32):
        """Process fragment: move a message's bytes across the interconnect."""
        yield from self.machine.network.transfer(
            src_node.node_id, dst_node.node_id, header_bytes + data_bytes)
        self.counters["bytes_moved"].add(data_bytes)


def make_filesystem(method, machine, striped_file, **kwargs):
    """Factory used by the experiment harness and examples.

    *method* is one of ``traditional`` (aliases ``tc``, ``caching``),
    ``disk-directed`` (aliases ``ddio``, ``ddio-sort``), ``ddio-nosort``, or
    ``two-phase`` (alias ``2p``).
    """
    # Imported here to avoid an import cycle (the implementations subclass us).
    from repro.core.ddio import DiskDirectedFS
    from repro.core.traditional import TraditionalCachingFS
    from repro.core.twophase import TwoPhaseFS

    key = method.lower()
    if key in ("traditional", "tc", "caching", "traditional-caching"):
        return TraditionalCachingFS(machine, striped_file, **kwargs)
    if key in ("disk-directed", "ddio", "ddio-sort", "disk-directed-sorted"):
        kwargs.setdefault("presort", True)
        return DiskDirectedFS(machine, striped_file, **kwargs)
    if key in ("ddio-nosort", "disk-directed-nosort", "disk-directed-unsorted"):
        kwargs.setdefault("presort", False)
        return DiskDirectedFS(machine, striped_file, **kwargs)
    if key in ("two-phase", "2p", "twophase"):
        return TwoPhaseFS(machine, striped_file, **kwargs)
    raise ValueError(f"unknown collective-I/O method {method!r}")
