"""Collective-I/O engines: the paper's contribution and its competitors.

Three implementations of the collective read/write of a distributed array:

* :class:`~repro.core.traditional.TraditionalCachingFS` — the baseline: each
  CP issues one request per contiguous file chunk; each IOP runs an LRU block
  cache with one-block-ahead prefetch and write-behind (Figure 1a).
* :class:`~repro.core.ddio.DiskDirectedFS` — disk-directed I/O: one collective
  request per IOP, per-disk block lists (optionally presorted by physical
  location), two buffers per disk, and Memput/Memget streaming straight
  between IOP buffers and CP memories (Figure 1c).
* :class:`~repro.core.twophase.TwoPhaseFS` — two-phase I/O (del Rosario et
  al.), which the paper discusses but does not simulate; provided here as an
  extension: I/O in a conforming (block) distribution plus an in-memory
  permutation phase among the CPs (Figure 1b).

All three share the :class:`~repro.core.base.CollectiveFileSystem` interface:
``transfer(pattern)`` runs the collective operation on the simulated machine
and returns a :class:`~repro.core.result.TransferResult`.
"""

from repro.core.base import CollectiveFileSystem, make_filesystem
from repro.core.ddio import DiskDirectedFS
from repro.core.iop_cache import IOPCache, IOPCacheStats
from repro.core.result import TransferResult
from repro.core.traditional import TraditionalCachingFS
from repro.core.twophase import TwoPhaseFS

__all__ = [
    "CollectiveFileSystem",
    "DiskDirectedFS",
    "IOPCache",
    "IOPCacheStats",
    "TraditionalCachingFS",
    "TransferResult",
    "TwoPhaseFS",
    "make_filesystem",
]
