"""Striped files: block-by-block declustering over all disks."""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BlockLocation:
    """Where one file block lives: which disk, and which sector on that disk."""

    file_block: int
    disk_index: int
    local_index: int
    lbn: int


class StripedFile:
    """A file striped block by block over *n_disks* disks.

    File block ``b`` lives on disk ``b % n_disks`` and is the
    ``b // n_disks``-th block of the file on that disk; the physical layout
    then decides the sector address of that per-disk slot.
    """

    def __init__(self, name, size_bytes, block_size, n_disks, layout):
        if size_bytes <= 0:
            raise ValueError(f"file size must be positive, got {size_bytes}")
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        if n_disks <= 0:
            raise ValueError(f"need at least one disk, got {n_disks}")
        self.name = name
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.n_disks = n_disks
        self.layout = layout
        self.n_blocks = math.ceil(size_bytes / block_size)
        layout.check_capacity(math.ceil(self.n_blocks / n_disks))

    # -- striping ------------------------------------------------------------------
    def disk_of_block(self, file_block):
        """Disk index holding *file_block*."""
        self._check_block(file_block)
        return file_block % self.n_disks

    def local_index_of_block(self, file_block):
        """Position of *file_block* among the blocks on its disk."""
        self._check_block(file_block)
        return file_block // self.n_disks

    def location(self, file_block):
        """Full :class:`BlockLocation` for *file_block*."""
        self._check_block(file_block)
        disk_index = file_block % self.n_disks
        local_index = file_block // self.n_disks
        lbn = self.layout.lbn_of(disk_index, local_index)
        return BlockLocation(file_block=file_block, disk_index=disk_index,
                             local_index=local_index, lbn=lbn)

    def blocks_on_disk(self, disk_index):
        """All file blocks that live on *disk_index*, in file order."""
        if disk_index < 0 or disk_index >= self.n_disks:
            raise ValueError(f"disk {disk_index} out of range [0, {self.n_disks})")
        return list(range(disk_index, self.n_blocks, self.n_disks))

    # -- byte-range helpers ------------------------------------------------------------
    def block_of_offset(self, offset):
        """File block containing byte *offset*."""
        if offset < 0 or offset >= self.size_bytes:
            raise ValueError(f"offset {offset} outside file of {self.size_bytes} bytes")
        return offset // self.block_size

    def block_pieces(self, offset, length):
        """Split the byte range ``[offset, offset+length)`` at block boundaries.

        Yields ``(file_block, offset_in_block, piece_length)`` tuples, in file
        order.  This is exactly the decomposition a traditional-caching CP
        performs when a request spans several file blocks.
        """
        if length < 0:
            raise ValueError(f"negative length {length}")
        if offset < 0 or offset + length > self.size_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside file of "
                f"{self.size_bytes} bytes")
        position = offset
        remaining = length
        while remaining > 0:
            block = position // self.block_size
            offset_in_block = position % self.block_size
            piece = min(remaining, self.block_size - offset_in_block)
            yield (block, offset_in_block, piece)
            position += piece
            remaining -= piece

    def _check_block(self, file_block):
        if file_block < 0 or file_block >= self.n_blocks:
            raise ValueError(
                f"block {file_block} out of range [0, {self.n_blocks})")
