"""Parallel file-system substrate: striped files and physical disk layouts.

Files are declustered block by block over all disks (round-robin), exactly as
in the paper.  Within each disk, the file's blocks are placed either
*contiguously* (consecutive physical blocks) or at *random* physical locations
("random-blocks"), the two layouts the evaluation compares.
"""

from repro.fs.file import BlockLocation, StripedFile
from repro.fs.filesystem import FileSystem
from repro.fs.layout import (
    ContiguousLayout,
    PhysicalLayout,
    RandomBlocksLayout,
    make_layout,
)

__all__ = [
    "BlockLocation",
    "ContiguousLayout",
    "FileSystem",
    "PhysicalLayout",
    "RandomBlocksLayout",
    "StripedFile",
    "make_layout",
]
