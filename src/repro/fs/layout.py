"""Physical placement of a file's blocks on each disk.

A layout answers one question: given that a disk holds the k-th, 2k-th, ...
stripe units of a file, at which logical block number (sector address) does
each of those stripe units live?  ``contiguous`` places them back to back;
``random-blocks`` scatters them uniformly over the disk, which is the paper's
stand-in for a badly aged / fully declustered file system (and also models a
request for an arbitrary subset of blocks of a much larger file).
"""

import numpy as np


class PhysicalLayout:
    """Base class: maps per-disk block slots to sector addresses."""

    name = "abstract"

    def __init__(self, spec, block_size):
        if block_size % spec.sector_size:
            raise ValueError(
                f"block size {block_size} is not a multiple of the sector size")
        self.spec = spec
        self.block_size = block_size
        self.sectors_per_block = block_size // spec.sector_size
        self.blocks_per_disk = spec.total_sectors // self.sectors_per_block

    def lbn_of(self, disk_index, local_block_index):
        """Sector address of the *local_block_index*-th file block on *disk_index*."""
        raise NotImplementedError

    def check_capacity(self, blocks_needed):
        """Raise if a single disk cannot hold *blocks_needed* file blocks."""
        if blocks_needed > self.blocks_per_disk:
            raise ValueError(
                f"file needs {blocks_needed} blocks per disk but the disk only has "
                f"{self.blocks_per_disk}")


class ContiguousLayout(PhysicalLayout):
    """File blocks laid out in consecutive physical blocks, starting at an extent base."""

    name = "contiguous"

    def __init__(self, spec, block_size, start_block=0):
        super().__init__(spec, block_size)
        if start_block < 0 or start_block >= self.blocks_per_disk:
            raise ValueError(f"start block {start_block} outside the disk")
        self.start_block = start_block

    def lbn_of(self, disk_index, local_block_index):
        physical_block = self.start_block + local_block_index
        if physical_block >= self.blocks_per_disk:
            raise ValueError(
                f"block slot {local_block_index} (+start {self.start_block}) "
                f"falls off the end of the disk")
        return physical_block * self.sectors_per_block


class RandomBlocksLayout(PhysicalLayout):
    """File blocks placed at uniformly random (distinct) physical blocks.

    Each disk gets its own permutation, derived deterministically from the
    layout seed and the disk index so experiments are reproducible and every
    disk's placement is independent.
    """

    name = "random"

    def __init__(self, spec, block_size, seed=0, blocks_per_disk_needed=None):
        super().__init__(spec, block_size)
        self.seed = seed
        self._placements = {}
        self._blocks_hint = blocks_per_disk_needed

    def _placement_for(self, disk_index):
        if disk_index not in self._placements:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, disk_index]))
            self._placements[disk_index] = rng.permutation(self.blocks_per_disk)
        return self._placements[disk_index]

    def lbn_of(self, disk_index, local_block_index):
        placement = self._placement_for(disk_index)
        if local_block_index >= len(placement):
            raise ValueError(
                f"block slot {local_block_index} exceeds disk capacity "
                f"{len(placement)}")
        return int(placement[local_block_index]) * self.sectors_per_block


_LAYOUTS = {
    ContiguousLayout.name: ContiguousLayout,
    RandomBlocksLayout.name: RandomBlocksLayout,
    # common aliases
    "random-blocks": RandomBlocksLayout,
    "random_blocks": RandomBlocksLayout,
}


def make_layout(name, spec, block_size, seed=0):
    """Construct a layout by name (``contiguous`` or ``random``/``random-blocks``)."""
    try:
        cls = _LAYOUTS[name]
    except KeyError:
        raise ValueError(f"unknown layout {name!r}; choose from {sorted(set(_LAYOUTS))}")
    if cls is RandomBlocksLayout:
        return cls(spec, block_size, seed=seed)
    return cls(spec, block_size)
