"""Physical placement of a file's blocks on each disk.

A layout answers one question: given that a disk holds the k-th, 2k-th, ...
stripe units of a file, at which logical block number (sector address) does
each of those stripe units live?  ``contiguous`` places them back to back;
``random-blocks`` scatters them uniformly over the disk, which is the paper's
stand-in for a badly aged / fully declustered file system (and also models a
request for an arbitrary subset of blocks of a much larger file).
"""

import numpy as np


class PhysicalLayout:
    """Base class: maps per-disk block slots to sector addresses."""

    name = "abstract"

    def __init__(self, spec, block_size):
        if block_size % spec.sector_size:
            raise ValueError(
                f"block size {block_size} is not a multiple of the sector size")
        self.spec = spec
        self.block_size = block_size
        self.sectors_per_block = block_size // spec.sector_size
        self.blocks_per_disk = spec.total_sectors // self.sectors_per_block

    def lbn_of(self, disk_index, local_block_index):
        """Sector address of the *local_block_index*-th file block on *disk_index*."""
        raise NotImplementedError

    def check_capacity(self, blocks_needed):
        """Raise if a single disk cannot hold *blocks_needed* file blocks."""
        if blocks_needed > self.blocks_per_disk:
            raise ValueError(
                f"file needs {blocks_needed} blocks per disk but the disk only has "
                f"{self.blocks_per_disk}")


class ContiguousLayout(PhysicalLayout):
    """File blocks laid out in consecutive physical blocks, starting at an extent base."""

    name = "contiguous"

    def __init__(self, spec, block_size, start_block=0):
        super().__init__(spec, block_size)
        if start_block < 0 or start_block >= self.blocks_per_disk:
            raise ValueError(f"start block {start_block} outside the disk")
        self.start_block = start_block

    def lbn_of(self, disk_index, local_block_index):
        physical_block = self.start_block + local_block_index
        if physical_block >= self.blocks_per_disk:
            raise ValueError(
                f"block slot {local_block_index} (+start {self.start_block}) "
                f"falls off the end of the disk")
        return physical_block * self.sectors_per_block

    def check_capacity(self, blocks_needed):
        """Raise if the extent starting at ``start_block`` cannot hold the file."""
        if self.start_block + blocks_needed > self.blocks_per_disk:
            raise ValueError(
                f"file needs {blocks_needed} blocks per disk at extent base "
                f"{self.start_block} but the disk only has {self.blocks_per_disk}")


class _PartialPermutation:
    """Lazily materialised prefix of a uniform random permutation of ``range(n)``.

    Classic Fisher–Yates, drawn only as far as requested: ``get(i)`` is the
    i-th entry of the permutation, and extending the prefix never changes
    entries already drawn.  Draws happen in fixed-size chunks whose boundaries
    are multiples of ``_CHUNK``, so the underlying random stream is consumed
    identically no matter in what order or how far the prefix is grown — the
    value at index *i* is a pure function of (rng seed, i).

    A full-disk permutation (what ``numpy.random.Generator.permutation``
    materialises) costs O(disk size); a file only ever touches a tiny prefix,
    so this is O(blocks actually placed).
    """

    #: Entries drawn per batch; boundaries are always multiples of this, which
    #: is what makes the prefix independent of the access pattern.
    _CHUNK = 128

    __slots__ = ("_rng", "_n", "_drawn", "_displaced")

    def __init__(self, rng, n):
        self._rng = rng
        self._n = n
        self._drawn = []       # permutation prefix materialised so far
        self._displaced = {}   # sparse tail: position -> value swapped into it

    def get(self, index):
        drawn = self._drawn
        if index >= len(drawn):
            self._extend(index + 1)
            drawn = self._drawn
        return drawn[index]

    def _extend(self, needed):
        chunk = self._CHUNK
        n = self._n
        target = min(-(-needed // chunk) * chunk, n)
        drawn = self._drawn
        displaced = self._displaced
        start = len(drawn)
        # One uniform double per entry; j = i + floor(u * (n - i)) is the
        # Fisher-Yates partner drawn from [i, n).  u < 1 guarantees j < n.
        for u in self._rng.random(target - start):
            i = start
            j = i + int(u * (n - i))
            value_i = displaced.pop(i, i)
            if j == i:
                drawn.append(value_i)
            else:
                drawn.append(displaced.pop(j, j))
                displaced[j] = value_i
            start += 1


class RandomBlocksLayout(PhysicalLayout):
    """File blocks placed at uniformly random (distinct) physical blocks.

    Each disk gets its own permutation, derived deterministically from the
    layout seed and the disk index so experiments are reproducible and every
    disk's placement is independent.  The permutation is drawn lazily (partial
    Fisher–Yates): only the prefix a file actually touches is materialised,
    and growing the prefix never changes already-placed blocks.
    """

    name = "random"

    def __init__(self, spec, block_size, seed=0, blocks_per_disk_needed=None):
        super().__init__(spec, block_size)
        self.seed = seed
        self._placements = {}
        self._blocks_hint = blocks_per_disk_needed

    def _placement_for(self, disk_index):
        placement = self._placements.get(disk_index)
        if placement is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, disk_index]))
            placement = _PartialPermutation(rng, self.blocks_per_disk)
            self._placements[disk_index] = placement
        return placement

    def lbn_of(self, disk_index, local_block_index):
        if local_block_index >= self.blocks_per_disk:
            raise ValueError(
                f"block slot {local_block_index} exceeds disk capacity "
                f"{self.blocks_per_disk}")
        placement = self._placement_for(disk_index)
        return placement.get(local_block_index) * self.sectors_per_block


_LAYOUTS = {
    ContiguousLayout.name: ContiguousLayout,
    RandomBlocksLayout.name: RandomBlocksLayout,
    # common aliases
    "random-blocks": RandomBlocksLayout,
    "random_blocks": RandomBlocksLayout,
}


def make_layout(name, spec, block_size, seed=0, start_block=0):
    """Construct a layout by name (``contiguous`` or ``random``/``random-blocks``).

    ``start_block`` positions a contiguous layout's extent base, which is how
    the :class:`~repro.fs.filesystem.FileSystem` gives several concurrently
    open files disjoint physical extents; random layouts ignore it (their
    placement is scattered over the whole disk and disambiguated by seed).
    """
    try:
        cls = _LAYOUTS[name]
    except KeyError:
        raise ValueError(f"unknown layout {name!r}; choose from {sorted(set(_LAYOUTS))}")
    if cls is RandomBlocksLayout:
        return cls(spec, block_size, seed=seed)
    return cls(spec, block_size, start_block=start_block)
