"""Physical placement of a file's blocks on each disk.

A layout answers one question: given that a disk holds the k-th, 2k-th, ...
stripe units of a file, at which logical block number (sector address) does
each of those stripe units live?  ``contiguous`` places them back to back;
``random-blocks`` scatters them uniformly over the disk, which is the paper's
stand-in for a badly aged / fully declustered file system (and also models a
request for an arbitrary subset of blocks of a much larger file).
"""

import numpy as np


class PhysicalLayout:
    """Base class: maps per-disk block slots to sector addresses."""

    name = "abstract"

    def __init__(self, spec, block_size):
        if block_size % spec.sector_size:
            raise ValueError(
                f"block size {block_size} is not a multiple of the sector size")
        self.spec = spec
        self.block_size = block_size
        self.sectors_per_block = block_size // spec.sector_size
        self.blocks_per_disk = spec.total_sectors // self.sectors_per_block

    def lbn_of(self, disk_index, local_block_index):
        """Sector address of the *local_block_index*-th file block on *disk_index*."""
        raise NotImplementedError

    def check_capacity(self, blocks_needed):
        """Raise if a single disk cannot hold *blocks_needed* file blocks."""
        if blocks_needed > self.blocks_per_disk:
            raise ValueError(
                f"file needs {blocks_needed} blocks per disk but the disk only has "
                f"{self.blocks_per_disk}")


class ContiguousLayout(PhysicalLayout):
    """File blocks laid out in consecutive physical blocks, starting at an extent base."""

    name = "contiguous"

    def __init__(self, spec, block_size, start_block=0):
        super().__init__(spec, block_size)
        if start_block < 0 or start_block >= self.blocks_per_disk:
            raise ValueError(f"start block {start_block} outside the disk")
        self.start_block = start_block

    def lbn_of(self, disk_index, local_block_index):
        physical_block = self.start_block + local_block_index
        if physical_block >= self.blocks_per_disk:
            raise ValueError(
                f"block slot {local_block_index} (+start {self.start_block}) "
                f"falls off the end of the disk")
        return physical_block * self.sectors_per_block

    def check_capacity(self, blocks_needed):
        """Raise if the extent starting at ``start_block`` cannot hold the file."""
        if self.start_block + blocks_needed > self.blocks_per_disk:
            raise ValueError(
                f"file needs {blocks_needed} blocks per disk at extent base "
                f"{self.start_block} but the disk only has {self.blocks_per_disk}")


class _PartialPermutation:
    """Lazily materialised prefix of a uniform random permutation of ``range(n)``.

    Classic Fisher–Yates, drawn only as far as requested: ``get(i)`` is the
    i-th entry of the permutation, and extending the prefix never changes
    entries already drawn.  Draws happen in fixed-size chunks whose boundaries
    are multiples of ``_CHUNK``, so the underlying random stream is consumed
    identically no matter in what order or how far the prefix is grown — the
    value at index *i* is a pure function of (rng seed, i).

    A full-disk permutation (what ``numpy.random.Generator.permutation``
    materialises) costs O(disk size); a file only ever touches a tiny prefix,
    so this is O(blocks actually placed).
    """

    #: Entries drawn per batch; boundaries are always multiples of this, which
    #: is what makes the prefix independent of the access pattern.
    _CHUNK = 128

    __slots__ = ("_rng", "_n", "_drawn", "_displaced")

    def __init__(self, rng, n):
        self._rng = rng
        self._n = n
        self._drawn = []       # permutation prefix materialised so far
        self._displaced = {}   # sparse tail: position -> value swapped into it

    def get(self, index):
        drawn = self._drawn
        if index >= len(drawn):
            self._extend(index + 1)
            drawn = self._drawn
        return drawn[index]

    def _extend(self, needed):
        chunk = self._CHUNK
        n = self._n
        target = min(-(-needed // chunk) * chunk, n)
        drawn = self._drawn
        displaced = self._displaced
        start = len(drawn)
        # One uniform double per entry; j = i + floor(u * (n - i)) is the
        # Fisher-Yates partner drawn from [i, n).  u < 1 guarantees j < n.
        for u in self._rng.random(target - start):
            i = start
            j = i + int(u * (n - i))
            value_i = displaced.pop(i, i)
            if j == i:
                drawn.append(value_i)
            else:
                drawn.append(displaced.pop(j, j))
                displaced[j] = value_i
            start += 1


class RandomBlocksLayout(PhysicalLayout):
    """File blocks placed at uniformly random (distinct) physical blocks.

    Each disk gets its own permutation, derived deterministically from the
    layout seed and the disk index so experiments are reproducible and every
    disk's placement is independent.  The permutation is drawn lazily (partial
    Fisher–Yates): only the prefix a file actually touches is materialised,
    and growing the prefix never changes already-placed blocks.
    """

    name = "random"

    def __init__(self, spec, block_size, seed=0, blocks_per_disk_needed=None):
        super().__init__(spec, block_size)
        self.seed = seed
        self._placements = {}
        self._blocks_hint = blocks_per_disk_needed

    def _placement_for(self, disk_index):
        placement = self._placements.get(disk_index)
        if placement is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, disk_index]))
            placement = _PartialPermutation(rng, self.blocks_per_disk)
            self._placements[disk_index] = placement
        return placement

    def lbn_of(self, disk_index, local_block_index):
        if local_block_index >= self.blocks_per_disk:
            raise ValueError(
                f"block slot {local_block_index} exceeds disk capacity "
                f"{self.blocks_per_disk}")
        placement = self._placement_for(disk_index)
        return placement.get(local_block_index) * self.sectors_per_block


class ParityLayout(PhysicalLayout):
    """Steers a data layout's block slots clear of rotated parity rows.

    Under ``redundancy="parity"`` physical block row ``r`` stores its parity
    on drive ``r % D`` (see :mod:`repro.disk.redundancy`), so drive ``d``
    must not place file data in rows where ``r % D == d``.  This wrapper
    shrinks the inner layout's slot space to the per-drive *data* capacity
    and remaps each chosen slot to the slot-th non-parity row: slot ``s``
    on drive ``d`` lands in row ``(s // (D-1)) * D + j`` where ``j`` skips
    over ``d`` within the group of ``D`` rows.  Contiguous extents stay
    contiguous-in-data-rows; random placements stay uniform over data rows;
    and with redundancy off nothing here is ever constructed, so existing
    placements are untouched.
    """

    name = "parity"

    def __init__(self, inner, n_disks):
        if n_disks < 3:
            raise ValueError(
                f"parity layouts need at least 3 drives, got {n_disks}")
        self.spec = inner.spec
        self.block_size = inner.block_size
        self.sectors_per_block = inner.sectors_per_block
        self.n_disks = n_disks
        #: rows physically present per drive (data + parity)
        self.physical_rows = inner.blocks_per_disk
        # Shrink the inner layout's slot space to the data capacity *before*
        # any placement is drawn: contiguous bounds checks and random
        # permutations then range over data slots, which this wrapper maps
        # to physical rows.  Ceil keeps the capacity uniform across drives.
        data_capacity = self.physical_rows - \
            -(-self.physical_rows // n_disks)
        inner.blocks_per_disk = data_capacity
        self.inner = inner
        self.blocks_per_disk = data_capacity
        #: expose the inner layout's name so the file-system's contiguous
        #: extent cursor keeps working (cursor units become data slots)
        self.name = inner.name

    def data_row(self, disk_index, slot):
        """The physical row of drive *disk_index*'s *slot*-th data block."""
        group, rem = divmod(slot, self.n_disks - 1)
        j = rem if rem < disk_index else rem + 1
        return group * self.n_disks + j

    def lbn_of(self, disk_index, local_block_index):
        slot_lbn = self.inner.lbn_of(disk_index, local_block_index)
        row = self.data_row(disk_index, slot_lbn // self.sectors_per_block)
        if row >= self.physical_rows:
            raise ValueError(
                f"data slot maps to row {row} past the last physical row "
                f"{self.physical_rows - 1}")
        return row * self.sectors_per_block

    def check_capacity(self, blocks_needed):
        self.inner.check_capacity(blocks_needed)


_LAYOUTS = {
    ContiguousLayout.name: ContiguousLayout,
    RandomBlocksLayout.name: RandomBlocksLayout,
    # common aliases
    "random-blocks": RandomBlocksLayout,
    "random_blocks": RandomBlocksLayout,
}


def make_layout(name, spec, block_size, seed=0, start_block=0,
                redundancy="none", n_disks=None):
    """Construct a layout by name (``contiguous`` or ``random``/``random-blocks``).

    ``start_block`` positions a contiguous layout's extent base, which is how
    the :class:`~repro.fs.filesystem.FileSystem` gives several concurrently
    open files disjoint physical extents; random layouts ignore it (their
    placement is scattered over the whole disk and disambiguated by seed).

    ``redundancy="parity"`` (with ``n_disks`` giving the array width) wraps
    the layout in a :class:`ParityLayout` so data placement skips each
    drive's rotated parity rows; the default ``"none"`` changes nothing.
    """
    try:
        cls = _LAYOUTS[name]
    except KeyError:
        raise ValueError(f"unknown layout {name!r}; choose from {sorted(set(_LAYOUTS))}")
    if redundancy not in ("none", "parity"):
        raise ValueError(
            f"unknown redundancy {redundancy!r} (choose from ('none', 'parity'))")
    if cls is RandomBlocksLayout:
        layout = cls(spec, block_size, seed=seed)
    else:
        layout = cls(spec, block_size, start_block=start_block)
    if redundancy == "parity":
        if n_disks is None:
            raise ValueError("parity layouts need the array width (n_disks)")
        layout = ParityLayout(layout, n_disks)
    return layout
