"""A small metadata manager tying files, layouts and the machine together."""

from repro.fs.file import StripedFile
from repro.fs.layout import make_layout


class FileSystem:
    """Creates and tracks striped files on a particular machine configuration.

    This object owns no simulation state; it exists so that examples and the
    experiment harness can say "give me a 10 MB file on a random-blocks
    layout" without repeating the plumbing.
    """

    def __init__(self, config, layout_seed=0):
        self.config = config
        self.layout_seed = layout_seed
        self.files = {}

    def create_file(self, name, size_bytes, layout="contiguous", layout_seed=None):
        """Create (the metadata of) a striped file and remember it by name."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        seed = self.layout_seed if layout_seed is None else layout_seed
        physical = make_layout(layout, self.config.disk_spec,
                               self.config.block_size, seed=seed)
        striped = StripedFile(
            name=name,
            size_bytes=size_bytes,
            block_size=self.config.block_size,
            n_disks=self.config.n_disks,
            layout=physical,
        )
        self.files[name] = striped
        return striped

    def open(self, name):
        """Look up a previously created file."""
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(f"no such simulated file: {name!r}")

    def remove(self, name):
        """Forget a file's metadata."""
        if name not in self.files:
            raise FileNotFoundError(f"no such simulated file: {name!r}")
        del self.files[name]
