"""A small metadata manager tying files, layouts and the machine together."""

import math

import numpy as np

from repro.fs.file import StripedFile
from repro.fs.layout import make_layout


class FileSystem:
    """Creates and tracks striped files on a particular machine configuration.

    This object owns no simulation state; it exists so that examples and the
    experiment harness can say "give me a 10 MB file on a random-blocks
    layout" without repeating the plumbing.

    Several files may be open concurrently, each with an independent layout:

    * contiguous files are placed in disjoint physical extents (the manager
      keeps a per-disk allocation cursor, so a second file starts where the
      first one's extent ends);
    * random-blocks files each get their own placement seed, derived
      deterministically from the file-system seed and the file's creation
      index, so two files never share a permutation (and results stay
      reproducible).
    """

    def __init__(self, config, layout_seed=0, redundancy="none"):
        self.config = config
        self.layout_seed = layout_seed
        #: ``"parity"`` makes every layout parity-aware (data placement
        #: skips each drive's rotated parity rows, see
        #: :class:`repro.fs.layout.ParityLayout`); must match the machine's
        #: ``redundancy`` axis.  The default changes nothing.
        self.redundancy = redundancy
        self.files = {}
        #: creation counter; drives per-file seed derivation
        self._files_created = 0
        #: per-disk allocation cursor (in blocks) for contiguous extents
        self._next_start_block = 0

    def _derived_seed(self, file_index):
        """Layout seed for the *file_index*-th file.

        The first file uses the file-system seed unchanged (identical to the
        original single-file behaviour, which every paper experiment pins);
        later files derive an independent seed from (seed, index).
        """
        if file_index == 0:
            return self.layout_seed
        return int(np.random.SeedSequence(
            [self.layout_seed, file_index]).generate_state(1)[0])

    def create_file(self, name, size_bytes, layout="contiguous", layout_seed=None):
        """Create (the metadata of) a striped file and remember it by name."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if layout_seed is None:
            seed = self._derived_seed(self._files_created)
        else:
            seed = layout_seed
        blocks_per_disk = math.ceil(
            math.ceil(size_bytes / self.config.block_size) / self.config.n_disks)
        physical = make_layout(layout, self.config.disk_spec,
                               self.config.block_size, seed=seed,
                               start_block=self._next_start_block,
                               redundancy=self.redundancy,
                               n_disks=self.config.n_disks)
        striped = StripedFile(
            name=name,
            size_bytes=size_bytes,
            block_size=self.config.block_size,
            n_disks=self.config.n_disks,
            layout=physical,
        )
        self.files[name] = striped
        self._files_created += 1
        if physical.name == "contiguous":
            # Reserve the extent so the next contiguous file starts after it.
            self._next_start_block += blocks_per_disk
        return striped

    def open(self, name):
        """Look up a previously created file."""
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(f"no such simulated file: {name!r}")

    def open_files(self):
        """All currently-open files, in creation order."""
        return list(self.files.values())

    def remove(self, name):
        """Forget a file's metadata.

        Contiguous extents are not compacted: the allocation cursor only ever
        moves forward.  A simulated disk is large relative to the files the
        experiments create, so fragmentation is not a concern.
        """
        if name not in self.files:
            raise FileNotFoundError(f"no such simulated file: {name!r}")
        del self.files[name]
