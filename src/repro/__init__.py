"""repro: a reproduction of "Disk-Directed I/O for MIMD Multiprocessors" (Kotz, OSDI '94).

The package simulates a distributed-memory MIMD multiprocessor (compute
processors + I/O processors + HP 97560 disks + SCSI busses + torus
interconnect) and implements three collective-I/O strategies on top of it:
traditional caching, disk-directed I/O (the paper's contribution, with and
without physical presorting), and two-phase I/O (extension).

Quick start::

    from repro import (MachineConfig, Machine, FileSystem, make_pattern,
                       DiskDirectedFS, TraditionalCachingFS)

    config = MachineConfig()                       # Table 1 defaults
    machine = Machine(config, seed=1)
    fs = FileSystem(config)
    big_file = fs.create_file("matrix", 10 * 2**20, layout="contiguous")
    pattern = make_pattern("rb", big_file.size_bytes, record_size=8192,
                           n_cps=config.n_cps)
    result = DiskDirectedFS(machine, big_file).transfer(pattern)
    print(result.summary())

See ``examples/`` for runnable scenarios and ``repro.experiments`` for the
harness that regenerates every figure in the paper's evaluation.
"""

from repro.core import (
    CollectiveFileSystem,
    DiskDirectedFS,
    TraditionalCachingFS,
    TransferResult,
    TwoPhaseFS,
    make_filesystem,
)
from repro.fs import FileSystem, StripedFile, make_layout
from repro.machine import CostModel, Machine, MachineConfig
from repro.patterns import (
    PATTERN_NAMES,
    READ_PATTERN_NAMES,
    WRITE_PATTERN_NAMES,
    make_pattern,
)

__version__ = "1.0.0"

__all__ = [
    "CollectiveFileSystem",
    "CostModel",
    "DiskDirectedFS",
    "FileSystem",
    "Machine",
    "MachineConfig",
    "PATTERN_NAMES",
    "READ_PATTERN_NAMES",
    "StripedFile",
    "TraditionalCachingFS",
    "TransferResult",
    "TwoPhaseFS",
    "WRITE_PATTERN_NAMES",
    "__version__",
    "make_filesystem",
    "make_layout",
    "make_pattern",
]
