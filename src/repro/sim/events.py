"""Event primitives for the simulation kernel.

An :class:`Event` is the unit of synchronisation: processes yield events and
are resumed when the event is *processed* (popped from the event queue and its
callbacks run).  Events carry a value (delivered to waiters) or an exception
(raised in waiters).
"""

from repro.sim.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states:

    * *untriggered* — created but not yet succeeded/failed;
    * *triggered* — a value or exception has been set and the event is in the
      environment's queue;
    * *processed* — the environment has popped it and run its callbacks.
    """

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self):
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return self._ok

    @property
    def value(self):
        """The value the event succeeded with (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value=None):
        """Mark the event successful and schedule its callbacks for *now*."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception):
        """Mark the event failed with *exception*; waiters will see it raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event):
        """Copy the outcome of another (processed) event onto this one."""
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)
        return self

    def defuse(self):
        """Mark a failed event as handled so the engine does not re-raise it."""
        self._defused = True

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds automatically after a simulated delay."""

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self):
        """The delay this timeout was created with."""
        return self._delay


class ConditionValue(dict):
    """Mapping of event -> value returned by :class:`AllOf` / :class:`AnyOf`."""


class _Condition(Event):
    """Base class for composite events over a fixed set of child events."""

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                self._pending += 1
                event.callbacks.append(self._on_child)
        self._check_initial()

    # Subclasses decide when the condition is satisfied.
    def _satisfied(self):
        raise NotImplementedError

    def _check_initial(self):
        if not self.triggered and self._satisfied():
            self._finish()

    def _on_child(self, event):
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        if self._satisfied():
            self._finish()

    def _finish(self):
        result = ConditionValue()
        for event in self._events:
            if event.processed and event.ok:
                result[event] = event.value
        self.succeed(result)


class AllOf(_Condition):
    """Succeeds when *all* child events have been processed successfully."""

    def _satisfied(self):
        return all(event.processed and event.ok for event in self._events)


class AnyOf(_Condition):
    """Succeeds as soon as *any* child event has been processed successfully."""

    def _satisfied(self):
        if not self._events:
            return True
        return any(event.processed and event.ok for event in self._events)
