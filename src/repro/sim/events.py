"""Event primitives for the simulation kernel.

An :class:`Event` is the unit of synchronisation: processes yield events and
are resumed when the event is *processed* (popped from the event queue and its
callbacks run).  Events carry a value (delivered to waiters) or an exception
(raised in waiters).

This module is the hottest code in the simulator (one Event per disk rotation,
bus hop, message and CPU charge), so the classes use ``__slots__`` and the
state checks read the underlying attributes directly instead of going through
the public properties.
"""

from repro.sim.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states:

    * *untriggered* — created but not yet succeeded/failed;
    * *triggered* — a value or exception has been set and the event is in the
      environment's queue;
    * *processed* — the environment has popped it and run its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self):
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return self._ok

    @property
    def value(self):
        """The value the event succeeded with (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value=None):
        """Mark the event successful and schedule its callbacks for *now*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule_now(self)
        return self

    def fail(self, exception):
        """Mark the event failed with *exception*; waiters will see it raised."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule_now(self)
        return self

    def trigger(self, event):
        """Copy the outcome of another (processed) event onto this one."""
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)
        return self

    def defuse(self):
        """Mark a failed event as handled so the engine does not re-raise it."""
        self._defused = True

    def __repr__(self):
        state = "processed" if self.callbacks is None else (
            "triggered" if self._value is not _PENDING else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds automatically after a simulated delay.

    The constructor is flattened (no ``super().__init__`` / ``succeed`` /
    ``schedule`` chain): a timeout is born triggered, so it goes straight
    into the environment's queue.  This is the single most frequently built
    object in a simulation run.
    """

    __slots__ = ("_delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._delay = delay
        env._schedule_at(env._now + delay, self)

    @property
    def delay(self):
        """The delay this timeout was created with."""
        return self._delay


def chain(source, target):
    """Succeed the placeholder *target* with *source*'s value when it fires.

    Used where an event must be handed out *before* the event it stands for
    exists (e.g. a shared disk queue returns a media-completion placeholder
    at submit time and chains it to the drive's real event at dispatch
    time).  Failure of *source* is not propagated — placeholders are only
    used for success-path completions in this codebase.
    """
    def _propagate(event):
        if event._ok and not target.triggered:
            target.succeed(event._value)
    if source.callbacks is None:  # already processed
        if source._ok and not target.triggered:
            target.succeed(source._value)
    else:
        source.callbacks.append(_propagate)


class ConditionValue(dict):
    """Mapping of event -> value returned by :class:`AllOf` / :class:`AnyOf`."""


class _Condition(Event):
    """Base class for composite events over a fixed set of child events.

    Satisfaction is tracked with a pending counter updated once per child
    callback, so waiting on N children costs O(N) total rather than the
    O(N^2) of re-scanning the child list from every callback.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env, events):
        super().__init__(env)
        self._events = events = list(events)
        for event in events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        pending = 0
        on_child = self._on_child
        for event in events:
            if event.callbacks is None:  # already processed
                if not event._ok and self._value is _PENDING:
                    event._defused = True
                    self.fail(event._value)
            else:
                pending += 1
                event.callbacks.append(on_child)
        self._pending = pending
        if self._value is _PENDING and self._initially_satisfied():
            self._finish()

    # Subclasses decide when the condition is satisfied.
    def _initially_satisfied(self):
        """Whether the condition already holds at construction time."""
        raise NotImplementedError

    def _child_succeeded(self):
        """Whether one more successful child completes the condition."""
        raise NotImplementedError

    def _on_child(self, event):
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._child_succeeded():
            self._finish()

    def _finish(self):
        result = ConditionValue()
        for event in self._events:
            if event.callbacks is None and event._ok:
                result[event] = event._value
        self.succeed(result)


class AllOf(_Condition):
    """Succeeds when *all* child events have been processed successfully."""

    __slots__ = ()

    def _initially_satisfied(self):
        return self._pending == 0

    def _child_succeeded(self):
        return self._pending == 0


class AnyOf(_Condition):
    """Succeeds as soon as *any* child event has been processed successfully."""

    __slots__ = ()

    def _initially_satisfied(self):
        if not self._events:
            return True
        return any(e.callbacks is None and e._ok for e in self._events)

    def _child_succeeded(self):
        return True
