"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class DeadlockError(SimulationError):
    """The simulation can no longer make progress.

    Raised instead of hanging (or silently running out of events) when the
    calendar empties while a waited-on event is still pending, or when the
    watchdog sees events firing without simulated time ever advancing.  The
    message names the processes that are still alive and what each one is
    waiting on, so a stuck run is diagnosable from the traceback alone.
    """


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early with a value.

    Returning from the generator is the normal way to finish; ``StopProcess``
    exists for code that needs to terminate from deep inside helper calls.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupted process may catch the exception and continue; the
    ``cause`` attribute carries whatever object the interrupter supplied.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
