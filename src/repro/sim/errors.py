"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early with a value.

    Returning from the generator is the normal way to finish; ``StopProcess``
    exists for code that needs to terminate from deep inside helper calls.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupted process may catch the exception and continue; the
    ``cause`` attribute carries whatever object the interrupter supplied.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
