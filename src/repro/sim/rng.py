"""Deterministic random-number streams for reproducible experiments.

Each experiment trial gets its own seed; each stochastic component (disk
layout, initial rotational positions, network jitter) draws from its own
child stream so adding a new component never perturbs existing ones.
"""

import zlib

import numpy as np


def spawn_seeds(root_seed, n):
    """Derive *n* independent child seeds from *root_seed* (deterministically)."""
    sequence = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(n)]


class RandomStreams:
    """A named collection of independent :class:`numpy.random.Generator` streams."""

    #: Stream names allocated in a fixed order so results are stable even if
    #: call sites request them in different orders.
    DEFAULT_STREAMS = (
        "disk_layout",
        "rotation",
        "network",
        "workload",
        "misc",
    )

    def __init__(self, seed, stream_names=DEFAULT_STREAMS):
        self.seed = seed
        self._streams = {}
        sequence = np.random.SeedSequence(seed)
        children = sequence.spawn(len(stream_names))
        for name, child in zip(stream_names, children):
            self._streams[name] = np.random.default_rng(child)

    def stream(self, name):
        """Return the generator for *name* (creating an ad-hoc one if unknown)."""
        if name not in self._streams:
            # Derive deterministically from the seed and the name.  The hash
            # must be stable across *processes* (``hash()`` is salted by
            # PYTHONHASHSEED), or a parallel sweep's workers would disagree
            # with a serial run about any ad-hoc stream.
            digest = zlib.crc32(name.encode("utf-8"))
            derived = np.random.SeedSequence([self.seed, digest])
            self._streams[name] = np.random.default_rng(derived)
        return self._streams[name]

    def __getitem__(self, name):
        return self.stream(name)
