"""Discrete-event simulation kernel used by every other subsystem.

This package is the reproduction's stand-in for the Proteus
parallel-architecture simulator used in the paper.  It provides:

* an event loop with a virtual clock (:class:`~repro.sim.engine.Environment`),
* generator-based processes (:class:`~repro.sim.process.Process`),
* synchronisation primitives (events, timeouts, :class:`~repro.sim.events.AllOf`,
  :class:`~repro.sim.events.AnyOf`, barriers),
* resources and FIFO stores for modelling busses, NICs and queues,
* statistics helpers for utilisation and time-weighted averages, and
* deterministic random-number streams.

The API deliberately resembles SimPy so that the modelling code in
``repro.disk``, ``repro.network`` and ``repro.core`` reads like ordinary
process-oriented simulation code, but the kernel is self-contained (no
third-party simulation dependency is available in this environment).
"""

from repro.sim.engine import Environment
from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Preempted, Resource
from repro.sim.rng import RandomStreams, spawn_seeds
from repro.sim.stats import Counter, TimeWeightedValue, UtilizationTracker
from repro.sim.stores import PriorityStore, Store
from repro.sim.sync import Barrier, CountDownLatch

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "CountDownLatch",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "Preempted",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "StopProcess",
    "Store",
    "TimeWeightedValue",
    "Timeout",
    "UtilizationTracker",
    "spawn_seeds",
]
