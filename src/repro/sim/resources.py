"""Capacity-limited resources (busses, NIC ports, CPU slots...).

The model mirrors SimPy's ``Resource``: ``request()`` returns an event that
fires once a slot is available; ``release(request)`` frees the slot.  The
``using`` context-style helper is provided via :meth:`Resource.acquire` for
the common acquire/hold/release idiom inside process generators.

Every bus hop and CPU charge goes through a resource, so the waiter queue is a
deque (O(1) FIFO handoff) and :class:`Request` carries ``__slots__``.
"""

from collections import deque

from repro.sim.events import Event, Timeout
from repro.sim.stats import UtilizationTracker


class Preempted(Exception):
    """Raised in a process whose resource slot was forcibly reclaimed."""


class Request(Event):
    """The event returned by :meth:`Resource.request`."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """A FIFO resource with fixed integer capacity.

    Typical use inside a process::

        req = bus.request()
        yield req
        yield env.timeout(transfer_time)
        bus.release(req)
    """

    __slots__ = ("env", "capacity", "name", "_users", "_waiters", "utilization")

    def __init__(self, env, capacity=1, name=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"resource@{id(self):#x}"
        self._users = []
        self._waiters = deque()
        self.utilization = UtilizationTracker(env, capacity=capacity)

    # -- introspection --------------------------------------------------------
    @property
    def count(self):
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self):
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    # -- core API ----------------------------------------------------------------
    def request(self):
        """Ask for a slot; returns an event that fires when the slot is granted."""
        req = Request(self)
        users = self._users
        if len(users) < self.capacity:
            users.append(req)
            self.utilization.set(len(users))
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request):
        """Return a previously granted slot."""
        users = self._users
        try:
            users.remove(request)
        except ValueError:
            raise ValueError("release() of a request that does not hold this resource")
        waiters = self._waiters
        while waiters and len(users) < self.capacity:
            nxt = waiters.popleft()
            users.append(nxt)
            nxt.succeed()
        self.utilization.set(len(users))

    def acquire(self, hold_time):
        """Convenience process-fragment: acquire, hold for *hold_time*, release.

        Usage: ``yield from resource.acquire(duration)``.

        When a slot is free the grant is synchronous: nothing enters the
        event queue for it, so an uncontended acquire costs a single
        simulator event (the hold timeout) instead of two — and the timeout
        itself doubles as the slot token, so no :class:`Request` is built at
        all.  Every CPU charge and bus hop goes through here (or through
        :meth:`acquire_event`), which makes this the single biggest
        event-count lever in the simulator.  A full resource still queues a
        :class:`Request` and yields it, so FIFO ordering under contention is
        unchanged.
        """
        users = self._users
        if len(users) < self.capacity:
            token = Timeout(self.env, hold_time)
            users.append(token)
            self.utilization.set(len(users))
            try:
                yield token
            finally:
                self.release(token)
        else:
            req = Request(self)
            self._waiters.append(req)
            yield req
            try:
                yield self.env.timeout(hold_time)
            finally:
                self.release(req)

    def acquire_event(self, hold_time):
        """Non-generator fast path: the whole acquire/hold/release as one event.

        When a slot is free, returns a single :class:`Timeout` to yield —
        the grant is synchronous (as in :meth:`acquire`), the timeout itself
        is the slot token, and the release is attached as the timeout's
        first callback, so it runs at expiry *before* the waiting process
        resumes: exactly the effect order of the generator path, without the
        generator frame.  Returns ``None`` when the resource is full; the
        caller falls back to :meth:`acquire`::

            event = resource.acquire_event(hold)
            if event is None:
                yield from resource.acquire(hold)
            else:
                yield event

        Caveat: because the release rides on the timeout rather than on a
        ``finally``, a process interrupted mid-hold would release at expiry,
        not at interrupt time.  The hot paths using this (CPU charges, bus
        hops, NIC serialisation) are never interrupted.
        """
        users = self._users
        if len(users) >= self.capacity:
            return None
        timeout = Timeout(self.env, hold_time)
        users.append(timeout)
        self.utilization.set(len(users))
        timeout.callbacks.append(lambda _event: self.release(timeout))
        return timeout

    def __repr__(self):
        return (f"<Resource {self.name} {self.count}/{self.capacity} used, "
                f"{self.queue_length} waiting>")
