"""The simulation environment: virtual clock plus event queue.

The run loops are deliberately flat: popping an event, advancing the clock and
running the callbacks happens inline (rather than through :meth:`step`) so the
per-event cost is a handful of bytecodes.  :meth:`step` remains the one-event
reference implementation for tests and debugging; the inlined bodies must stay
in sync with it.
"""

from heapq import heappop, heappush

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for "urgent" events (processed before normal ones at equal time).
URGENT = 0


class Environment:
    """Holds the simulation clock and the pending-event queue.

    All model objects (disks, busses, NICs, caches, processes) are created
    against a single :class:`Environment`; calling :meth:`run` advances the
    virtual clock by popping events in time order and resuming the processes
    waiting on them.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process")

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        self._eid = 0
        self._active_process = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed (None outside callbacks)."""
        return self._active_process

    # -- event construction helpers ------------------------------------------
    def event(self):
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires after *delay* seconds of simulated time."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start a new :class:`Process` running *generator*."""
        return Process(self, generator)

    def all_of(self, events):
        """Composite event succeeding when every event in *events* succeeds."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event succeeding when the first event in *events* succeeds."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Insert *event* into the queue, to be processed after *delay*."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def _schedule_now(self, event):
        """Fast path used by ``Event.succeed``/``fail``: no delay arithmetic."""
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now, NORMAL, eid, event))

    def _schedule_at(self, when, event):
        """Fast path used by ``Timeout``: the delay was already validated."""
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (when, NORMAL, eid, event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self):
        """Process exactly one event (advancing the clock to its time)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _eid, event = heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An event failed and nobody was waiting to handle the failure:
            # surface the original exception rather than losing it.
            raise event._value

    def run(self, until=None):
        """Run until the queue empties, *until* time passes, or *until* event fires.

        ``until`` may be ``None`` (run to exhaustion), a number (absolute
        simulated time), or an :class:`Event` (run until it is processed and
        return its value).
        """
        queue = self._queue

        if until is None:
            while queue:
                when, _priority, _eid, event = heappop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            sentinel = until
            while sentinel.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired "
                        "(deadlock: a process is waiting on something that never happens)")
                when, _priority, _eid, event = heappop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value

        stop_at = float(until)
        if stop_at < self._now:
            raise ValueError(f"until={stop_at} is in the past (now={self._now})")
        while queue and queue[0][0] <= stop_at:
            when, _priority, _eid, event = heappop(queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = stop_at
        return None
