"""The simulation environment: virtual clock plus a two-tier event calendar.

The calendar has two tiers:

* a FIFO **ring** (`collections.deque`) holding events scheduled *at the
  current instant* with NORMAL priority — the ``Event.succeed()`` /
  ``fail()`` / message-delivery path, which is the large majority of all
  scheduling in a protocol simulation.  Ring entries are appended in eid
  order and the clock never moves backwards, so the ring is always sorted
  by ``(time, key)`` without any heap discipline: O(1) push, O(1) pop.
* the classic binary **heap** for everything else (future timeouts, urgent
  events, explicit ``schedule()`` calls).

Entries in both tiers are ``(time, key, event)`` 3-tuples where *key* folds
the old ``(priority, eid)`` pair into a single integer (see
:func:`_priority_key`), so a pop is one tuple comparison between the two
heads.  Pops interleave the tiers in exact ``(time, priority, eid)`` order,
which makes the two-tier calendar observationally identical to the previous
single-heap implementation — ``tests/sim/test_calendar.py`` property-tests
the equivalence against a reference heap.

The run loops are deliberately flat: popping an event, advancing the clock
and running the callbacks happens inline (rather than through :meth:`step`)
so the per-event cost is a handful of bytecodes.  :meth:`step` remains the
one-event reference implementation for tests and debugging; the inlined
bodies must stay in sync with it.
"""

import time
import weakref
from collections import deque
from heapq import heappop, heappush

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for "urgent" events (processed before normal ones at equal time).
URGENT = 0

#: Key-space stride separating one priority level from the next.  Event ids
#: are allocated sequentially and would need ~146 years at a billion events
#: per second to reach it, so ``(priority - NORMAL) * _PRIORITY_STRIDE + eid``
#: orders exactly like the old ``(priority, eid)`` pair while fitting in one
#: integer: URGENT keys are negative, NORMAL keys are the bare eid.
_PRIORITY_STRIDE = 1 << 62


class Environment:
    """Holds the simulation clock and the pending-event calendar.

    All model objects (disks, busses, NICs, caches, processes) are created
    against a single :class:`Environment`; calling :meth:`run` advances the
    virtual clock by popping events in time order and resuming the processes
    waiting on them.
    """

    __slots__ = ("_now", "_heap", "_ring", "_eid", "_active_process",
                 "_processes")

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._heap = []
        self._ring = deque()
        self._eid = 0
        self._active_process = None
        self._processes = weakref.WeakSet()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed (None outside callbacks)."""
        return self._active_process

    # -- event construction helpers ------------------------------------------
    def event(self):
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires after *delay* seconds of simulated time."""
        return Timeout(self, delay, value)

    def event_at(self, when):
        """A pre-succeeded event processed at the absolute instant *when*.

        Like ``timeout(when - now)``, except the target time is taken
        verbatim: ``now + (when - now)`` does not always round back to
        ``when`` in floating point.  Delay fusion in the device models uses
        this to land a single fused timeout on exactly the instant the
        unfused sequence of timeouts would have reached.
        """
        if when < self._now:
            raise ValueError(f"event_at({when!r}) is in the past (now={self._now})")
        event = Event(self)
        event._ok = True
        event._value = None
        self._schedule_at(when, event)
        return event

    def process(self, generator):
        """Start a new :class:`Process` running *generator*."""
        return Process(self, generator)

    def all_of(self, events):
        """Composite event succeeding when every event in *events* succeeds."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event succeeding when the first event in *events* succeeds."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Insert *event* into the calendar, to be processed after *delay*.

        *priority* must be an integer; lower values are processed first among
        events at the same time (the kernel uses :data:`URGENT` and
        :data:`NORMAL`).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        eid = self._eid
        self._eid = eid + 1
        when = self._now + delay
        if priority == NORMAL:
            if when == self._now:
                self._ring.append((when, eid, event))
                return
            key = eid
        else:
            key = (priority - NORMAL) * _PRIORITY_STRIDE + eid
        heappush(self._heap, (when, key, event))

    def _schedule_now(self, event):
        """Fast path used by ``Event.succeed``/``fail``: straight to the ring."""
        eid = self._eid
        self._eid = eid + 1
        self._ring.append((self._now, eid, event))

    def _schedule_at(self, when, event):
        """Fast path used by ``Timeout``: the delay was already validated."""
        eid = self._eid
        self._eid = eid + 1
        if when == self._now:
            self._ring.append((when, eid, event))
        else:
            heappush(self._heap, (when, eid, event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        if self._ring:
            # Ring entries are at the current instant: nothing can precede them.
            return self._ring[0][0]
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def _pop(self):
        """Remove and return the next ``(time, key, event)`` entry in order.

        Key ordering is total across the two tiers (keys embed the unique
        eid), so one tuple comparison between the heads decides the pop.
        """
        ring = self._ring
        if ring:
            if not self._heap or ring[0] < self._heap[0]:
                return ring.popleft()
            return heappop(self._heap)
        if not self._heap:
            raise SimulationError("pop from an empty event calendar")
        return heappop(self._heap)

    def step(self):
        """Process exactly one event (advancing the clock to its time)."""
        if not self._ring and not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _key, event = self._pop()
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An event failed and nobody was waiting to handle the failure:
            # surface the original exception rather than losing it.
            raise event._value

    def _deadlock(self, reason):
        """Build a :class:`DeadlockError` naming the still-alive processes.

        Processes register weakly at construction, so the diagnosis can list
        who is stuck and what each one is waiting on — turning "the run just
        stopped" into an actionable traceback.  Names are sorted for stable
        messages (WeakSet iteration order is arbitrary).
        """
        stuck = sorted(
            (process for process in self._processes if process.is_alive),
            key=lambda process: process.name)
        lines = [f"{reason} [t={self._now:.6g}]"]
        if stuck:
            lines.append(f"{len(stuck)} process(es) still alive:")
            for process in stuck[:20]:
                target = process._waiting_on
                waiting = f"waiting on {target!r}" if target is not None \
                    else "not waiting on any event"
                lines.append(f"  - {process.name}: {waiting}")
            if len(stuck) > 20:
                lines.append(f"  ... and {len(stuck) - 20} more")
        else:
            lines.append("no registered processes are alive (the awaited "
                         "event has no producer)")
        return DeadlockError("\n".join(lines))

    def run(self, until=None, watchdog=None):
        """Run until the calendar empties, *until* time passes, or *until* fires.

        ``until`` may be ``None`` (run to exhaustion), a number (absolute
        simulated time), or an :class:`Event` (run until it is processed and
        return its value).

        ``watchdog``, if given, is a wall-clock budget in seconds: if that
        much real time passes without simulated time advancing (events firing
        forever at one instant, or a callback spinning), the run raises
        :class:`DeadlockError` naming the stuck processes instead of hanging.
        The watched loop is generic (not inlined), so leave ``watchdog=None``
        on hot paths.
        """
        if watchdog is not None:
            return self._run_watched(until, watchdog)
        heap = self._heap
        ring = self._ring
        ring_popleft = ring.popleft

        if until is None:
            while ring or heap:
                if ring and (not heap or ring[0] < heap[0]):
                    when, _key, event = ring_popleft()
                else:
                    when, _key, event = heappop(heap)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            sentinel = until
            while sentinel.callbacks is not None:
                if ring and (not heap or ring[0] < heap[0]):
                    when, _key, event = ring_popleft()
                elif heap:
                    when, _key, event = heappop(heap)
                else:
                    raise self._deadlock(
                        "simulation ran out of events before the awaited event "
                        "fired (a process is waiting on something that never "
                        "happens)")
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value

        stop_at = float(until)
        if stop_at < self._now:
            raise ValueError(f"until={stop_at} is in the past (now={self._now})")
        while True:
            if ring and (not heap or ring[0] < heap[0]):
                if ring[0][0] > stop_at:
                    break
                when, _key, event = ring_popleft()
            elif heap:
                if heap[0][0] > stop_at:
                    break
                when, _key, event = heappop(heap)
            else:
                break
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = stop_at
        return None

    #: Events between watchdog wall-clock checks.  Large enough that the
    #: ``time.monotonic`` call is noise, small enough that a livelock is
    #: caught within a fraction of the budget.
    _WATCHDOG_STRIDE = 4096

    def _run_watched(self, until, watchdog):
        """The watchdog-instrumented run loop (reference-style, not inlined).

        Semantics match :meth:`run` for every ``until`` mode, with two extra
        failure conversions: an empty calendar below the sentinel raises the
        same diagnosed :class:`DeadlockError` as the fast loop, and a stall —
        *watchdog* wall-seconds elapsing while ``now`` stays put — raises one
        too instead of spinning forever.
        """
        if watchdog <= 0:
            raise ValueError(f"watchdog budget must be positive, got {watchdog!r}")
        sentinel = until if isinstance(until, Event) else None
        stop_at = None
        if until is not None and sentinel is None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")
        countdown = self._WATCHDOG_STRIDE
        last_advance_wall = time.monotonic()
        last_advance_sim = self._now
        while True:
            if sentinel is not None and sentinel.callbacks is None:
                if sentinel._ok:
                    return sentinel._value
                raise sentinel._value
            if not self._ring and not self._heap:
                if sentinel is not None:
                    raise self._deadlock(
                        "simulation ran out of events before the awaited event "
                        "fired (a process is waiting on something that never "
                        "happens)")
                if stop_at is not None:
                    self._now = stop_at
                return None
            if stop_at is not None and self.peek() > stop_at:
                self._now = stop_at
                return None
            self.step()
            countdown -= 1
            if countdown <= 0:
                countdown = self._WATCHDOG_STRIDE
                if self._now > last_advance_sim:
                    last_advance_sim = self._now
                    last_advance_wall = time.monotonic()
                elif time.monotonic() - last_advance_wall > watchdog:
                    raise self._deadlock(
                        f"watchdog expired: {watchdog:g}s of wall time passed "
                        f"without simulated time advancing (livelock at one "
                        f"instant, or a stalled callback)")
