"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`~repro.sim.events.Event`
objects.  When a yielded event is processed, the process is resumed with the
event's value (or the event's exception is thrown into the generator).  The
process object is itself an event that succeeds with the generator's return
value, so processes can wait for each other simply by yielding them.

:meth:`Process._resume` is the single hottest function in the simulator (it
runs once per processed event with a waiter), so the common success path is
fully inlined there; the rarely-taken throw paths (failures, interrupts) go
through :meth:`Process._step`.  The two must stay behaviourally in sync.
"""

from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import _PENDING, Event


class _Interruption(Event):
    """Internal event used to deliver :meth:`Process.interrupt`."""

    __slots__ = ("_interrupt_cause",)


class Process(Event):
    """A running simulation process (also usable as a "join" event)."""

    __slots__ = ("_generator", "_waiting_on", "__weakref__")

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(env)
        self._generator = generator
        self._waiting_on = None
        registry = getattr(env, "_processes", None)
        if registry is not None:
            # Weak registration: lets the environment name still-alive
            # processes in DeadlockError diagnoses without keeping finished
            # processes (or their generator frames) alive.
            registry.add(self)
        # Kick the generator off via an initial event so that process start
        # happens inside the event loop, in creation order.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed()

    # -- public API -----------------------------------------------------------
    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    @property
    def name(self):
        """Best-effort human-readable name (the generator function's name)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interruption = _Interruption(self.env)
        interruption._interrupt_cause = cause
        interruption.callbacks.append(self._deliver_interrupt)
        interruption.succeed()

    # -- internals --------------------------------------------------------------
    def _deliver_interrupt(self, interruption):
        if self._value is not _PENDING:
            return  # finished between scheduling and delivery
        # Detach from whatever we were waiting on so the stale resume is ignored.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(throw=Interrupt(interruption._interrupt_cause))

    def _resume(self, event):
        waiting_on = self._waiting_on
        if waiting_on is not None and event is not waiting_on:
            return  # stale wakeup (we were interrupted away from this event)
        self._waiting_on = None
        ok = event._ok
        if ok or ok is None:
            # Inlined success path of _step (the overwhelmingly common case).
            env = self.env
            previous = env._active_process
            env._active_process = self
            try:
                value = event._value
                target = self._generator.send(
                    value if value is not _PENDING else None)
            except StopIteration as stop:
                env._active_process = previous
                self.succeed(stop.value)
                return
            except StopProcess as stop:
                env._active_process = previous
                self.succeed(stop.value)
                return
            except Interrupt as interrupt:
                # The generator chose not to handle an interrupt: treat as failure.
                env._active_process = previous
                self.fail(interrupt)
                return
            except Exception as exc:  # model error inside the process
                env._active_process = previous
                self.fail(exc)
                return
            finally:
                # Mirrors _step: restore even when a BaseException (e.g.
                # KeyboardInterrupt) escapes the generator.
                env._active_process = previous
            # Inlined _wait_for fast path: attach to a live event (the
            # overwhelmingly common case); anything else goes the slow way.
            if isinstance(target, Event) and target.callbacks is not None:
                target.callbacks.append(self._resume)
                self._waiting_on = target
            else:
                self._wait_for(target)
        else:
            event._defused = True
            self._step(throw=event._value)

    def _step(self, value=None, throw=None):
        env = self.env
        previous, env._active_process = env._active_process, self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # The generator chose not to handle an interrupt: treat as failure.
            env._active_process = previous
            self.fail(interrupt)
            return
        except Exception as exc:  # model error inside the process
            env._active_process = previous
            self.fail(exc)
            return
        finally:
            env._active_process = previous

        self._wait_for(target)

    def _wait_for(self, target):
        """Attach to the event the generator just yielded."""
        if not isinstance(target, Event):
            self._generator.throw(TypeError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"))
            return
        if target.callbacks is None:
            # Already finished: resume on the next scheduling round to keep
            # event ordering fair.
            bounce = Event(self.env)
            bounce._ok = target._ok
            bounce._value = target._value
            if not target._ok:
                target._defused = True
            bounce.callbacks.append(self._resume)
            self.env._schedule_now(bounce)
            self._waiting_on = bounce
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self):
        state = "finished" if self._value is not _PENDING else "running"
        return f"<Process {self.name} {state}>"
