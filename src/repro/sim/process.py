"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`~repro.sim.events.Event`
objects.  When a yielded event is processed, the process is resumed with the
event's value (or the event's exception is thrown into the generator).  The
process object is itself an event that succeeds with the generator's return
value, so processes can wait for each other simply by yielding them.
"""

from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import Event


class Process(Event):
    """A running simulation process (also usable as a "join" event)."""

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(env)
        self._generator = generator
        self._waiting_on = None
        # Kick the generator off via an initial event so that process start
        # happens inside the event loop, in creation order.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed()

    # -- public API -----------------------------------------------------------
    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def name(self):
        """Best-effort human-readable name (the generator function's name)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interruption = Event(self.env)
        interruption._interrupt_cause = cause
        interruption.callbacks.append(self._deliver_interrupt)
        interruption.succeed()

    # -- internals --------------------------------------------------------------
    def _deliver_interrupt(self, interruption):
        if self.triggered:
            return  # finished between scheduling and delivery
        # Detach from whatever we were waiting on so the stale resume is ignored.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(throw=Interrupt(interruption._interrupt_cause))

    def _resume(self, event):
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup (we were interrupted away from this event)
        self._waiting_on = None
        if event._ok or event._ok is None:
            self._step(value=event._value if event.triggered else None)
        else:
            event.defuse()
            self._step(throw=event._value)

    def _step(self, value=None, throw=None):
        env = self.env
        previous, env._active_process = env._active_process, self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # The generator chose not to handle an interrupt: treat as failure.
            env._active_process = previous
            self.fail(interrupt)
            return
        except Exception as exc:  # model error inside the process
            env._active_process = previous
            self.fail(exc)
            return
        finally:
            env._active_process = previous

        if not isinstance(target, Event):
            self._generator.throw(TypeError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"))
            return
        if target.processed:
            # Already finished: resume on the next scheduling round to keep
            # event ordering fair.
            bounce = Event(env)
            bounce._ok = target._ok
            bounce._value = target._value
            if not target._ok:
                target.defuse()
            bounce.callbacks.append(self._resume)
            env.schedule(bounce)
            self._waiting_on = bounce
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self):
        state = "finished" if self.triggered else "running"
        return f"<Process {self.name} {state}>"
