"""Higher-level synchronisation helpers built on events.

The paper's collective-I/O pseudo-code uses barriers among the CPs; these are
provided here, together with a countdown latch used by the IOPs to signal
"all my work for this collective request is done".
"""

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Barrier:
    """A reusable barrier for a fixed number of participants.

    Each participant calls :meth:`wait` and yields the returned event; once
    all *parties* have arrived, every waiter is released and the barrier
    resets for the next generation.
    """

    def __init__(self, env, parties, name=None):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self.name = name or f"barrier@{id(self):#x}"
        self._waiting = []
        self.generation = 0

    @property
    def n_waiting(self):
        """Number of participants currently blocked at the barrier."""
        return len(self._waiting)

    def wait(self):
        """Arrive at the barrier; returns an event that fires when all arrive.

        The event's value is the generation number that was completed.
        """
        event = Event(self.env)
        self._waiting.append(event)
        if len(self._waiting) >= self.parties:
            generation = self.generation
            self.generation += 1
            waiters, self._waiting = self._waiting, []
            for waiter in waiters:
                waiter.succeed(generation)
        return event


class CountDownLatch:
    """An event that fires after :meth:`count_down` has been called *n* times."""

    def __init__(self, env, n, name=None):
        if n < 0:
            raise ValueError(f"count must be >= 0, got {n}")
        self.env = env
        self.name = name or f"latch@{id(self):#x}"
        self._remaining = n
        self._event = Event(env)
        if n == 0:
            self._event.succeed(0)

    @property
    def remaining(self):
        """How many count-downs are still needed before the latch opens."""
        return self._remaining

    def count_down(self, amount=1):
        """Decrement the latch; opens it (fires the event) when it reaches zero."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._remaining <= 0:
            raise SimulationError("count_down() on an already-open latch")
        self._remaining -= amount
        if self._remaining < 0:
            raise SimulationError("latch count went negative")
        if self._remaining == 0:
            self._event.succeed(0)

    def wait(self):
        """Event that fires once the latch has fully counted down."""
        return self._event
