"""Statistics helpers: counters, time-weighted values and utilisation.

These are updated on nearly every resource acquire/release, so the classes use
``__slots__`` and :meth:`UtilizationTracker.set` is flattened into a single
method (no ``super()`` dispatch on the hot path).
"""


class Counter:
    """A simple named accumulator for event counts and byte totals."""

    __slots__ = ("name", "value")

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        """Increase the counter by *amount* (default 1)."""
        self.value += amount

    def reset(self):
        """Zero the counter."""
        self.value = 0

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class TimeWeightedValue:
    """Tracks the time-weighted average of a piecewise-constant quantity.

    Used for queue lengths and resource occupancy: every call to :meth:`set`
    records how long the previous level persisted.
    """

    __slots__ = ("env", "_level", "_last_change", "_weighted_sum",
                 "_start_time", "maximum")

    def __init__(self, env, initial=0.0):
        self.env = env
        self._level = float(initial)
        self._last_change = env.now
        self._weighted_sum = 0.0
        self._start_time = env.now
        self.maximum = float(initial)

    @property
    def level(self):
        """The current level."""
        return self._level

    def set(self, level):
        """Change the level, accumulating the time spent at the previous one."""
        now = self.env._now
        self._weighted_sum += self._level * (now - self._last_change)
        self._level = float(level)
        self._last_change = now
        if level > self.maximum:
            self.maximum = float(level)

    def add(self, delta):
        """Adjust the level by *delta*."""
        self.set(self._level + delta)

    def mean(self, until=None):
        """Time-weighted average from creation until *until* (default: now)."""
        end = self.env.now if until is None else until
        total = self._weighted_sum + self._level * (end - self._last_change)
        elapsed = end - self._start_time
        if elapsed <= 0:
            return self._level
        return total / elapsed


class UtilizationTracker(TimeWeightedValue):
    """Time-weighted busy fraction of a resource with known capacity."""

    __slots__ = ("capacity", "busy_time", "_busy_since")

    def __init__(self, env, capacity=1):
        super().__init__(env, initial=0.0)
        self.capacity = capacity
        self.busy_time = 0.0
        self._busy_since = None

    def set(self, level):
        # Flattened TimeWeightedValue.set + busy-time bookkeeping: this runs
        # on every resource request/release.
        now = self.env._now
        previous = self._level
        if previous > 0 and self._busy_since is not None:
            self.busy_time += now - self._busy_since
            self._busy_since = None
        self._weighted_sum += previous * (now - self._last_change)
        level = float(level)
        self._level = level
        self._last_change = now
        if level > self.maximum:
            self.maximum = level
        if level > 0:
            self._busy_since = now

    def utilization(self, until=None):
        """Average fraction of capacity in use since creation."""
        if self.capacity <= 0:
            return 0.0
        return self.mean(until) / self.capacity

    def busy_fraction(self, until=None):
        """Fraction of time at least one unit of capacity was in use."""
        end = self.env.now if until is None else until
        busy = self.busy_time
        if self._level > 0 and self._busy_since is not None:
            busy += end - self._busy_since
        elapsed = end - self._start_time
        if elapsed <= 0:
            return 0.0
        return busy / elapsed
