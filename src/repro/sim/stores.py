"""FIFO and priority stores for passing items between processes."""

import heapq
from collections import deque
from itertools import count

from repro.sim.events import Event


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds once the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store, item):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the retrieved item."""

    __slots__ = ()

    def __init__(self, store):
        super().__init__(store.env)


class Store:
    """An unbounded-or-bounded FIFO queue of items.

    ``put(item)`` returns an event that fires when the item has been stored
    (immediately unless the store is full); ``get()`` returns an event that
    fires with the oldest item once one is available.
    """

    def __init__(self, env, capacity=float("inf"), name=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"store@{id(self):#x}"
        self._items = deque()
        self._putters = deque()
        self._getters = deque()

    # -- introspection ---------------------------------------------------------
    @property
    def items(self):
        """A snapshot (copy) of the currently stored items, oldest first."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    # -- core API ---------------------------------------------------------------
    def put(self, item):
        """Add *item*; returns an event that fires once the item is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self):
        """Remove the oldest item; returns an event carrying the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    # -- internals ----------------------------------------------------------------
    def _do_put(self, event):
        if len(self._items) < self.capacity:
            self._items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event):
        if self._items:
            event.succeed(self._items.popleft())
            return True
        return False

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._items) < self.capacity:
                putter = self._putters.popleft()
                self._do_put(putter)
                progressed = True
            while self._getters and self._items:
                getter = self._getters.popleft()
                self._do_get(getter)
                progressed = True


class PriorityStore(Store):
    """A store that hands out items in ``(priority, insertion order)`` order.

    Items are inserted as ``put((priority, item))`` or via
    :meth:`put_with_priority`.  ``get()`` yields the *item* with the smallest
    priority value.
    """

    def __init__(self, env, capacity=float("inf"), name=None):
        super().__init__(env, capacity, name)
        self._heap = []
        self._tiebreak = count()

    @property
    def items(self):
        return [entry[2] for entry in sorted(self._heap)]

    def __len__(self):
        return len(self._heap)

    def put_with_priority(self, priority, item):
        """Store *item* with an explicit numeric *priority* (lower pops first)."""
        return self.put((priority, item))

    def _do_put(self, event):
        if len(self._heap) < self.capacity:
            priority, item = event.item
            heapq.heappush(self._heap, (priority, next(self._tiebreak), item))
            event.succeed()
            return True
        return False

    def _do_get(self, event):
        if self._heap:
            _priority, _tie, item = heapq.heappop(self._heap)
            event.succeed(item)
            return True
        return False

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._heap) < self.capacity:
                self._do_put(self._putters.popleft())
                progressed = True
            while self._getters and self._heap:
                self._do_get(self._getters.popleft())
                progressed = True
