"""Torus topology and hop-count computation."""

import math


class TorusTopology:
    """A 2-D torus large enough to hold *n_nodes* processors.

    The paper's 32-processor machine sits on a 6x6 torus; we pick the smallest
    near-square torus that fits the requested node count, which reproduces
    that choice (ceil(sqrt(32)) = 6).
    """

    def __init__(self, n_nodes, dimensions=None):
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        if dimensions is None:
            side = math.ceil(math.sqrt(n_nodes))
            dimensions = (side, side)
        self.dimensions = tuple(dimensions)
        if self.dimensions[0] * self.dimensions[1] < n_nodes:
            raise ValueError(
                f"torus {self.dimensions} too small for {n_nodes} nodes")

    def coordinates_of(self, node_id):
        """Grid coordinates of *node_id* (row-major placement)."""
        if node_id < 0 or node_id >= self.n_nodes:
            raise ValueError(f"node {node_id} out of range [0, {self.n_nodes})")
        columns = self.dimensions[1]
        return divmod(node_id, columns)

    def hops(self, src, dst):
        """Minimum hop count between two nodes on the torus."""
        if src == dst:
            return 0
        (row_a, col_a) = self.coordinates_of(src)
        (row_b, col_b) = self.coordinates_of(dst)
        rows, cols = self.dimensions
        d_row = abs(row_a - row_b)
        d_col = abs(col_a - col_b)
        return min(d_row, rows - d_row) + min(d_col, cols - d_col)

    def mean_hops(self):
        """Average hop count over all ordered node pairs (useful for tests)."""
        total = 0
        pairs = 0
        for src in range(self.n_nodes):
            for dst in range(self.n_nodes):
                if src == dst:
                    continue
                total += self.hops(src, dst)
                pairs += 1
        if pairs == 0:
            return 0.0
        return total / pairs
