"""Message and mailbox abstractions for node-to-node communication."""

from dataclasses import dataclass, field
from enum import Enum
from itertools import count

from repro.sim.stores import Store

#: Size in bytes of a message header / control-only message.
HEADER_BYTES = 32

_message_ids = count()


class MessageKind(Enum):
    """The message types used by the file-system protocols."""

    #: traditional caching: CP asks IOP for (part of) a block
    READ_REQUEST = "read_request"
    #: traditional caching: IOP replies with data
    READ_REPLY = "read_reply"
    #: traditional caching: CP sends data to be written
    WRITE_REQUEST = "write_request"
    #: traditional caching: IOP acknowledges a write
    WRITE_REPLY = "write_reply"
    #: disk-directed I/O: collective request multicast from one CP to all IOPs
    COLLECTIVE_REQUEST = "collective_request"
    #: disk-directed I/O: IOP tells the requesting CP it has finished
    COLLECTIVE_DONE = "collective_done"
    #: disk-directed I/O: IOP deposits data directly into CP memory
    MEMPUT = "memput"
    #: disk-directed I/O: IOP asks a CP to send it data
    MEMGET_REQUEST = "memget_request"
    #: disk-directed I/O: CP's DMA engine replies to a Memget
    MEMGET_REPLY = "memget_reply"
    #: two-phase I/O: permutation-phase data exchange between CPs
    PERMUTE_DATA = "permute_data"
    #: generic completion notification
    DONE = "done"


@dataclass(slots=True)
class Message:
    """A single network message.

    ``data_bytes`` is the amount of bulk data carried (0 for control
    messages); the wire size adds a fixed header.  ``payload`` carries
    model-level metadata (request descriptors etc.), never simulated data.
    ``session_id`` tags protocol traffic with the collective session it
    belongs to; the network tallies per-session message wire bytes from it
    (``TransferResult.counters["message_wire_bytes"]``) without digging
    through protocol-specific payloads.  The disk layer receives the same
    id through ``DiskRequest.session_id``.
    """

    kind: MessageKind
    src: int
    dst: int
    data_bytes: int = 0
    payload: object = None
    session_id: object = None
    #: how many modeled protocol messages this object stands for.  The
    #: simulator batches back-to-back messages between one (src, dst) pair
    #: into a single event (see ``Network.transfer``'s ``count``); the wire
    #: carries one header per modeled message either way.
    n_messages: int = 1
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def wire_bytes(self):
        """Total bytes that cross the network (one header per modeled message)."""
        return self.n_messages * HEADER_BYTES + self.data_bytes


class Mailbox:
    """Per-node queue of delivered messages, with tag-based sub-queues.

    Protocol code usually wants "the next request" or "the reply to *my*
    request"; tags (arbitrary hashable keys) keep those streams separate
    without each consumer having to filter the other's traffic.
    """

    def __init__(self, env, name=""):
        self.env = env
        self.name = name
        self._queues = {}

    def _queue(self, tag):
        if tag not in self._queues:
            self._queues[tag] = Store(self.env, name=f"{self.name}:{tag}")
        return self._queues[tag]

    def deliver(self, message, tag="default"):
        """Deposit *message* into the sub-queue for *tag*."""
        return self._queue(tag).put(message)

    def receive(self, tag="default"):
        """Event yielding the next message delivered under *tag*."""
        return self._queue(tag).get()

    def pending(self, tag="default"):
        """Number of undelivered messages waiting under *tag*."""
        if tag not in self._queues:
            return 0
        return len(self._queues[tag])

    def discard(self, tag):
        """Drop the sub-queue for *tag* (no-op if absent).

        Protocols that mint per-session tags (e.g. disk-directed completion
        notifications) call this once the tag is drained, so a long request
        stream does not accumulate one dead queue per collective.
        """
        self._queues.pop(tag, None)
