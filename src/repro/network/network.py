"""Message-level network simulation: NIC serialisation + per-hop latency."""

from repro.network.topology import TorusTopology
from repro.sim.resources import Resource
from repro.sim.stats import Counter


class NetworkInterface:
    """A node's connection to the interconnect.

    The interface serialises outgoing and incoming transfers separately
    (full-duplex link), at the link bandwidth.
    """

    def __init__(self, env, node_id, bandwidth):
        self.env = env
        self.node_id = node_id
        self.bandwidth = bandwidth
        self.tx = Resource(env, capacity=1, name=f"nic{node_id}.tx")
        self.rx = Resource(env, capacity=1, name=f"nic{node_id}.rx")
        self.bytes_sent = Counter(f"nic{node_id}.bytes_sent")
        self.bytes_received = Counter(f"nic{node_id}.bytes_received")

    def serialization_time(self, n_bytes):
        """Time to push *n_bytes* through the link."""
        return n_bytes / self.bandwidth


class Network:
    """The interconnect connecting all CP and IOP nodes."""

    def __init__(self, env, n_nodes, bandwidth, router_latency,
                 dimensions=None, dma_setup_time=0.0):
        self.env = env
        self.topology = TorusTopology(n_nodes, dimensions)
        self.bandwidth = bandwidth
        self.router_latency = router_latency
        self.dma_setup_time = dma_setup_time
        self.interfaces = [NetworkInterface(env, node, bandwidth)
                           for node in range(n_nodes)]
        #: (src, dst) -> routing latency; hop counts are static, and the
        #: lookup sits on the per-transfer hot path.
        self._latency_cache = {}
        self.messages_sent = Counter("network.messages")
        self.bytes_sent = Counter("network.bytes")
        #: wire bytes of protocol messages per collective session
        #: (session id -> bytes), fed by Message.session_id tags; dropped
        #: by :meth:`release_session`.  Raw transfers (Memput/Memget data,
        #: DMA replies) are not messages and are not counted here.
        self.session_message_bytes = {}

    # -- raw transfers ------------------------------------------------------------
    def wire_latency(self, src, dst):
        """Pure routing latency between two nodes (no serialisation)."""
        latency = self._latency_cache.get((src, dst))
        if latency is None:
            latency = self._latency_cache[(src, dst)] = \
                self.topology.hops(src, dst) * self.router_latency
        return latency

    def transfer(self, src, dst, n_bytes, count=1):
        """Process fragment moving *n_bytes* from node *src* to node *dst*.

        The sender's TX interface is held for the serialisation time, then the
        wormhole latency elapses, then the receiver's RX interface is held for
        the same serialisation time (DMA into memory).  Yield from this inside
        a process::

            yield from network.transfer(cp.node_id, iop.node_id, 8192)

        *count* > 1 models *count* back-to-back transfers between the same
        pair as one simulator event: *n_bytes* is the total across the batch
        and the per-transfer DMA setup is charged *count* times on each end.
        This is how the per-record request streams of traditional caching are
        simulated without one event per 8-byte record (the same substitution
        disk-directed I/O makes for per-piece Memput messages).
        """
        if n_bytes < 0:
            raise ValueError(f"negative transfer size {n_bytes}")
        if count < 1:
            raise ValueError(f"transfer count must be >= 1, got {count}")
        src_if = self.interfaces[src]
        dst_if = self.interfaces[dst]
        serialization = src_if.serialization_time(n_bytes)
        setup = count * self.dma_setup_time

        hold = setup + serialization
        event = src_if.tx.acquire_event(hold)
        if event is None:
            yield from src_if.tx.acquire(hold)
        else:
            yield event
        latency = self.wire_latency(src, dst)
        if latency > 0:
            yield self.env.timeout(latency)
        if src != dst:
            event = dst_if.rx.acquire_event(hold)
            if event is None:
                yield from dst_if.rx.acquire(hold)
            else:
                yield event

        self.messages_sent.add(count)
        self.bytes_sent.add(n_bytes)
        src_if.bytes_sent.add(n_bytes)
        dst_if.bytes_received.add(n_bytes)

    # -- message delivery -----------------------------------------------------------
    def send(self, message, mailbox, tag="default"):
        """Process fragment: transfer *message* and deposit it in *mailbox*.

        Returns (by ``yield from``) after the message has been delivered.
        The caller is responsible for charging any software send/receive
        overhead to the appropriate CPU; this method models only wire time.
        """
        if message.session_id is not None:
            sessions = self.session_message_bytes
            sessions[message.session_id] = \
                sessions.get(message.session_id, 0) + message.wire_bytes
        yield from self.transfer(message.src, message.dst, message.wire_bytes,
                                 count=message.n_messages)
        yield mailbox.deliver(message, tag)

    def session_message_wire_bytes(self, session_id):
        """Protocol-message wire bytes sent on behalf of *session_id*."""
        return self.session_message_bytes.get(session_id, 0)

    def release_session(self, session_id):
        """Drop per-session accounting once the session's result is final."""
        self.session_message_bytes.pop(session_id, None)
