"""Interconnection-network model.

The paper's machine uses a 6x6 wormhole-routed torus with 200 MB/s
bidirectional links and 20 ns per-router latency, and explicitly notes the
network is never the bottleneck.  We therefore model messages (not flits):
each transfer pays a per-hop router latency plus serialisation of the message
size at the sending and receiving network interfaces, which captures the two
effects that matter for the experiments — per-message overheads (traditional
caching sends millions of small requests) and interface contention when many
IOPs stream to one CP.
"""

from repro.network.message import Mailbox, Message, MessageKind
from repro.network.network import Network, NetworkInterface
from repro.network.topology import TorusTopology

__all__ = [
    "Mailbox",
    "Message",
    "MessageKind",
    "Network",
    "NetworkInterface",
    "TorusTopology",
]
