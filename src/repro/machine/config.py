"""Machine configuration: Table 1 of the paper plus explicit software costs.

Everything the paper lists in Table 1 appears here with the same default
value.  The paper additionally relied on Proteus to charge CPU time for the
file-system software itself (request handling, cache management, copies); in
this reproduction those costs are explicit, documented constants in
:class:`CostModel` so they can be inspected, varied and ablated.
"""

from dataclasses import dataclass, field, replace

from repro.disk.specs import HP97560_SPEC, DiskSpec


@dataclass(frozen=True)
class CostModel:
    """Software / firmware overheads charged by the protocol implementations.

    All values are seconds (or bytes/second for bandwidths).  They are chosen
    to be plausible for a 50 MHz RISC CPU of the paper's era — a few thousand
    instructions per message-system call — and produce component throughputs
    in the ranges the paper reports.  They are deliberately configurable so
    the ablation benchmarks can explore their impact.
    """

    #: CPU time to send or receive one message through the OS messaging layer.
    message_overhead: float = 10e-6
    #: CPU time for a CP to compute and issue one file-system request
    #: (building the request, finding the disk, bookkeeping).
    cp_request_overhead: float = 10e-6
    #: CPU time for an IOP to dispatch an incoming request to a new thread.
    thread_dispatch_overhead: float = 5e-6
    #: CPU time for one IOP cache lookup / buffer-management operation.
    cache_lookup_overhead: float = 10e-6
    #: Memory-to-memory copy bandwidth at the IOP (used by traditional
    #: caching's single copy of write data into the cache).
    memory_copy_bandwidth: float = 100e6
    #: CPU time for the IOP to process one block in a disk-directed request
    #: (computing pieces, updating the block list).
    ddio_block_overhead: float = 10e-6
    #: CPU time per destination CP per block to set up a Memput/Memget.
    memput_setup_overhead: float = 15e-6
    #: CPU time to gather/scatter one non-contiguous piece of a block into a
    #: message (the cost that hurts 8-byte cyclic patterns in DDIO).
    per_piece_overhead: float = 1.5e-6
    #: CPU time for an IOP to parse one collective request.
    collective_request_overhead: float = 30e-6
    #: CPU time to sort the block list, charged per block (n log n absorbed).
    presort_per_block_overhead: float = 1e-6
    #: DMA engine setup time per network transfer.
    dma_setup_time: float = 2e-6
    #: SCSI bus arbitration + command overhead per transfer.
    bus_transfer_overhead: float = 0.1e-3


@dataclass(frozen=True)
class MachineConfig:
    """Table 1: the simulated machine.

    The starred parameters in Table 1 (CPs, IOPs, disks, busses) are exactly
    the ones the sensitivity experiments vary (Figures 5-8).
    """

    #: number of compute processors
    n_cps: int = 16
    #: number of I/O processors (each with its own SCSI bus)
    n_iops: int = 16
    #: total number of disks, striped round-robin across IOPs
    n_disks: int = 16
    #: CPU clock — kept for documentation; costs are expressed in seconds
    cpu_mhz: float = 50.0
    #: file-system block size
    block_size: int = 8192
    #: disk model
    disk_spec: DiskSpec = field(default_factory=lambda: HP97560_SPEC)
    #: per-IOP I/O bus peak bandwidth (SCSI), bytes/second
    bus_bandwidth: float = 10e6
    #: interconnect link bandwidth, bytes/second (bidirectional)
    interconnect_bandwidth: float = 200e6
    #: per-router wormhole latency
    router_latency: float = 20e-9
    #: explicit torus dimensions, or None to choose the smallest square
    torus_dimensions: tuple = None
    #: software cost model
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.n_cps < 1:
            raise ValueError(f"need at least one CP, got {self.n_cps}")
        if self.n_iops < 1:
            raise ValueError(f"need at least one IOP, got {self.n_iops}")
        if self.n_disks < 1:
            raise ValueError(f"need at least one disk, got {self.n_disks}")
        if self.block_size <= 0 or self.block_size % self.disk_spec.sector_size:
            raise ValueError(
                f"block size {self.block_size} must be a positive multiple of the "
                f"{self.disk_spec.sector_size}-byte sector size")

    # -- derived quantities --------------------------------------------------------
    @property
    def n_nodes(self):
        """Total processors on the interconnect (CPs + IOPs)."""
        return self.n_cps + self.n_iops

    @property
    def sectors_per_block(self):
        """Disk sectors per file-system block."""
        return self.block_size // self.disk_spec.sector_size

    @property
    def disks_per_iop(self):
        """How many disks each IOP serves (disks are dealt round-robin)."""
        base, extra = divmod(self.n_disks, self.n_iops)
        return base + (1 if extra else 0)

    def disks_on_iop(self, iop_index):
        """The list of global disk indices served by IOP *iop_index*."""
        return [disk for disk in range(self.n_disks)
                if disk % self.n_iops == iop_index]

    def iop_of_disk(self, disk_index):
        """The IOP that serves global disk *disk_index*."""
        if disk_index < 0 or disk_index >= self.n_disks:
            raise ValueError(f"disk {disk_index} out of range [0, {self.n_disks})")
        return disk_index % self.n_iops

    @property
    def peak_disk_bandwidth(self):
        """Aggregate media transfer rate of all disks, bytes/second."""
        return self.n_disks * self.disk_spec.media_transfer_rate

    @property
    def peak_bus_bandwidth(self):
        """Aggregate I/O-bus bandwidth, bytes/second."""
        return self.n_iops * self.bus_bandwidth

    def cp_node_id(self, cp_index):
        """Interconnect node id of compute processor *cp_index* (CPs come first)."""
        if cp_index < 0 or cp_index >= self.n_cps:
            raise ValueError(f"CP {cp_index} out of range [0, {self.n_cps})")
        return cp_index

    def iop_node_id(self, iop_index):
        """Interconnect node id of I/O processor *iop_index*."""
        if iop_index < 0 or iop_index >= self.n_iops:
            raise ValueError(f"IOP {iop_index} out of range [0, {self.n_iops})")
        return self.n_cps + iop_index

    def with_overrides(self, **kwargs):
        """Return a copy of the configuration with fields replaced."""
        return replace(self, **kwargs)
