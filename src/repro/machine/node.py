"""Processor nodes: compute processors (CPs) and I/O processors (IOPs)."""

from repro.network.message import Mailbox
from repro.sim.resources import Resource


class Node:
    """A processor on the interconnect: one CPU, one NIC, one mailbox."""

    def __init__(self, env, node_id, name):
        self.env = env
        self.node_id = node_id
        self.name = name
        #: The node's single CPU; protocol code acquires it to charge software time.
        self.cpu = Resource(env, capacity=1, name=f"{name}.cpu")
        #: Delivered messages, separated by protocol tag.
        self.mailbox = Mailbox(env, name=name)

    def compute(self, duration):
        """Process fragment: occupy this node's CPU for *duration* seconds."""
        if duration <= 0:
            return
            yield  # pragma: no cover - makes this a generator even when skipped
        yield from self.cpu.acquire(duration)

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


class ComputeNode(Node):
    """A compute processor: runs the application side of the file system."""

    def __init__(self, env, node_id, cp_index):
        super().__init__(env, node_id, name=f"cp{cp_index}")
        self.cp_index = cp_index


class IONode(Node):
    """An I/O processor: owns one SCSI bus and one or more disks."""

    def __init__(self, env, node_id, iop_index):
        super().__init__(env, node_id, name=f"iop{iop_index}")
        self.iop_index = iop_index
        self.bus = None
        self.disks = []          # local Disk objects
        self.disk_indices = []   # their global indices
        #: what IOP software submits requests to, parallel to ``disks``: the
        #: drive's SharedDiskQueue when cross-collective scheduling is on,
        #: the Disk itself otherwise (same request interface either way).
        self.disk_handles = []

    def attach_bus(self, bus):
        """Associate this IOP's SCSI bus."""
        self.bus = bus

    def attach_disk(self, disk, global_index, handle=None):
        """Attach a drive (already wired to this IOP's bus).

        *handle* is what protocol code should submit requests through — a
        :class:`~repro.disk.shared_queue.SharedDiskQueue` under
        cross-collective IOP scheduling; defaults to the drive itself.
        """
        self.disks.append(disk)
        self.disk_indices.append(global_index)
        self.disk_handles.append(disk if handle is None else handle)

    def _local_position(self, global_index):
        try:
            return self.disk_indices.index(global_index)
        except ValueError:
            raise KeyError(
                f"disk {global_index} is not attached to {self.name} "
                f"(has {self.disk_indices})")

    def local_disk(self, global_index):
        """The local :class:`Disk` object for a global disk index."""
        return self.disks[self._local_position(global_index)]

    def local_disk_handle(self, global_index):
        """The request handle (shared queue or drive) for a global disk index."""
        return self.disk_handles[self._local_position(global_index)]
