"""The per-IOP SCSI I/O bus."""

from repro.disk.drive import BusPort
from repro.sim.resources import Resource
from repro.sim.stats import Counter


class ScsiBus:
    """One I/O bus (Table 1: SCSI, 10 Mbytes/s peak), shared by an IOP's disks.

    All data moving between a drive and its IOP's memory crosses this bus;
    when several disks share one bus (Figures 6-8) the bus becomes the
    bottleneck at roughly its peak bandwidth.
    """

    def __init__(self, env, bandwidth, transfer_overhead=0.0, name="scsi"):
        self.env = env
        self.bandwidth = bandwidth
        self.transfer_overhead = transfer_overhead
        self.name = name
        self.resource = Resource(env, capacity=1, name=name)
        self.bytes_transferred = Counter(f"{name}.bytes")
        #: seconds of bus occupancy attributed to each collective session
        #: (session id -> seconds); dropped by :meth:`release_session`.
        self.session_busy = {}

    def port(self):
        """Create a :class:`~repro.disk.drive.BusPort` for attaching one drive."""
        return _CountingBusPort(self)

    def busy_fraction(self):
        """Fraction of simulated time the bus has been occupied."""
        return self.resource.utilization.busy_fraction()

    def session_busy_seconds(self, session_id):
        """Seconds this bus spent moving *session_id*'s data."""
        return self.session_busy.get(session_id, 0.0)

    def release_session(self, session_id):
        """Drop per-session accounting once the session's result is final."""
        self.session_busy.pop(session_id, None)


class _CountingBusPort(BusPort):
    """BusPort that also records byte counts and per-session occupancy."""

    def __init__(self, bus):
        super().__init__(bus.resource, bus.bandwidth, bus.transfer_overhead)
        self._bus = bus

    def _account(self, n_bytes, session_id):
        self._bus.bytes_transferred.add(n_bytes)
        if session_id is not None:
            busy = self._bus.session_busy
            busy[session_id] = busy.get(session_id, 0.0) \
                + self.transfer_time(n_bytes)

    def transfer(self, env, n_bytes, session_id=None):
        yield from super().transfer(env, n_bytes)
        self._account(n_bytes, session_id)

    def transfer_event(self, env, n_bytes, session_id=None):
        event = self.resource.acquire_event(self.transfer_time(n_bytes))
        if event is None:
            return None
        # Accounting rides on the hold event so it still happens at transfer
        # *end* (after the release callback, before the waiter resumes) —
        # the same effect order as the generator path.
        event.callbacks.append(
            lambda _event: self._account(n_bytes, session_id))
        return event
