"""Builds the whole simulated machine from a :class:`MachineConfig`."""

from repro.disk.drive import Disk
from repro.machine.bus import ScsiBus
from repro.machine.node import ComputeNode, IONode
from repro.network.network import Network
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams


class Machine:
    """The complete simulated multiprocessor.

    Construction wires together the environment, the interconnect, the CP and
    IOP nodes, one SCSI bus per IOP, and the drives (dealt round-robin across
    IOPs, as the paper's block-by-block declustering assumes).
    """

    def __init__(self, config, seed=0, env=None, disk_scheduler="fcfs"):
        self.config = config
        self.seed = seed
        self.env = env if env is not None else Environment()
        self.random = RandomStreams(seed)
        self.network = Network(
            self.env,
            n_nodes=config.n_nodes,
            bandwidth=config.interconnect_bandwidth,
            router_latency=config.router_latency,
            dimensions=config.torus_dimensions,
            dma_setup_time=config.costs.dma_setup_time,
        )

        self.cps = [ComputeNode(self.env, config.cp_node_id(index), index)
                    for index in range(config.n_cps)]
        self.iops = [IONode(self.env, config.iop_node_id(index), index)
                     for index in range(config.n_iops)]

        rotation_rng = self.random.stream("rotation")
        self.disks = []
        for iop in self.iops:
            bus = ScsiBus(
                self.env,
                bandwidth=config.bus_bandwidth,
                transfer_overhead=config.costs.bus_transfer_overhead,
                name=f"{iop.name}.scsi",
            )
            iop.attach_bus(bus)
        for disk_index in range(config.n_disks):
            iop = self.iops[config.iop_of_disk(disk_index)]
            disk = Disk(
                self.env,
                spec=config.disk_spec,
                bus_port=iop.bus.port(),
                name=f"disk{disk_index}",
                scheduler=disk_scheduler,
                initial_angle_fraction=float(rotation_rng.random()),
            )
            iop.attach_disk(disk, disk_index)
            self.disks.append(disk)

    # -- lookups -----------------------------------------------------------------
    def node(self, node_id):
        """The node object (CP or IOP) with interconnect id *node_id*."""
        if node_id < self.config.n_cps:
            return self.cps[node_id]
        return self.iops[node_id - self.config.n_cps]

    def disk(self, disk_index):
        """The drive with global index *disk_index*."""
        return self.disks[disk_index]

    def iop_for_disk(self, disk_index):
        """The IOP node serving global disk *disk_index*."""
        return self.iops[self.config.iop_of_disk(disk_index)]

    # -- convenience ----------------------------------------------------------------
    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until)

    @property
    def now(self):
        """Current simulated time."""
        return self.env.now

    def total_disk_stats(self):
        """Aggregate read/write counters across all drives."""
        totals = {
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        for disk in self.disks:
            totals["reads"] += disk.stats.reads
            totals["writes"] += disk.stats.writes
            totals["bytes_read"] += disk.stats.bytes_read
            totals["bytes_written"] += disk.stats.bytes_written
            totals["cache_hits"] += disk.stats.cache_hits
            totals["cache_misses"] += disk.stats.cache_misses
        return totals
