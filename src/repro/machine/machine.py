"""Builds the whole simulated machine from a :class:`MachineConfig`."""

from repro.disk.drive import Disk
from repro.disk.faults import build_fault_plan
from repro.disk.flash import SSD, matched_ssd_spec
from repro.disk.redundancy import REDUNDANCY_MODES, ParityArray, ParityDisk
from repro.disk.shared_queue import SharedDiskQueue
from repro.machine.bus import ScsiBus
from repro.machine.node import ComputeNode, IONode
from repro.network.network import Network
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

#: ``disk_scheduler=`` prefix selecting cross-collective IOP scheduling:
#: ``shared-cscan`` (or ``shared-sstf`` / ``shared-fcfs``) builds one
#: :class:`~repro.disk.shared_queue.SharedDiskQueue` per drive, ordered by
#: the named policy, and leaves the drive's own queue FCFS.
SHARED_PREFIX = "shared-"

#: The storage backends the ``device=`` axis selects between.
DEVICES = ("disk", "ssd")


class Machine:
    """The complete simulated multiprocessor.

    Construction wires together the environment, the interconnect, the CP and
    IOP nodes, one SCSI bus per IOP, and the drives (dealt round-robin across
    IOPs, as the paper's block-by-block declustering assumes).

    ``disk_scheduler`` is the machine-wide scheduling knob.  A bare policy
    name (``fcfs``, ``sstf``, ``cscan``) — or a policy object, which is
    handed to the drives unchanged — configures each *drive's* internal
    queue, as in the paper's sensitivity runs.  A ``shared-``-prefixed name
    instead schedules at the *IOP*: every drive gets a
    :class:`~repro.disk.shared_queue.SharedDiskQueue` that merges requests
    from all active collective sessions into one sorted stream (the drive
    itself stays FCFS).  ``shared_queue_workers`` sizes each shared queue's
    worker pool — the machine-wide buffer budget per drive (the paper's
    double-buffering: 2); under shared scheduling this pool replaces DDIO's
    per-collective ``buffers_per_disk`` threads.  File-system
    implementations reach whichever is configured through
    :meth:`disk_handle` / ``IONode.local_disk_handle``.

    ``device`` selects the storage backend: ``"disk"`` (the paper's HP 97560
    model) or ``"ssd"`` (the flash model of :mod:`repro.disk.flash`, by
    default bandwidth-matched to ``config.disk_spec``).  Both expose the
    same request/stats/fault surface, so everything above this layer is
    device-agnostic; an SSD ignores the drive-queue policy (the FTL
    virtualises addresses) but shared IOP queues still apply.
    """

    def __init__(self, config, seed=0, env=None, disk_scheduler="fcfs",
                 shared_queue_workers=2, fault_config=None, device="disk",
                 ssd_spec=None, redundancy="none", rebuild_bandwidth=0.0):
        if device not in DEVICES:
            raise ValueError(
                f"unknown device {device!r} (choose from {DEVICES})")
        if redundancy not in REDUNDANCY_MODES:
            raise ValueError(
                f"unknown redundancy {redundancy!r} "
                f"(choose from {REDUNDANCY_MODES})")
        self.config = config
        self.seed = seed
        self.device = device
        self.redundancy = redundancy
        self.disk_scheduler = disk_scheduler
        self.shared_queue_workers = shared_queue_workers
        self.fault_config = fault_config
        #: the flash drive model when ``device="ssd"``: an explicit
        #: :class:`~repro.disk.flash.SSDSpec`, or (by default) one matched to
        #: ``config.disk_spec``'s sequential bandwidth and sector count —
        #: so file-system layouts and experiment scales carry over unchanged
        self.ssd_spec = None
        if device == "ssd":
            self.ssd_spec = ssd_spec if ssd_spec is not None \
                else matched_ssd_spec(config.disk_spec)
        if isinstance(disk_scheduler, str) \
                and disk_scheduler.startswith(SHARED_PREFIX):
            self.iop_scheduling = disk_scheduler[len(SHARED_PREFIX):]
            drive_scheduler = "fcfs"
        else:
            self.iop_scheduling = None
            drive_scheduler = disk_scheduler
        self.env = env if env is not None else Environment()
        self.random = RandomStreams(seed)
        self.network = Network(
            self.env,
            n_nodes=config.n_nodes,
            bandwidth=config.interconnect_bandwidth,
            router_latency=config.router_latency,
            dimensions=config.torus_dimensions,
            dma_setup_time=config.costs.dma_setup_time,
        )

        self.cps = [ComputeNode(self.env, config.cp_node_id(index), index)
                    for index in range(config.n_cps)]
        self.iops = [IONode(self.env, config.iop_node_id(index), index)
                     for index in range(config.n_iops)]

        rotation_rng = self.random.stream("rotation")
        self.disks = []
        self.shared_queues = []   # SharedDiskQueue per disk, or None
        self.disk_handles = []    # what protocols talk to: queue or raw disk
        for iop in self.iops:
            bus = ScsiBus(
                self.env,
                bandwidth=config.bus_bandwidth,
                transfer_overhead=config.costs.bus_transfer_overhead,
                name=f"{iop.name}.scsi",
            )
            iop.attach_bus(bus)
        #: Realised per-drive :class:`~repro.disk.faults.FaultPlan`s (parallel
        #: to :attr:`disks`; all None on a healthy machine).  Seeded per
        #: ``(seed, disk_index)``, so the schedule is reproducible from the
        #: trial seed alone and is recorded in result envelopes.
        self.fault_plans = []
        for disk_index in range(config.n_disks):
            iop = self.iops[config.iop_of_disk(disk_index)]
            fault_plan = build_fault_plan(
                fault_config, seed, disk_index,
                total_sectors=config.disk_spec.total_sectors)
            # The rotation draw is consumed for every drive index regardless
            # of device, so per-index rng streams stay aligned across the
            # device axis (flash has no platter; the draw is discarded).
            angle = float(rotation_rng.random())
            if device == "ssd":
                disk = SSD(
                    self.env,
                    spec=self.ssd_spec,
                    bus_port=iop.bus.port(),
                    name=f"ssd{disk_index}",
                    fault_plan=fault_plan,
                )
            else:
                disk = Disk(
                    self.env,
                    spec=config.disk_spec,
                    bus_port=iop.bus.port(),
                    name=f"disk{disk_index}",
                    scheduler=drive_scheduler,
                    initial_angle_fraction=angle,
                    fault_plan=fault_plan,
                )
            self.fault_plans.append(fault_plan)
            if self.iop_scheduling is not None:
                queue = SharedDiskQueue(self.env, disk,
                                        policy=self.iop_scheduling,
                                        workers=shared_queue_workers)
                handle = queue
            else:
                queue = None
                handle = disk
            iop.attach_disk(disk, disk_index, handle=handle)
            self.disks.append(disk)
            self.shared_queues.append(queue)
            self.disk_handles.append(handle)
        #: the hot spare(s) and the parity layer under
        #: ``redundancy="parity"``; empty/None otherwise — and nothing else
        #: runs, so a redundancy-free machine is built byte-identically to
        #: one from before this axis existed (no extra rng draws, no handle
        #: wrappers, no spare hardware).
        self.spare_disks = []
        self.parity = None
        if redundancy == "parity":
            self._build_parity(rebuild_bandwidth)

    def _build_parity(self, rebuild_bandwidth):
        """Build the spare, the parity array, and the per-drive wrappers.

        The spare hangs off the bus of the IOP owning the drive scheduled
        to fail-stop (rebuild writes then contend with that IOP's recovery
        traffic), or IOP 0 when nothing is scheduled to die.  Its platter
        angle comes from a *separate* rng stream so foreground rotation
        draws — and therefore every ``redundancy="none"`` result — stay
        untouched.
        """
        spare_iop = self.iops[0]
        for disk_index, plan in enumerate(self.fault_plans):
            if plan is not None and plan.fail_stop_time is not None:
                spare_iop = self.iop_for_disk(disk_index)
                break
        angle = float(self.random.stream("spare-rotation").random())
        if self.device == "ssd":
            spare = SSD(self.env, spec=self.ssd_spec,
                        bus_port=spare_iop.bus.port(), name="spare0")
        else:
            spare = Disk(self.env, spec=self.config.disk_spec,
                         bus_port=spare_iop.bus.port(), name="spare0",
                         initial_angle_fraction=angle)
        self.spare_disks.append(spare)
        self.parity = ParityArray(self, rebuild_bandwidth=rebuild_bandwidth)
        for disk_index, disk in enumerate(self.disks):
            wrapper = ParityDisk(self.parity, disk_index,
                                 self.disk_handles[disk_index], disk)
            self.disk_handles[disk_index] = wrapper
            iop = self.iop_for_disk(disk_index)
            iop.disk_handles[iop.disk_indices.index(disk_index)] = wrapper
        self.parity.arm_rebuild()

    # -- lookups -----------------------------------------------------------------
    def node(self, node_id):
        """The node object (CP or IOP) with interconnect id *node_id*."""
        if node_id < self.config.n_cps:
            return self.cps[node_id]
        return self.iops[node_id - self.config.n_cps]

    def disk(self, disk_index):
        """The drive with global index *disk_index*."""
        return self.disks[disk_index]

    def iop_for_disk(self, disk_index):
        """The IOP node serving global disk *disk_index*."""
        return self.iops[self.config.iop_of_disk(disk_index)]

    def disk_handle(self, disk_index):
        """What IOP software should submit requests to for *disk_index*.

        The drive's :class:`~repro.disk.shared_queue.SharedDiskQueue` when
        cross-collective IOP scheduling is configured, the raw
        :class:`~repro.disk.drive.Disk` otherwise; both expose the same
        ``read`` / ``write`` / ``write_tracked`` / ``flush`` interface.
        """
        return self.disk_handles[disk_index]

    # -- convenience ----------------------------------------------------------------
    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until)

    @property
    def now(self):
        """Current simulated time."""
        return self.env.now

    def total_disk_stats(self):
        """Aggregate read/write counters across all drives."""
        totals = {
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        for disk in self.disks:
            totals["reads"] += disk.stats.reads
            totals["writes"] += disk.stats.writes
            totals["bytes_read"] += disk.stats.bytes_read
            totals["bytes_written"] += disk.stats.bytes_written
            totals["cache_hits"] += disk.stats.cache_hits
            totals["cache_misses"] += disk.stats.cache_misses
        return totals

    def total_flash_counters(self):
        """Aggregate FTL work counters across all drives (``device="ssd"``).

        Returns None on a disk machine.  ``write_amplification`` is the
        machine-wide ratio (total flash programs / total host programs),
        not a mean of per-drive ratios.
        """
        if self.device != "ssd":
            return None
        totals = {"host_pages_written": 0, "flash_pages_written": 0,
                  "relocated_pages": 0, "erases": 0, "trims": 0}
        for disk in self.disks:
            counters = disk.ftl.counters()
            for key in totals:
                totals[key] += counters[key]
        host = totals["host_pages_written"]
        totals["write_amplification"] = \
            totals["flash_pages_written"] / host if host else 1.0
        return totals

    def session_disk_stats(self, session_id):
        """One session's disk work, aggregated across all drives.

        Same count keys as :meth:`total_disk_stats` plus
        ``disk_service_time`` (drive busy seconds spent on this session's
        requests), ``disk_queue_wait`` (seconds its requests waited in
        drive queues) and ``iop_queue_wait`` (seconds its jobs waited in
        the shared per-disk IOP queues; 0.0 when cross-collective
        scheduling is off) — scoped to *session_id*'s tagged requests only.
        Under shared scheduling the drive queues stay shallow, so compare
        queueing across regimes with ``disk_queue_wait + iop_queue_wait``,
        keeping in mind that DDIO submits whole block lists up front in
        shared mode (its IOP-queue wait starts at plan time, not at
        buffer-availability time as per-collective buffer threads do).
        """
        totals = {
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "disk_service_time": 0.0,
            "disk_queue_wait": 0.0,
            "iop_queue_wait": 0.0,
        }
        for queue in self.shared_queues:
            if queue is not None:
                totals["iop_queue_wait"] += queue.session_wait_seconds(session_id)
        for disk in self.disks:
            stats = disk.session_stats.get(session_id)
            if stats is None:
                continue
            totals["reads"] += stats.reads
            totals["writes"] += stats.writes
            totals["bytes_read"] += stats.bytes_read
            totals["bytes_written"] += stats.bytes_written
            totals["cache_hits"] += stats.cache_hits
            totals["cache_misses"] += stats.cache_misses
            totals["disk_service_time"] += stats.service_time
            totals["disk_queue_wait"] += stats.queue_wait_time
        return totals

    def session_bus_busy_seconds(self, session_id):
        """Busiest single bus's occupancy on behalf of *session_id*."""
        return max((iop.bus.session_busy_seconds(session_id)
                    for iop in self.iops), default=0.0)

    def release_session(self, session_id):
        """Drop all per-session accounting for a completed collective."""
        for disk in self.disks:
            disk.release_session(session_id)
        for spare in self.spare_disks:
            spare.release_session(session_id)
        for iop in self.iops:
            iop.bus.release_session(session_id)
        for queue in self.shared_queues:
            if queue is not None:
                queue.release_session(session_id)
        self.network.release_session(session_id)
