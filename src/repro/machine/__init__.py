"""The simulated MIMD machine: configuration, nodes, busses and the builder.

The machine model mirrors Table 1 of the paper: a distributed-memory MIMD
multiprocessor whose processors are split into compute processors (CPs) and
I/O processors (IOPs); each IOP owns one SCSI bus with one or more HP 97560
drives attached, and all nodes communicate over a torus interconnect.
"""

from repro.machine.bus import ScsiBus
from repro.machine.config import CostModel, MachineConfig
from repro.machine.machine import Machine
from repro.machine.node import ComputeNode, IONode, Node

__all__ = [
    "ComputeNode",
    "CostModel",
    "IONode",
    "Machine",
    "MachineConfig",
    "Node",
    "ScsiBus",
]
