"""Access-pattern objects: who owns which records of the file."""

import math
from collections import namedtuple

import numpy as np

from repro.patterns.distribution import Distribution

#: Summary of one CP's share of one file block: how many bytes, in how many
#: non-contiguous pieces.  Disk-directed I/O uses this to charge the cost of
#: gathering/scattering the block into per-CP messages.
PieceSummary = namedtuple("PieceSummary", ["cp", "n_bytes", "n_pieces"])

#: How many records to process per numpy batch when streaming chunk lists.
_CHUNK_BATCH_RECORDS = 1 << 16

#: Below this many records per block, ``pieces_in_block`` uses scalar Python
#: arithmetic; numpy only wins once the per-block record count is sizeable
#: (small-record patterns such as 8-byte records in 8 KB blocks).
_SMALL_BLOCK_RECORDS = 64


class AccessPattern:
    """Base class: a mapping from file records to compute processors."""

    def __init__(self, name, mode, file_size, record_size, n_cps):
        if mode not in ("read", "write"):
            raise ValueError(f"mode must be 'read' or 'write', got {mode!r}")
        if record_size <= 0:
            raise ValueError(f"record size must be positive, got {record_size}")
        if file_size <= 0:
            raise ValueError(f"file size must be positive, got {file_size}")
        if file_size % record_size:
            raise ValueError(
                f"file size {file_size} is not a whole number of "
                f"{record_size}-byte records")
        if n_cps < 1:
            raise ValueError(f"need at least one CP, got {n_cps}")
        self.name = name
        self.mode = mode
        self.file_size = file_size
        self.record_size = record_size
        self.n_cps = n_cps
        self.n_records = file_size // record_size

    # -- to be provided by subclasses ------------------------------------------
    def owners_of(self, record_indices):
        """CP owning each of *record_indices* (ndarray in, ndarray out)."""
        raise NotImplementedError

    def chunks_for_cp(self, cp):
        """Yield ``(byte_offset, byte_length)`` runs accessed by *cp*, in file order."""
        raise NotImplementedError

    def pieces_in_block(self, block_index, block_size):
        """Per-CP :class:`PieceSummary` for file block *block_index*."""
        raise NotImplementedError

    def bytes_for_cp(self, cp):
        """Total bytes transferred to/from *cp*."""
        raise NotImplementedError

    # -- common helpers -----------------------------------------------------------
    @property
    def is_read(self):
        """True for ``r*`` patterns."""
        return self.mode == "read"

    @property
    def is_write(self):
        """True for ``w*`` patterns."""
        return self.mode == "write"

    def participating_cps(self):
        """CPs that transfer at least one byte."""
        return [cp for cp in range(self.n_cps) if self.bytes_for_cp(cp) > 0]

    def total_transfer_bytes(self):
        """Total bytes crossing the I/O system (counting re-reads for ``ra``)."""
        return sum(self.bytes_for_cp(cp) for cp in range(self.n_cps))

    def chunk_count_for_cp(self, cp):
        """Number of contiguous file runs *cp* accesses (useful for tests/benches)."""
        return sum(1 for _ in self.chunks_for_cp(cp))

    def describe(self):
        """A short human-readable summary used in reports."""
        return (f"{self.name}: {self.mode}, {self.n_records} x "
                f"{self.record_size}-byte records over {self.n_cps} CPs")

    def __repr__(self):
        return f"<{type(self).__name__} {self.describe()}>"


class AllPattern(AccessPattern):
    """The ``ra`` pattern: every CP reads the entire file."""

    def __init__(self, name, mode, file_size, record_size, n_cps):
        super().__init__(name, mode, file_size, record_size, n_cps)
        if mode != "read":
            raise ValueError("the ALL pattern only makes sense for reads")

    def owners_of(self, record_indices):
        raise ValueError("the ALL pattern has no single owner per record")

    def chunks_for_cp(self, cp):
        self._check_cp(cp)
        yield (0, self.file_size)

    def pieces_in_block(self, block_index, block_size):
        start = block_index * block_size
        if start >= self.file_size:
            return []
        n_bytes = min(block_size, self.file_size - start)
        return [PieceSummary(cp=cp, n_bytes=n_bytes, n_pieces=1)
                for cp in range(self.n_cps)]

    def bytes_for_cp(self, cp):
        self._check_cp(cp)
        return self.file_size

    def _check_cp(self, cp):
        if cp < 0 or cp >= self.n_cps:
            raise ValueError(f"CP {cp} out of range [0, {self.n_cps})")


class MatrixPattern(AccessPattern):
    """A (possibly degenerate) 2-D matrix distributed over a grid of CPs.

    The matrix has ``rows x cols`` records stored row-major; the CP grid has
    ``grid_rows x grid_cols`` positions (also row-major); each dimension is
    distributed with NONE, BLOCK or CYCLIC.  One-dimensional patterns are the
    special case ``rows == 1``.
    """

    def __init__(self, name, mode, file_size, record_size, n_cps,
                 rows, cols, row_dist, col_dist, grid_rows, grid_cols):
        super().__init__(name, mode, file_size, record_size, n_cps)
        if rows * cols != self.n_records:
            raise ValueError(
                f"matrix {rows}x{cols} does not hold {self.n_records} records")
        if grid_rows * grid_cols > n_cps:
            raise ValueError(
                f"CP grid {grid_rows}x{grid_cols} larger than {n_cps} CPs")
        self.rows = rows
        self.cols = cols
        self.row_dist = Distribution(row_dist)
        self.col_dist = Distribution(col_dist)
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols

    # -- ownership -------------------------------------------------------------
    def owners_of(self, record_indices):
        indices = np.asarray(record_indices, dtype=np.int64)
        row = indices // self.cols
        col = indices % self.cols
        grid_row = self.row_dist.grid_index_of(row, self.rows, self.grid_rows)
        grid_col = self.col_dist.grid_index_of(col, self.cols, self.grid_cols)
        return grid_row * self.grid_cols + grid_col

    def bytes_for_cp(self, cp):
        if cp < 0 or cp >= self.n_cps:
            raise ValueError(f"CP {cp} out of range [0, {self.n_cps})")
        grid_row, grid_col = divmod(cp, self.grid_cols)
        if grid_row >= self.grid_rows:
            return 0
        rows_owned = self.row_dist.owned_count(self.rows, self.grid_rows, grid_row)
        cols_owned = self.col_dist.owned_count(self.cols, self.grid_cols, grid_col)
        return rows_owned * cols_owned * self.record_size

    # -- chunk enumeration (CP side) ------------------------------------------------
    def chunks_for_cp(self, cp):
        if cp < 0 or cp >= self.n_cps:
            raise ValueError(f"CP {cp} out of range [0, {self.n_cps})")
        if self.bytes_for_cp(cp) == 0:
            return
        pending = None  # (start_record, length_records) run crossing batch boundary
        for batch_start in range(0, self.n_records, _CHUNK_BATCH_RECORDS):
            batch_end = min(batch_start + _CHUNK_BATCH_RECORDS, self.n_records)
            indices = np.arange(batch_start, batch_end, dtype=np.int64)
            mine = self.owners_of(indices) == cp
            if not mine.any():
                if pending is not None:
                    yield self._run_to_bytes(*pending)
                    pending = None
                continue
            starts, lengths = _runs_of_true(mine)
            # tolist() converts to Python ints in one C pass; per-element
            # int() calls dominate this loop for cyclic small-record
            # patterns (one run per record, 100k+ runs per transfer).
            for run_start, run_length in zip(starts.tolist(), lengths.tolist()):
                record_start = batch_start + run_start
                record_length = run_length
                if pending is not None:
                    pending_start, pending_length = pending
                    if pending_start + pending_length == record_start:
                        pending = (pending_start, pending_length + record_length)
                        continue
                    yield self._run_to_bytes(pending_start, pending_length)
                pending = (record_start, record_length)
        if pending is not None:
            yield self._run_to_bytes(*pending)

    def _run_to_bytes(self, record_start, record_length):
        return (record_start * self.record_size, record_length * self.record_size)

    def _owner_of_record(self, index):
        """Scalar counterpart of :meth:`owners_of` for the per-block fast path."""
        row, col = divmod(index, self.cols)
        grid_row = self.row_dist.grid_index_scalar(row, self.rows, self.grid_rows)
        grid_col = self.col_dist.grid_index_scalar(col, self.cols, self.grid_cols)
        return grid_row * self.grid_cols + grid_col

    # -- per-block pieces (IOP side) ---------------------------------------------------
    def pieces_in_block(self, block_index, block_size):
        block_start = block_index * block_size
        if block_start >= self.file_size:
            return []
        block_end = min(block_start + block_size, self.file_size)
        first_record = block_start // self.record_size
        last_record = (block_end - 1) // self.record_size
        if last_record - first_record < _SMALL_BLOCK_RECORDS:
            # Blocks holding few records (e.g. 8 KB records in 8 KB blocks, the
            # paper's common case) are much cheaper in plain Python than through
            # a dozen tiny-ndarray numpy calls.
            record_size = self.record_size
            owner_of = self._owner_of_record
            bytes_per = {}
            pieces_per = {}
            previous_owner = None
            for record in range(first_record, last_record + 1):
                owner = owner_of(record)
                start = record * record_size
                end = start + record_size
                overlap = ((end if end < block_end else block_end)
                           - (start if start > block_start else block_start))
                bytes_per[owner] = bytes_per.get(owner, 0) + overlap
                if owner != previous_owner:
                    pieces_per[owner] = pieces_per.get(owner, 0) + 1
                    previous_owner = owner
            return [PieceSummary(cp=cp, n_bytes=bytes_per[cp],
                                 n_pieces=pieces_per[cp])
                    for cp in sorted(pieces_per)]
        records = np.arange(first_record, last_record + 1, dtype=np.int64)
        owners = self.owners_of(records)

        record_starts = records * self.record_size
        record_ends = record_starts + self.record_size
        overlaps = (np.minimum(record_ends, block_end)
                    - np.maximum(record_starts, block_start))

        # Count contiguous runs per owner: a run boundary is wherever the owner
        # changes between adjacent records.
        boundaries = np.ones(len(records), dtype=bool)
        boundaries[1:] = owners[1:] != owners[:-1]

        bytes_per_cp = np.bincount(owners, weights=overlaps, minlength=self.n_cps)
        pieces_per_cp = np.bincount(owners[boundaries], minlength=self.n_cps)
        return [PieceSummary(cp=cp, n_bytes=int(bytes_per_cp[cp]),
                             n_pieces=int(pieces_per_cp[cp]))
                for cp in range(self.n_cps) if pieces_per_cp[cp] > 0]


def _runs_of_true(mask):
    """Start indices and lengths of maximal runs of True in a boolean array."""
    if not mask.any():
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    padded = np.concatenate(([False], mask, [False]))
    changes = np.diff(padded.astype(np.int8))
    starts = np.where(changes == 1)[0]
    ends = np.where(changes == -1)[0]
    return starts, ends - starts
