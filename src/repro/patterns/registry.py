"""Pattern names, matrix/grid sizing and the ``make_pattern`` factory.

The names follow the paper exactly: ``r``/``w`` prefix for read/write, then
either ``a`` (ALL), one distribution letter (1-D vector) or two letters
(2-D matrix, row dimension first).  The redundant combinations the paper drops
(``rnn`` = ``rn``, ``rnc`` = ``rc``, ``rbn`` = ``rb``) are accepted and mapped
onto their canonical equivalents.
"""

import math

from repro.patterns.distribution import Distribution
from repro.patterns.pattern import AllPattern, MatrixPattern

#: Read patterns plotted in Figures 3 and 4, in the paper's order.
READ_PATTERN_NAMES = (
    "ra", "rn", "rb", "rc",
    "rnb", "rbb", "rcb", "rbc", "rcc", "rcn",
)

#: Write patterns plotted in Figures 3 and 4 (there is no ``wa``).
WRITE_PATTERN_NAMES = (
    "wn", "wb", "wc",
    "wnb", "wbb", "wcb", "wbc", "wcc", "wcn",
)

#: Every pattern used in the paper's evaluation.
PATTERN_NAMES = READ_PATTERN_NAMES + WRITE_PATTERN_NAMES


def choose_matrix_dims(n_records):
    """Pick a near-square ``rows x cols`` factorisation of *n_records*.

    The paper stores a two-dimensional array row-major in the file; it does
    not fix the aspect ratio, so we use the most nearly square exact
    factorisation (rows <= cols).  Prime or awkward counts degrade gracefully
    toward a flat matrix.
    """
    if n_records < 1:
        raise ValueError(f"need at least one record, got {n_records}")
    best_rows = 1
    limit = int(math.isqrt(n_records))
    for candidate in range(limit, 0, -1):
        if n_records % candidate == 0:
            best_rows = candidate
            break
    return best_rows, n_records // best_rows


def choose_cp_grid(n_cps, row_dist, col_dist):
    """Arrange *n_cps* processors into the grid implied by the distributions.

    A dimension distributed NONE gets a grid extent of 1; if both dimensions
    are distributed, the grid is the most nearly square factorisation of the
    CP count (this reproduces the 2x2 grid the paper's Figure 2 uses for four
    CPs).
    """
    row_none = row_dist is Distribution.NONE
    col_none = col_dist is Distribution.NONE
    if row_none and col_none:
        return 1, 1
    if row_none:
        return 1, n_cps
    if col_none:
        return n_cps, 1
    best_rows = 1
    limit = int(math.isqrt(n_cps))
    for candidate in range(limit, 0, -1):
        if n_cps % candidate == 0:
            best_rows = candidate
            break
    return best_rows, n_cps // best_rows


def make_pattern(name, file_size, record_size, n_cps, matrix_dims=None):
    """Build the :class:`AccessPattern` for the paper's pattern *name*.

    ``matrix_dims`` optionally pins the matrix shape for 2-D patterns;
    otherwise a near-square factorisation of the record count is used.
    """
    name = name.lower()
    if len(name) < 2 or name[0] not in ("r", "w"):
        raise ValueError(
            f"pattern name {name!r} must start with 'r' (read) or 'w' (write)")
    mode = "read" if name[0] == "r" else "write"
    spec = name[1:]

    if spec == "a":
        return AllPattern(name, mode, file_size, record_size, n_cps)

    if len(spec) == 1:
        row_dist = Distribution.NONE
        col_dist = Distribution.from_letter(spec)
        n_records = file_size // record_size
        rows, cols = 1, n_records
    elif len(spec) == 2:
        row_dist = Distribution.from_letter(spec[0])
        col_dist = Distribution.from_letter(spec[1])
        n_records = file_size // record_size
        if matrix_dims is not None:
            rows, cols = matrix_dims
        else:
            rows, cols = choose_matrix_dims(n_records)
    else:
        raise ValueError(f"pattern name {name!r} has too many distribution letters")

    grid_rows, grid_cols = choose_cp_grid(n_cps, row_dist, col_dist)
    return MatrixPattern(
        name=name,
        mode=mode,
        file_size=file_size,
        record_size=record_size,
        n_cps=n_cps,
        rows=rows,
        cols=cols,
        row_dist=row_dist,
        col_dist=col_dist,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
    )
