"""Access-pattern workload generator (Figure 2 of the paper).

The paper's workloads are the High Performance Fortran array-distribution
patterns: a 1-D vector or 2-D matrix of fixed-size records, stored row-major
in the file, distributed over the compute processors with NONE / BLOCK /
CYCLIC in each dimension.  Pattern names follow the paper's shorthand
(``ra rn rb rc rnb rbb rcb rbc rcc rcn`` for reads, ``w...`` for writes).

The generator answers the two questions the file-system implementations need:

* for a traditional-caching CP: *which contiguous byte ranges of the file do I
  access, in file order?* (:meth:`AccessPattern.chunks_for_cp`)
* for a disk-directed IOP: *which CPs own which pieces of this file block?*
  (:meth:`AccessPattern.pieces_in_block`)
"""

from repro.patterns.distribution import Distribution
from repro.patterns.pattern import AccessPattern, AllPattern, MatrixPattern, PieceSummary
from repro.patterns.registry import (
    PATTERN_NAMES,
    READ_PATTERN_NAMES,
    WRITE_PATTERN_NAMES,
    choose_cp_grid,
    choose_matrix_dims,
    make_pattern,
)

__all__ = [
    "AccessPattern",
    "AllPattern",
    "Distribution",
    "MatrixPattern",
    "PATTERN_NAMES",
    "PieceSummary",
    "READ_PATTERN_NAMES",
    "WRITE_PATTERN_NAMES",
    "choose_cp_grid",
    "choose_matrix_dims",
    "make_pattern",
]
