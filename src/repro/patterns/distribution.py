"""The three HPF distribution methods for one array dimension."""

from enum import Enum

import numpy as np


class Distribution(Enum):
    """How one dimension of the array is mapped onto one dimension of the CP grid."""

    #: the whole dimension goes to a single grid position
    NONE = "n"
    #: contiguous blocks of ceil(extent / grid) indices per grid position
    BLOCK = "b"
    #: indices dealt round-robin across grid positions
    CYCLIC = "c"

    @classmethod
    def from_letter(cls, letter):
        """Parse the single-letter shorthand used in pattern names."""
        for member in cls:
            if member.value == letter:
                return member
        raise ValueError(f"unknown distribution letter {letter!r}")

    def grid_index_scalar(self, index, extent, grid_size):
        """Scalar counterpart of :meth:`grid_index_of` (no ndarray overhead).

        Used on the per-block fast path where a block spans only a handful of
        records and numpy's per-call cost would dominate.
        """
        if self is Distribution.NONE or grid_size <= 1:
            return 0
        if self is Distribution.BLOCK:
            block = -(-extent // grid_size)  # ceil division
            grid_index = index // block
            last = grid_size - 1
            return grid_index if grid_index < last else last
        # CYCLIC
        return index % grid_size

    def grid_index_of(self, indices, extent, grid_size):
        """Vectorised mapping from array indices to grid coordinates.

        *indices* is an integer ndarray of positions along this dimension
        (each in ``[0, extent)``); the result is the grid coordinate (in
        ``[0, grid_size)``) owning each index.
        """
        indices = np.asarray(indices)
        if self is Distribution.NONE or grid_size <= 1:
            return np.zeros_like(indices)
        if self is Distribution.BLOCK:
            block = -(-extent // grid_size)  # ceil division
            return np.minimum(indices // block, grid_size - 1)
        # CYCLIC
        return indices % grid_size

    def owned_count(self, extent, grid_size, grid_index):
        """How many indices of a dimension of size *extent* one grid position owns."""
        if self is Distribution.NONE or grid_size <= 1:
            return extent if grid_index == 0 else 0
        if self is Distribution.BLOCK:
            block = -(-extent // grid_size)
            start = grid_index * block
            if start >= extent:
                return 0
            return min(block, extent - start)
        # CYCLIC
        full, remainder = divmod(extent, grid_size)
        return full + (1 if grid_index < remainder else 0)
