"""Heavy-tailed file-size sampling for the service-style workload.

The uniform file sizes of the original service family are the easy case for
a parallel file server: every collective costs about the same, so queueing is
benign.  Real request-size distributions are heavy-tailed — the PC disk-trace
studies (Boukhobza & Timsit; see PAPERS.md) find a few huge transfers carrying
most of the bytes — and it is exactly that regime where admission, scheduling
and cache policies separate.  This module draws per-file sizes from a
configurable distribution:

* ``fixed`` — every file is ``mean_size`` bytes (the original behaviour);
* ``pareto`` — classical Pareto (type I) with tail index ``alpha``, scaled so
  the *distribution* mean equals ``mean_size`` (requires ``alpha > 1``);
* ``lognormal`` — log-normal with shape ``sigma``, scaled so the mean equals
  ``mean_size``.

Determinism mirrors :mod:`repro.workload.arrival`: the size of file *i* is a
pure function of ``(trial_seed, i)`` via :func:`file_size_rng` — independent
of how many files exist, of request order, and of which process pool runs the
trial — so serial and parallel sweeps stay bit-identical.

Sizes are rounded **up** to a multiple of ``granularity`` (the least common
multiple of every record size in the workload's mix, so every file holds a
whole number of records of every size) and clamped to ``max_size``, which
bounds the cost of one simulated trial: an unbounded Pareto draw with
``alpha`` close to 1 can otherwise produce a file that takes longer to
simulate than the rest of the stream combined.  The clamp truncates the tail,
so the *empirical* mean sits slightly below ``mean_size`` — reported, not
hidden: :func:`sample_file_sizes` returns plain integers the caller can sum.
"""

import math

import numpy as np

#: Domain separator: file-size draws never collide with the request streams
#: of :mod:`repro.workload.arrival` or the machine's layout/rotation streams,
#: even when they share a trial seed.
SIZE_STREAM_TAG = 741_391

#: Distributions :func:`sample_file_size` understands.
SIZE_DISTRIBUTIONS = ("fixed", "pareto", "lognormal")


def file_size_rng(trial_seed, file_index):
    """A generator that is a pure function of ``(trial_seed, file_index)``."""
    return np.random.default_rng(np.random.SeedSequence(
        [SIZE_STREAM_TAG, trial_seed, file_index]))


def _round_up(value, granularity):
    """Smallest multiple of *granularity* that is >= *value* (and positive)."""
    units = max(1, math.ceil(value / granularity))
    return units * granularity


def sample_file_size(distribution, mean_size, trial_seed, file_index,
                     alpha=1.5, sigma=1.0, granularity=8192, max_size=None):
    """Draw the size of file *file_index*, in bytes.

    The draw is deterministic per ``(trial_seed, file_index)``.  *mean_size*
    is the distribution mean before rounding/clamping; *granularity* and
    *max_size* bound the result to ``[granularity, max_size]`` in whole
    multiples of *granularity*.
    """
    if distribution not in SIZE_DISTRIBUTIONS:
        raise ValueError(
            f"unknown size distribution {distribution!r}; "
            f"choose one of {SIZE_DISTRIBUTIONS}")
    if mean_size < granularity:
        raise ValueError(
            f"mean size {mean_size} smaller than granularity {granularity}")
    if distribution == "fixed":
        if mean_size % granularity:
            raise ValueError(
                f"fixed file size {mean_size} is not a multiple of the "
                f"record granularity {granularity}")
        return int(mean_size)

    rng = file_size_rng(trial_seed, file_index)
    if distribution == "pareto":
        if alpha <= 1.0:
            raise ValueError(
                f"pareto tail index must be > 1 for a finite mean, got {alpha}")
        # numpy's pareto() samples the Lomax form; (draw + 1) * scale is the
        # classical Pareto I with minimum `scale` and mean alpha*scale/(alpha-1).
        scale = mean_size * (alpha - 1.0) / alpha
        raw = (float(rng.pareto(alpha)) + 1.0) * scale
    else:  # lognormal
        if sigma <= 0.0:
            raise ValueError(f"lognormal sigma must be positive, got {sigma}")
        mu = math.log(mean_size) - 0.5 * sigma * sigma
        raw = float(rng.lognormal(mu, sigma))
    size = _round_up(raw, granularity)
    if max_size is not None:
        cap = (max_size // granularity) * granularity
        if cap < granularity:
            raise ValueError(
                f"max size {max_size} admits no whole {granularity}-byte "
                f"record multiple")
        size = min(size, cap)
    return int(size)


def sample_file_sizes(distribution, mean_size, n_files, trial_seed,
                      alpha=1.5, sigma=1.0, granularity=8192, max_size=None):
    """Sizes of files ``0..n_files-1`` (one independent draw per file)."""
    return [sample_file_size(distribution, mean_size, trial_seed, index,
                             alpha=alpha, sigma=sigma, granularity=granularity,
                             max_size=max_size)
            for index in range(n_files)]
