"""Service-style workloads: streams of concurrent collective requests.

* :mod:`repro.workload.arrival` — closed-loop and Poisson open-loop arrival
  processes with per-(seed, request) deterministic randomness.
* :mod:`repro.workload.sizes` — heavy-tailed (Pareto/lognormal) per-file size
  sampling with per-(seed, file) deterministic randomness.
* :mod:`repro.workload.driver` — the :class:`ServiceDriver`: multiple open
  files, a K-slot admission scheduler, streaming per-session accounting
  (constant memory in the session count).
* :mod:`repro.workload.aggregate` — the mergeable quantile sketch and
  running stats the driver folds each completed session into.
* :mod:`repro.workload.checkpoint` — checkpoint/restart of the fold state
  for long (million-session) runs.

See ``docs/workloads.md`` for how this maps onto (and extends) the paper's
single-collective experiments.
"""

from repro.workload.aggregate import (
    DEFAULT_PRECISION,
    QuantileSketch,
    RunningStats,
    relative_error_bound,
)
from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoopArrivals,
    PoissonArrivals,
    make_arrival,
    request_rng,
)
from repro.workload.checkpoint import (
    CheckpointError,
    IndexRanges,
    RunCheckpoint,
    run_fingerprint,
)
from repro.workload.driver import (
    ServiceDriver,
    ServiceResult,
    ServiceWorkload,
    build_service_machine,
    percentile,
    run_service,
)
from repro.workload.sizes import (
    SIZE_DISTRIBUTIONS,
    file_size_rng,
    sample_file_size,
    sample_file_sizes,
)

__all__ = [
    "ArrivalProcess",
    "CheckpointError",
    "ClosedLoopArrivals",
    "DEFAULT_PRECISION",
    "IndexRanges",
    "PoissonArrivals",
    "QuantileSketch",
    "RunCheckpoint",
    "RunningStats",
    "SIZE_DISTRIBUTIONS",
    "ServiceDriver",
    "ServiceResult",
    "ServiceWorkload",
    "build_service_machine",
    "file_size_rng",
    "make_arrival",
    "percentile",
    "relative_error_bound",
    "request_rng",
    "run_fingerprint",
    "run_service",
    "sample_file_size",
    "sample_file_sizes",
]
