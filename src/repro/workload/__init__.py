"""Service-style workloads: streams of concurrent collective requests.

* :mod:`repro.workload.arrival` — closed-loop and Poisson open-loop arrival
  processes with per-(seed, request) deterministic randomness.
* :mod:`repro.workload.sizes` — heavy-tailed (Pareto/lognormal) per-file size
  sampling with per-(seed, file) deterministic randomness.
* :mod:`repro.workload.driver` — the :class:`ServiceDriver`: multiple open
  files, a K-slot admission scheduler, streaming per-session accounting
  (constant memory in the session count).
* :mod:`repro.workload.admission` — pluggable admission disciplines (FIFO,
  size-aware SJF with aging, static priorities, EDF with deadline drop) and
  the adaptive-K p99-target controller.
* :mod:`repro.workload.aggregate` — the mergeable quantile sketch and
  running stats the driver folds each completed session into.
* :mod:`repro.workload.checkpoint` — checkpoint/restart of the fold state
  for long (million-session) runs.

See ``docs/workloads.md`` for how this maps onto (and extends) the paper's
single-collective experiments.
"""

from repro.workload.admission import (
    ADMISSION_POLICIES,
    ADMITTED,
    DROPPED,
    SHED,
    AdaptiveConcurrencyController,
    AdmissionPolicy,
    AdmissionQueue,
    AdmissionTicket,
    ControllerConfig,
    EDFPolicy,
    FIFOPolicy,
    PriorityPolicy,
    SJFPolicy,
    make_admission_policy,
)
from repro.workload.aggregate import (
    DEFAULT_PRECISION,
    QuantileSketch,
    RunningStats,
    relative_error_bound,
)
from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoopArrivals,
    PoissonArrivals,
    make_arrival,
    request_rng,
    session_qos,
)
from repro.workload.checkpoint import (
    CheckpointError,
    IndexRanges,
    RunCheckpoint,
    run_fingerprint,
)
from repro.workload.driver import (
    ServiceDriver,
    ServiceResult,
    ServiceWorkload,
    build_service_machine,
    percentile,
    run_service,
)
from repro.workload.sizes import (
    SIZE_DISTRIBUTIONS,
    file_size_rng,
    sample_file_size,
    sample_file_sizes,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ADMITTED",
    "AdaptiveConcurrencyController",
    "AdmissionPolicy",
    "AdmissionQueue",
    "AdmissionTicket",
    "ArrivalProcess",
    "CheckpointError",
    "ClosedLoopArrivals",
    "ControllerConfig",
    "DEFAULT_PRECISION",
    "DROPPED",
    "EDFPolicy",
    "FIFOPolicy",
    "IndexRanges",
    "PoissonArrivals",
    "PriorityPolicy",
    "QuantileSketch",
    "RunCheckpoint",
    "RunningStats",
    "SHED",
    "SIZE_DISTRIBUTIONS",
    "SJFPolicy",
    "ServiceDriver",
    "ServiceResult",
    "ServiceWorkload",
    "build_service_machine",
    "file_size_rng",
    "make_admission_policy",
    "make_arrival",
    "percentile",
    "relative_error_bound",
    "request_rng",
    "run_fingerprint",
    "run_service",
    "sample_file_size",
    "sample_file_sizes",
    "session_qos",
]
